"""Compiled join plans for conjunctive queries, with an LRU plan cache.

This module is the "indexed join engine" half of the performance subsystem
(the other half is the per-position hash indexing inside
:class:`repro.relational.instance.Instance`).  A conjunctive query is
compiled **once** into a :class:`QueryPlan`:

* atoms are ordered greedily (fewest unbound variables first, ties broken
  by the largest overlap with already-bound variables — the same heuristic
  as the naive oracle, computed once per query instead of once per call);
* every variable gets a *slot* in a single mutable binding array, so the
  backtracking join never copies assignment dictionaries;
* every atom position is compiled to a constant check, a bound-slot check
  or a slot write, and the positions that are bound *before* the atom is
  matched are recorded as index-probe candidates: at run time the executor
  probes ``Instance.index(relation, position, value)`` for each and scans
  the smallest bucket (most selective first) instead of the full relation;
* equality/inequality atoms are scheduled at the earliest pipeline point
  at which both sides are bound, pruning dead branches early.

Plans are cached in a small LRU keyed by ``(query, schema relation
names)`` (:func:`get_plan`), so the pattern "evaluate the same guard query
against thousands of configurations" — the hot loop of every decision
procedure in this repository — compiles exactly once.

For semi-naive Datalog evaluation the same machinery compiles **delta
variants** (:func:`get_delta_plan` / ``compile_plan(delta_atom=i)``): one
plan per body position, with that atom bound to the per-round delta fact
set and every other atom tagged with the side it reads from (previous
generation for earlier positions, full state for later ones).  The delta
executor (:func:`execute_delta_plan`) dispatches each atom to its source,
scanning the small delta set directly instead of probing a per-position
index for it.

The compiled executor is *semantics-preserving* with respect to the naive
backtracking oracle
(:func:`repro.queries.evaluation.naive_satisfying_assignments`): both
enumerate exactly the assignments of the query's body variables that
satisfy all atoms and comparisons.  The agreement is enforced by
randomized property tests (``tests/test_engine_oracle.py``).  Queries
whose comparisons mention variables not occurring in any relational atom
cannot be slot-compiled and fall back to the oracle
(:attr:`QueryPlan.fallback`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.queries.atoms import Atom, Equality, Inequality
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Constant, Variable
from repro.relational.instance import Instance
from repro.store.snapshot import SnapshotInstance

Assignment = Dict[Variable, object]


class _Unbound:
    """Sentinel distinct from any database value (including ``None``)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "<unbound>"


UNBOUND = _Unbound()

# Per-position operation codes.
_OP_CONST = 0  # tup[pos] must equal a constant value
_OP_CHECK = 1  # tup[pos] must equal the value already in a slot
_OP_BIND = 2  # write tup[pos] into a slot (first occurrence)

# Per-atom sources for delta-variant plans (semi-naive evaluation).  A
# plain plan reads every atom from the one instance it is executed
# against (``SRC_NEW``); a delta variant reads the delta-bound atom from
# the small per-round fact set and the atoms *preceding* it (in original
# body order) from the previous generation.  See :func:`compile_plan`.
SRC_NEW = 0  # the full current state
SRC_OLD = 1  # the previous generation
SRC_DELTA = 2  # the per-round delta fact set


@dataclass(frozen=True)
class CompiledComparison:
    """An equality or inequality compiled to slot/constant operands."""

    is_equality: bool
    left_is_slot: bool
    left: object  # slot index or constant value
    right_is_slot: bool
    right: object

    def holds(self, slots: List[object]) -> bool:
        left = slots[self.left] if self.left_is_slot else self.left
        right = slots[self.right] if self.right_is_slot else self.right
        return (left == right) if self.is_equality else (left != right)


@dataclass(frozen=True)
class CompiledAtom:
    """One atom of the join pipeline.

    ``ops`` drives the per-tuple match loop; ``probes`` lists the positions
    whose value is known before this atom runs (index-probe candidates);
    ``binds`` are the slots written by this atom (reset on backtrack).
    """

    relation: str
    ops: Tuple[Tuple[int, int, object], ...]  # (opcode, position, payload)
    probes: Tuple[Tuple[int, bool, object], ...]  # (position, is_const, payload)
    binds: Tuple[int, ...]
    checks: Tuple[CompiledComparison, ...]  # comparisons decidable after this atom
    source: int = SRC_NEW  # which side a delta-variant executor reads from


@dataclass(frozen=True)
class QueryPlan:
    """A conjunctive query compiled for the indexed executor."""

    atoms: Tuple[CompiledAtom, ...]
    num_slots: int
    slot_variables: Tuple[Variable, ...]  # slot index -> variable
    fallback: bool = False
    always_false: bool = False


def atom_order(
    atoms: Sequence[Atom],
    cardinalities: Optional[Mapping[str, int]] = None,
) -> List[Atom]:
    """Greedy connected ordering (fewest unbound, then most bound overlap).

    Selects the minimum directly instead of re-sorting the remaining list
    on every pick.  This is the single shared implementation of the
    ordering heuristic: the naive oracle
    (:func:`repro.queries.evaluation.naive_satisfying_assignments`)
    delegates here too (always without statistics), so plan and oracle
    enumerate the same assignment *set* by construction.

    When *cardinalities* is given, structural ties are broken towards the
    smaller relation, so a plan compiled against a skewed instance scans
    the thin side of a join first instead of relying purely on the
    run-time bucket-size probe.  In practice :func:`get_plan` feeds this
    only from statistics recorded on the persistent store (``Shard.count``
    via :func:`_stats_signature`); the dict-backed ``Instance`` exposes
    the same ``relation_count(s)`` API for parity, but keeps the
    statistics-free fast path.
    """
    atoms_list = list(atoms)
    order = _greedy_order(
        atoms_list, range(len(atoms_list)), set(), cardinalities
    )
    return [atoms_list[index] for index in order]


def _greedy_order(
    atoms: Sequence[Atom],
    candidates: Iterable[int],
    bound: Set[Variable],
    cardinalities: Optional[Mapping[str, int]],
) -> List[int]:
    """The greedy ordering of :func:`atom_order`, over atom *indices*.

    Working on indices (rather than atom values) lets the delta-variant
    compiler keep track of each atom's original body position even when
    the same atom value occurs at several positions; *bound* seeds the
    already-bound variable set (the delta-bound atom's variables).
    """
    remaining = list(candidates)
    ordered: List[int] = []
    bound = set(bound)
    while remaining:
        best_index = 0
        best_key: Optional[Tuple[int, ...]] = None
        for index, candidate in enumerate(remaining):
            variables = atoms[candidate].variables()
            if cardinalities is None:
                key: Tuple[int, ...] = (
                    len(variables - bound),
                    -len(variables & bound),
                )
            else:
                key = (
                    len(variables - bound),
                    -len(variables & bound),
                    cardinalities.get(atoms[candidate].relation, 0),
                )
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        bound |= atoms[chosen].variables()
    return ordered


def _compile_comparison(
    comparison, slot_of: Dict[Variable, int], is_equality: bool
) -> CompiledComparison:
    def side(term):
        if isinstance(term, Variable):
            return True, slot_of[term]
        return False, term.value if isinstance(term, Constant) else term

    left_is_slot, left = side(comparison.left)
    right_is_slot, right = side(comparison.right)
    return CompiledComparison(
        is_equality=is_equality,
        left_is_slot=left_is_slot,
        left=left,
        right_is_slot=right_is_slot,
        right=right,
    )


def compile_plan(
    query: ConjunctiveQuery,
    cardinalities: Optional[Mapping[str, int]] = None,
    delta_atom: Optional[int] = None,
) -> QueryPlan:
    """Compile *query* into a :class:`QueryPlan` (no instance required).

    *cardinalities* optionally feeds recorded per-relation statistics into
    the atom ordering (see :func:`atom_order`); the compiled plan is
    correct for any instance regardless.

    *delta_atom* selects the **semi-naive delta variant** bound at that
    original body position: the chosen atom reads from the per-round
    delta fact set (``SRC_DELTA``) and is scheduled first (the delta is
    the small side of the join by construction), atoms at earlier body
    positions read from the previous generation (``SRC_OLD``) and atoms
    at later positions from the full current state (``SRC_NEW``) — the
    classic delta-rule rewrite, partitioning the delta-using derivations
    by the first body position bound to a delta fact.  Delta variants
    execute through :func:`execute_delta_plan`.
    """
    atoms_list = list(query.atoms)
    if delta_atom is None:
        order = _greedy_order(atoms_list, range(len(atoms_list)), set(), cardinalities)
        sources = [SRC_NEW] * len(atoms_list)
    else:
        rest = [index for index in range(len(atoms_list)) if index != delta_atom]
        order = [delta_atom] + _greedy_order(
            atoms_list, rest, set(atoms_list[delta_atom].variables()), cardinalities
        )
        sources = [
            SRC_OLD if index < delta_atom else SRC_NEW
            for index in range(len(atoms_list))
        ]
        sources[delta_atom] = SRC_DELTA
    ordered = [atoms_list[index] for index in order]

    atom_variables: Set[Variable] = set()
    for atom in ordered:
        atom_variables |= atom.variables()
    comparisons = [(eq, True) for eq in query.equalities] + [
        (ineq, False) for ineq in query.inequalities
    ]
    for comparison, _ in comparisons:
        if not comparison.variables() <= atom_variables:
            # A comparison variable never bound by any atom: the slot
            # executor cannot decide it — delegate to the naive oracle,
            # which surfaces the same KeyError behaviour for unsafe queries.
            return QueryPlan(
                atoms=(), num_slots=0, slot_variables=(), fallback=True
            )

    slot_of: Dict[Variable, int] = {}
    slot_variables: List[Variable] = []

    def slot(variable: Variable) -> int:
        index = slot_of.get(variable)
        if index is None:
            index = len(slot_variables)
            slot_of[variable] = index
            slot_variables.append(variable)
        return index

    # Constant-only comparisons are decidable at compile time.
    always_false = False
    pending: List[Tuple[object, bool]] = []
    for comparison, is_equality in comparisons:
        if not comparison.variables():
            compiled = _compile_comparison(comparison, slot_of, is_equality)
            if not compiled.holds([]):
                always_false = True
            continue
        pending.append((comparison, is_equality))

    ordered_sources = [sources[index] for index in order]
    compiled_atoms: List[CompiledAtom] = []
    bound_before: Set[Variable] = set()
    for atom, atom_source in zip(ordered, ordered_sources):
        ops: List[Tuple[int, int, object]] = []
        probes: List[Tuple[int, bool, object]] = []
        binds: List[int] = []
        bound_in_atom: Set[Variable] = set()
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                ops.append((_OP_CONST, position, term.value))
                probes.append((position, True, term.value))
            elif term in bound_before:
                index = slot_of[term]
                ops.append((_OP_CHECK, position, index))
                probes.append((position, False, index))
            elif term in bound_in_atom:
                ops.append((_OP_CHECK, position, slot_of[term]))
            else:
                index = slot(term)
                ops.append((_OP_BIND, position, index))
                binds.append(index)
                bound_in_atom.add(term)
        bound_before |= bound_in_atom
        # Comparisons whose variables are all bound once this atom matched.
        checks: List[CompiledComparison] = []
        still_pending: List[Tuple[object, bool]] = []
        for comparison, is_equality in pending:
            if comparison.variables() <= bound_before:
                checks.append(_compile_comparison(comparison, slot_of, is_equality))
            else:
                still_pending.append((comparison, is_equality))
        pending = still_pending
        compiled_atoms.append(
            CompiledAtom(
                relation=atom.relation,
                ops=tuple(ops),
                probes=tuple(probes),
                binds=tuple(binds),
                checks=tuple(checks),
                source=atom_source,
            )
        )
    assert not pending  # every comparison variable occurs in some atom

    return QueryPlan(
        atoms=tuple(compiled_atoms),
        num_slots=len(slot_variables),
        slot_variables=tuple(slot_variables),
        always_false=always_false,
    )


# ----------------------------------------------------------------------
# The LRU plan cache
# ----------------------------------------------------------------------
_PLAN_CACHE: "OrderedDict[object, QueryPlan]" = OrderedDict()
_PLAN_CACHE_MAX = 1024
_hits = 0
_misses = 0


#: Statistics-driven planning engages only on the persistent stores
#: (the shard facade and the SQL backend both *record* per-relation
#: cardinalities as O(1) statistics — ``getattr(instance,
#: "_sql_backend", False)`` keeps this module import-free of the SQL
#: backend) and only
#: once the instance holds enough facts for join order to matter; below
#: the threshold the signature stays ``None`` and the fast path costs
#: exactly what it did without statistics.
_STATS_MIN_COUNT = 64


def _stats_signature(
    query: ConjunctiveQuery, instance: "SnapshotInstance"
) -> Optional[Tuple[int, ...]]:
    """The bucketed cardinality signature driving statistics-aware plans.

    Per relation mentioned by the query, the recorded cardinality
    statistic (``Shard.count``) bucketed to its binary magnitude — so a
    growing instance re-plans only when a relation crosses a power of
    two, and equal signatures provably yield equal plans.  Queries for
    which statistics cannot change the ordering (fewer than two atoms, or
    all atoms over one relation) return ``None`` and skip the bookkeeping
    entirely.
    """
    rels = query.__dict__.get("_stat_relations", _UNSET)
    if rels is _UNSET:
        distinct = {atom.relation for atom in query.atoms}
        rels = (
            tuple(sorted(distinct))
            if len(query.atoms) >= 2 and len(distinct) >= 2
            else None
        )
        object.__setattr__(query, "_stat_relations", rels)
    if rels is None:
        return None
    return tuple(instance.relation_count(name).bit_length() for name in rels)


_UNSET = object()


def get_plan(query: ConjunctiveQuery, instance: Optional[Instance] = None) -> QueryPlan:
    """The compiled plan of *query*, memoised at two levels.

    * **Per-object fast path** — a small ``signature -> plan`` table is
      attached to the (frozen) query object itself, so the hot pattern
      "evaluate this exact guard query against thousands of
      configurations" costs one attribute lookup and one small-dict get
      plus (for multi-relation queries on large stores) a handful of O(1)
      statistics reads, not a recursive hash of the whole query.
    * **Value-keyed LRU** — distinct-but-equal query objects (e.g. the
      boolean versions rebuilt per ``holds`` call) share one compilation
      through an LRU keyed by ``(query, schema relation names,
      signature)``.  Plans contain no schema-specific data (the executor
      treats relations outside the instance's schema as empty at run
      time), so sharing a plan across instances of the same vocabulary is
      sound; the schema component of the key only keeps cache statistics
      honest when the same query value is evaluated over different
      vocabularies.

    Plans are *statistics-driven* on the persistent store: the cardinality
    statistics its shards record (see :func:`_stats_signature`) feed the
    atom ordering once the instance passes :data:`_STATS_MIN_COUNT` facts,
    and each signature bucket compiles (and caches) its own plan.  Small
    instances and the dict-backed ``Instance`` keep the statistics-free
    fast path (and its exact cost).
    """
    return _get_plan_memoized(query, instance, None)


def get_delta_plan(
    query: ConjunctiveQuery,
    delta_atom: int,
    instance: Optional[Instance] = None,
) -> QueryPlan:
    """The compiled semi-naive delta variant of *query* (see :func:`compile_plan`).

    Memoised exactly like :func:`get_plan` (the two share one
    implementation) — a per-object fast path keyed by ``(delta_atom,
    signature)`` plus the shared value-keyed LRU — so a Datalog
    fixedpoint that re-fires the same rules round after round compiles
    each of the k delta variants of a k-atom rule exactly once.
    """
    return _get_plan_memoized(query, instance, delta_atom)


def _get_plan_memoized(
    query: ConjunctiveQuery,
    instance: Optional[Instance],
    delta_atom: Optional[int],
) -> QueryPlan:
    """The shared two-level memoisation behind :func:`get_plan` /
    :func:`get_delta_plan` — one caching policy, so the plain and delta
    paths can never diverge on thresholds, eviction or the
    unhashable-constant fallback."""
    global _hits, _misses
    sig = (
        _stats_signature(query, instance)
        if (
            type(instance) is SnapshotInstance
            or getattr(instance, "_sql_backend", False)
        )
        and instance.size() >= _STATS_MIN_COUNT
        else None
    )
    # The per-object attach maps signature -> plan (delta variants use a
    # separate attribute keyed by ``(delta_atom, sig)``), so a query
    # evaluated against instances in different signature buckets (or
    # alternating between backends) keeps the fast path for every bucket
    # it has seen.
    if delta_atom is None:
        attach_attr = "_compiled_plan"
        attach_key: object = sig
    else:
        attach_attr = "_compiled_delta_plans"
        attach_key = (delta_atom, sig)
    entry = query.__dict__.get(attach_attr)
    if entry is not None:
        plan = entry.get(attach_key)
        if plan is not None:
            _hits += 1
            return plan
    cardinalities = (
        dict(zip(query.__dict__["_stat_relations"], sig)) if sig is not None else None
    )
    schema_key = instance.schema.names() if instance is not None else None

    def attach(plan: QueryPlan) -> None:
        if entry is not None:
            entry[attach_key] = plan
        else:
            object.__setattr__(query, attach_attr, {attach_key: plan})

    try:
        key = (
            (query, schema_key, sig)
            if delta_atom is None
            else (query, schema_key, sig, delta_atom)
        )
        plan = _PLAN_CACHE.get(key)
    except TypeError:
        # Unhashable constant somewhere in the query: the value-keyed LRU
        # cannot hold it, but the per-object attach (plain setattr) can.
        _misses += 1
        with _trace.trace_span("plan_cache.compile", delta=delta_atom is not None):
            plan = compile_plan(query, cardinalities, delta_atom=delta_atom)
        attach(plan)
        return plan
    if plan is not None:
        _hits += 1
        _PLAN_CACHE.move_to_end(key)
    else:
        _misses += 1
        with _trace.trace_span("plan_cache.compile", delta=delta_atom is not None):
            plan = compile_plan(query, cardinalities, delta_atom=delta_atom)
        _PLAN_CACHE[key] = plan
        if len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
            _PLAN_CACHE.popitem(last=False)
    attach(plan)
    return plan


def clear_plan_cache() -> None:
    """Empty the value-keyed LRU and reset the hit/miss statistics.

    Plans attached to query objects by the per-object fast path are *not*
    invalidated (they are reachable only through those objects and
    compilation is deterministic, so they can never be stale); after a
    clear, a previously seen query object still resolves through its
    attached plan and counts as a hit.  Callers measuring cold-compile
    cost must use freshly constructed query objects.
    """
    global _hits, _misses
    _PLAN_CACHE.clear()
    _hits = 0
    _misses = 0


def plan_cache_info() -> Dict[str, int]:
    """Cache statistics: size, hits, misses."""
    return {"size": len(_PLAN_CACHE), "hits": _hits, "misses": _misses}


# The cache's live statistics appear in every metrics snapshot
# (``repro stats``) without a second bookkeeping path.
_metrics.register_view("plan_cache", plan_cache_info)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
_EMPTY_DELTA: Mapping[str, Tuple[Tuple[object, ...], ...]] = {}


def execute_plan(
    plan: QueryPlan, query: ConjunctiveQuery, instance: Instance
) -> Iterator[Assignment]:
    """Enumerate the satisfying assignments of a compiled plan.

    Yields one dictionary per solution (mapping every body variable to its
    value); intermediate join states live in a single mutable slot array,
    so no per-extension dictionaries are allocated.  A plain plan is a
    delta plan whose atoms all read the current state, so this is the
    all-``SRC_NEW`` instantiation of :func:`execute_delta_plan` (one
    shared matcher — the path the engine-oracle property tests pin down).
    """
    return execute_delta_plan(plan, query, instance, instance, _EMPTY_DELTA)


def execute_delta_plan(
    plan: QueryPlan,
    query: ConjunctiveQuery,
    instance: Instance,
    old_instance: Instance,
    delta: Mapping[str, Iterable[Tuple[object, ...]]],
) -> Iterator[Assignment]:
    """Enumerate the satisfying assignments of a (delta-variant) plan.

    Per-atom source dispatch (:data:`SRC_NEW` / :data:`SRC_OLD` /
    :data:`SRC_DELTA`): new-side atoms probe *instance*, old-side atoms
    probe *old_instance* (the previous generation), and the delta-bound
    atom scans ``delta[relation]`` directly — the per-round fact set is
    small by construction, so a linear scan beats building any index for
    it.

    For non-delta atoms the most selective available index bucket is
    probed, falling back to a full scan only for atoms with no bound
    position; the chosen source is snapshotted before iteration (the
    cached frozenset for a full scan, a tuple copy for a bucket), so
    callers may mutate the instance while lazily consuming the generator
    — the same contract as the naive oracle.  The *delta* mapping itself
    must not be mutated mid-consumption (the Datalog evaluator
    materialises each round's derivations before mutating anything).
    """
    if plan.always_false:
        return
    atoms = plan.atoms
    num_atoms = len(atoms)
    slots: List[object] = [UNBOUND] * plan.num_slots
    slot_variables = plan.slot_variables

    def matches(index: int) -> Iterator[Assignment]:
        if index == num_atoms:
            yield dict(zip(slot_variables, slots))
            return
        compiled = atoms[index]
        source = compiled.source
        if source == SRC_DELTA:
            candidates = delta.get(compiled.relation)
            if not candidates:
                return
        else:
            side = instance if source == SRC_NEW else old_instance
            relation_tuples = side._data.get(compiled.relation)
            if relation_tuples is None or not relation_tuples:
                return
            bucket_size = len(relation_tuples)
            best_bucket = None
            for position, is_const, payload in compiled.probes:
                value = payload if is_const else slots[payload]
                bucket = side.index(compiled.relation, position, value)
                if len(bucket) < bucket_size:
                    bucket_size = len(bucket)
                    best_bucket = bucket
                    if not bucket:
                        return
            candidates = (
                side.tuples(compiled.relation)
                if best_bucket is None
                else tuple(best_bucket)
            )
        ops = compiled.ops
        binds = compiled.binds
        checks = compiled.checks
        for tup in candidates:
            ok = True
            for opcode, position, payload in ops:
                value = tup[position]
                if opcode == _OP_BIND:
                    slots[payload] = value
                elif opcode == _OP_CONST:
                    if value != payload:
                        ok = False
                        break
                else:  # _OP_CHECK
                    if value != slots[payload]:
                        ok = False
                        break
            if ok:
                for check in checks:
                    if not check.holds(slots):
                        ok = False
                        break
            if ok:
                yield from matches(index + 1)
            for bind in binds:
                slots[bind] = UNBOUND
        return

    yield from matches(0)
