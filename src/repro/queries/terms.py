"""Terms: variables and constants appearing in query atoms."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class Variable:
    """A first-order variable, identified by its name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant:
    """A constant value.

    The wrapped value can be any hashable Python object; equality of
    constants is equality of values.  Constants matter for the paper's
    A-automata (whose guards may use a fixed set of constants ``C``) and
    for the Datalog-containment procedure of Proposition 4.11, which
    explicitly allows constants.
    """

    value: object

    def __str__(self) -> str:
        return repr(self.value)


Term = Union[Variable, Constant]


def var(name: str) -> Variable:
    """Shorthand constructor for a :class:`Variable`."""
    return Variable(name)


def const(value: object) -> Constant:
    """Shorthand constructor for a :class:`Constant`."""
    return Constant(value)


def is_variable(term: Term) -> bool:
    """Whether *term* is a variable."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """Whether *term* is a constant."""
    return isinstance(term, Constant)
