"""Unions of conjunctive queries and positive existential queries.

The paper's embedded language ``FO∃+`` (positive existential first-order
sentences) is, up to standard normalisation, the class of unions of
conjunctive queries (UCQs); with inequalities it is UCQ≠.  We work with the
normalised disjunct representation throughout: a :class:`PositiveQuery` is a
non-empty union of CQ disjuncts that share the same head arity.

The algebra on positive queries (conjunction distributing over union,
negation pushed by the callers) is what lets us keep the embedded formulas
of AccLTL in a normal form suitable for the automaton and Datalog
constructions of Section 4.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.queries.cq import ConjunctiveQuery, QueryError
from repro.queries.terms import Constant, Variable


@dataclass(frozen=True)
class UnionOfConjunctiveQueries:
    """A union of conjunctive queries with a common head arity."""

    disjuncts: Tuple[ConjunctiveQuery, ...]
    name: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "disjuncts", tuple(self.disjuncts))
        if not self.disjuncts:
            raise QueryError("a UCQ must have at least one disjunct")
        arities = {len(d.head) for d in self.disjuncts}
        if len(arities) != 1:
            raise QueryError("all disjuncts of a UCQ must have the same head arity")

    @property
    def head_arity(self) -> int:
        return len(self.disjuncts[0].head)

    @property
    def is_boolean(self) -> bool:
        return self.head_arity == 0

    @property
    def has_inequalities(self) -> bool:
        return any(d.has_inequalities for d in self.disjuncts)

    def relations(self) -> FrozenSet[str]:
        """All relation names mentioned in any disjunct."""
        names: set = set()
        for disjunct in self.disjuncts:
            names |= disjunct.relations()
        return frozenset(names)

    def constants(self) -> FrozenSet[Constant]:
        """All constants mentioned in any disjunct."""
        constants: set = set()
        for disjunct in self.disjuncts:
            constants |= disjunct.constants()
        return frozenset(constants)

    def size(self) -> int:
        """Total number of atoms across disjuncts."""
        return sum(d.size() for d in self.disjuncts)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def union(self, other: "UnionOfConjunctiveQueries") -> "UnionOfConjunctiveQueries":
        """Disjunction of two UCQs of the same head arity."""
        if other.head_arity != self.head_arity:
            raise QueryError("cannot union UCQs of different head arities")
        return UnionOfConjunctiveQueries(self.disjuncts + other.disjuncts)

    def conjoin(self, other: "UnionOfConjunctiveQueries") -> "UnionOfConjunctiveQueries":
        """Conjunction of two boolean UCQs, distributing over the unions."""
        if not (self.is_boolean and other.is_boolean):
            raise QueryError("conjunction is only defined for boolean UCQs")
        products = []
        for index, (left, right) in enumerate(
            itertools.product(self.disjuncts, other.disjuncts)
        ):
            products.append(left.conjoin(right.freshen(f"_r{index}")))
        return UnionOfConjunctiveQueries(tuple(products))

    def rename_relations(self, mapping) -> "UnionOfConjunctiveQueries":
        """Rename relations in every disjunct (see ``Q^pre`` / ``Q^post``)."""
        return UnionOfConjunctiveQueries(
            tuple(d.rename_relations(mapping) for d in self.disjuncts), name=self.name
        )

    def boolean_version(self) -> "UnionOfConjunctiveQueries":
        """Existentially close the head of every disjunct."""
        return UnionOfConjunctiveQueries(
            tuple(d.boolean_version() for d in self.disjuncts), name=self.name
        )

    def without_inequalities(self) -> "UnionOfConjunctiveQueries":
        """Drop inequality atoms from every disjunct."""
        return UnionOfConjunctiveQueries(
            tuple(d.without_inequalities() for d in self.disjuncts), name=self.name
        )

    def __iter__(self):
        return iter(self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __str__(self) -> str:
        return " ∪ ".join(str(d) for d in self.disjuncts)


#: The paper's FO∃+ sentences are represented as (boolean) UCQs.
PositiveQuery = UnionOfConjunctiveQueries


def ucq(
    disjuncts: Iterable[ConjunctiveQuery], name: Optional[str] = None
) -> UnionOfConjunctiveQueries:
    """Convenience constructor for a UCQ."""
    return UnionOfConjunctiveQueries(tuple(disjuncts), name=name)


def as_ucq(query) -> UnionOfConjunctiveQueries:
    """Coerce a CQ or UCQ into a UCQ."""
    if isinstance(query, UnionOfConjunctiveQueries):
        return query
    if isinstance(query, ConjunctiveQuery):
        return UnionOfConjunctiveQueries((query,), name=query.name)
    raise TypeError(f"cannot coerce {query!r} to a UCQ")


def conjoin_all(queries: Sequence[UnionOfConjunctiveQueries]) -> UnionOfConjunctiveQueries:
    """Conjunction of a non-empty sequence of boolean UCQs."""
    if not queries:
        raise QueryError("conjoin_all requires at least one query")
    result = queries[0]
    for query in queries[1:]:
        result = result.conjoin(query)
    return result


def true_query() -> UnionOfConjunctiveQueries:
    """The trivially true boolean query (empty body CQ)."""
    return UnionOfConjunctiveQueries((ConjunctiveQuery(atoms=(), head=()),))
