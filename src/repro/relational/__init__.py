"""Relational substrate: datatypes, schemas, instances, and dependencies.

This package provides the basic relational machinery that the rest of the
library is built on.  It follows the "unnamed perspective" of the paper
(Section 2): a relation is a name, an arity, and a typing function from
positions to datatypes; an instance maps each relation to a finite set of
tuples.
"""

from repro.relational.types import DataType, INT, BOOL, STRING, Domain, EnumDomain
from repro.relational.schema import Relation, Schema
from repro.relational.instance import Instance
from repro.relational.dependencies import (
    FunctionalDependency,
    InclusionDependency,
    DisjointnessConstraint,
    ConstraintSet,
    chase_fds,
    implies_fd,
)

__all__ = [
    "DataType",
    "INT",
    "BOOL",
    "STRING",
    "Domain",
    "EnumDomain",
    "Relation",
    "Schema",
    "Instance",
    "FunctionalDependency",
    "InclusionDependency",
    "DisjointnessConstraint",
    "ConstraintSet",
    "chase_fds",
    "implies_fd",
]
