"""Data integrity constraints: FDs, inclusion dependencies, disjointness.

These appear throughout the paper:

* **Functional dependencies** and **inclusion dependencies** are the
  ingredients of the undecidability reductions (Theorems 3.1, 5.2, 5.3),
  via the classical result of Chandra & Vardi that their joint implication
  problem is undecidable.
* **Disjointness constraints** ("a customer name never overlaps with a
  street name") appear in the introduction and in Proposition 4.4, where
  relevance/containment under disjointness constraints compiles directly
  into A-automata.
* Example 2.4 shows how long-term relevance *under functional
  dependencies* is expressed in AccLTL with inequalities.

This module provides the constraint classes, satisfaction checks on
instances, the classical FD chase (closure of a set of positions) and a
bounded chase for FD+ID implication which is sound always and complete
whenever it terminates (the general problem is undecidable, which is
exactly the engine of the paper's undecidability results).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.relational.instance import Instance
from repro.relational.schema import Schema, SchemaError


@dataclass(frozen=True)
class FunctionalDependency:
    """A functional dependency ``R : lhs -> rhs`` (0-based positions)."""

    relation: str
    lhs: Tuple[int, ...]
    rhs: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "lhs", tuple(sorted(set(self.lhs))))

    def holds_in(self, instance: Instance) -> bool:
        """Whether every pair of tuples in the relation respects the FD."""
        tuples = list(instance.tuples(self.relation))
        for t1, t2 in itertools.combinations_with_replacement(tuples, 2):
            if all(t1[i] == t2[i] for i in self.lhs) and t1[self.rhs] != t2[self.rhs]:
                return False
        return True

    def violating_pairs(
        self, instance: Instance
    ) -> List[Tuple[Tuple[object, ...], Tuple[object, ...]]]:
        """All pairs of tuples witnessing a violation."""
        tuples = list(instance.tuples(self.relation))
        violations = []
        for t1, t2 in itertools.combinations(tuples, 2):
            if all(t1[i] == t2[i] for i in self.lhs) and t1[self.rhs] != t2[self.rhs]:
                violations.append((t1, t2))
        return violations

    def __str__(self) -> str:
        lhs = ",".join(str(i) for i in self.lhs)
        return f"{self.relation}: {{{lhs}}} -> {self.rhs}"


@dataclass(frozen=True)
class InclusionDependency:
    """An inclusion dependency ``R[A1..An] ⊆ S[B1..Bn]`` (0-based positions)."""

    source: str
    source_positions: Tuple[int, ...]
    target: str
    target_positions: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.source_positions) != len(self.target_positions):
            raise SchemaError(
                "inclusion dependency source/target position lists differ in length"
            )

    def holds_in(self, instance: Instance) -> bool:
        """Whether every projected source tuple appears in the target projection."""
        target_proj = {
            tuple(tup[i] for i in self.target_positions)
            for tup in instance.tuples(self.target)
        }
        for tup in instance.tuples(self.source):
            if tuple(tup[i] for i in self.source_positions) not in target_proj:
                return False
        return True

    def missing_tuples(self, instance: Instance) -> List[Tuple[object, ...]]:
        """Source tuples whose projection is not matched in the target."""
        target_proj = {
            tuple(tup[i] for i in self.target_positions)
            for tup in instance.tuples(self.target)
        }
        return [
            tup
            for tup in instance.tuples(self.source)
            if tuple(tup[i] for i in self.source_positions) not in target_proj
        ]

    def __str__(self) -> str:
        src = ",".join(str(i) for i in self.source_positions)
        tgt = ",".join(str(i) for i in self.target_positions)
        return f"{self.source}[{src}] ⊆ {self.target}[{tgt}]"


@dataclass(frozen=True)
class DisjointnessConstraint:
    """A disjointness constraint between two relation columns.

    ``Disjoint(R.i, S.j)`` states that no value occurs both at position ``i``
    of some ``R``-tuple and at position ``j`` of some ``S``-tuple — e.g. the
    paper's "mobile phone customer names do not overlap with street names".
    """

    relation_a: str
    position_a: int
    relation_b: str
    position_b: int

    def holds_in(self, instance: Instance) -> bool:
        """Whether the two projections share no value."""
        values_a = {tup[self.position_a] for tup in instance.tuples(self.relation_a)}
        values_b = {tup[self.position_b] for tup in instance.tuples(self.relation_b)}
        return not (values_a & values_b)

    def overlapping_values(self, instance: Instance) -> FrozenSet[object]:
        """Values witnessing a violation."""
        values_a = {tup[self.position_a] for tup in instance.tuples(self.relation_a)}
        values_b = {tup[self.position_b] for tup in instance.tuples(self.relation_b)}
        return frozenset(values_a & values_b)

    def __str__(self) -> str:
        return (
            f"Disjoint({self.relation_a}.{self.position_a}, "
            f"{self.relation_b}.{self.position_b})"
        )


Constraint = object  # union of the three dataclasses above


@dataclass
class ConstraintSet:
    """A heterogeneous collection of integrity constraints."""

    fds: List[FunctionalDependency]
    ids: List[InclusionDependency]
    disjointness: List[DisjointnessConstraint]

    def __init__(
        self,
        constraints: Iterable[Constraint] = (),
    ) -> None:
        self.fds = []
        self.ids = []
        self.disjointness = []
        for constraint in constraints:
            self.add(constraint)

    def add(self, constraint: Constraint) -> None:
        """Add a constraint of any supported kind."""
        if isinstance(constraint, FunctionalDependency):
            self.fds.append(constraint)
        elif isinstance(constraint, InclusionDependency):
            self.ids.append(constraint)
        elif isinstance(constraint, DisjointnessConstraint):
            self.disjointness.append(constraint)
        else:
            raise TypeError(f"unsupported constraint {constraint!r}")

    def __iter__(self):
        return itertools.chain(self.fds, self.ids, self.disjointness)

    def __len__(self) -> int:
        return len(self.fds) + len(self.ids) + len(self.disjointness)

    def holds_in(self, instance: Instance) -> bool:
        """Whether the instance satisfies every constraint."""
        return all(constraint.holds_in(instance) for constraint in self)

    def violated_constraints(self, instance: Instance) -> List[Constraint]:
        """Constraints that the instance violates."""
        return [c for c in self if not c.holds_in(instance)]


# ----------------------------------------------------------------------
# FD reasoning: attribute closure and implication
# ----------------------------------------------------------------------
def closure_of_positions(
    positions: Iterable[int], fds: Sequence[FunctionalDependency], relation: str
) -> FrozenSet[int]:
    """Attribute-set closure of *positions* under the FDs of one relation.

    This is the textbook closure algorithm; it is used for FD implication
    over a single relation (which, unlike the FD+ID case, is decidable in
    linear time).
    """
    closure: Set[int] = set(positions)
    changed = True
    while changed:
        changed = False
        for fd in fds:
            if fd.relation != relation:
                continue
            if set(fd.lhs) <= closure and fd.rhs not in closure:
                closure.add(fd.rhs)
                changed = True
    return frozenset(closure)


def fd_implies(
    fds: Sequence[FunctionalDependency], candidate: FunctionalDependency
) -> bool:
    """Whether *fds* imply the *candidate* FD (FDs only — decidable)."""
    closure = closure_of_positions(candidate.lhs, fds, candidate.relation)
    return candidate.rhs in closure


# ----------------------------------------------------------------------
# FD + ID implication via the (bounded) chase
# ----------------------------------------------------------------------
class _LabelledNull:
    """A labelled null used by the chase."""

    __slots__ = ("label",)
    _counter = itertools.count()

    def __init__(self) -> None:
        self.label = next(self._counter)

    def __repr__(self) -> str:
        return f"_N{self.label}"


def chase_fds(
    instance: Instance, fds: Sequence[FunctionalDependency], max_rounds: int = 1000
) -> Optional[Instance]:
    """Chase *instance* with FDs by merging values; ``None`` on hard conflict.

    Values that are not labelled nulls are treated as distinct constants;
    merging two distinct constants is a failure (the FD set is inconsistent
    with the instance).
    """
    # A genuine deep copy is required here: the chase destructively
    # rewrites tuples in place across every relation (value merging), and
    # the caller's instance must stay untouched — a store branch would
    # only defer the same copying work to the rewrite loop.
    current = instance.copy()
    for _ in range(max_rounds):
        substitution: Dict[object, object] = {}
        for fd in fds:
            for t1, t2 in fd.violating_pairs(current):
                a, b = t1[fd.rhs], t2[fd.rhs]
                a = substitution.get(a, a)
                b = substitution.get(b, b)
                if a == b:
                    continue
                if isinstance(a, _LabelledNull):
                    substitution[a] = b
                elif isinstance(b, _LabelledNull):
                    substitution[b] = a
                else:
                    return None
        if not substitution:
            return current
        renamed = Instance(current.schema)
        for name, tup in current.facts():
            renamed.add(name, tuple(substitution.get(v, v) for v in tup))
        current = renamed
    return current


def implies_fd(
    schema: Schema,
    constraints: Sequence[Constraint],
    sigma: FunctionalDependency,
    max_chase_steps: int = 2000,
) -> Optional[bool]:
    """Does the set of FDs and IDs imply the FD *sigma*?

    This problem is undecidable in general (Chandra & Vardi), which is the
    engine behind Theorems 3.1, 5.2 and 5.3 of the paper.  We implement the
    standard chase-based semi-decision procedure:

    * start from the two-tuple canonical instance violating ``sigma``;
    * repeatedly apply ID chase steps (adding tuples with fresh nulls) and
      FD chase steps (merging values);
    * if the chase terminates without having merged the two target values,
      the implication **fails** (return ``False``);
    * if an FD step forces the two target values to merge, the implication
      **holds** (return ``True``);
    * if the step budget is exhausted, return ``None`` ("unknown").

    The procedure is sound in both directions when it answers, and always
    terminates within ``max_chase_steps`` chase steps.
    """
    fds = [c for c in constraints if isinstance(c, FunctionalDependency)]
    ids = [c for c in constraints if isinstance(c, InclusionDependency)]

    relation = schema.relation(sigma.relation)
    # Canonical counterexample: two tuples agreeing on sigma.lhs, fresh
    # labelled nulls elsewhere; target position values are distinct nulls.
    shared = {i: _LabelledNull() for i in sigma.lhs}
    t1 = tuple(
        shared[i] if i in shared else _LabelledNull() for i in range(relation.arity)
    )
    t2 = tuple(
        shared[i] if i in shared else _LabelledNull() for i in range(relation.arity)
    )
    target_a, target_b = t1[sigma.rhs], t2[sigma.rhs]

    # We track equalities through a union-find over values.
    parent: Dict[object, object] = {}

    def find(x: object) -> object:
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(x: object, y: object) -> bool:
        rx, ry = find(x), find(y)
        if rx == ry:
            return True
        null_x = isinstance(rx, _LabelledNull)
        null_y = isinstance(ry, _LabelledNull)
        if not null_x and not null_y:
            return False  # two distinct constants: chase failure
        if null_x:
            parent[rx] = ry
        else:
            parent[ry] = rx
        return True

    facts: Set[Tuple[str, Tuple[object, ...]]] = {
        (sigma.relation, t1),
        (sigma.relation, t2),
    }

    def canonical(fact: Tuple[str, Tuple[object, ...]]) -> Tuple[str, Tuple[object, ...]]:
        name, tup = fact
        return (name, tuple(find(v) for v in tup))

    steps = 0
    changed = True
    while changed and steps < max_chase_steps:
        changed = False
        # FD chase steps: merge values.
        canon_facts = {canonical(f) for f in facts}
        for fd in fds:
            rel_tuples = [tup for (name, tup) in canon_facts if name == fd.relation]
            for ta, tb in itertools.combinations(rel_tuples, 2):
                if all(ta[i] == tb[i] for i in fd.lhs) and ta[fd.rhs] != tb[fd.rhs]:
                    union(ta[fd.rhs], tb[fd.rhs])
                    changed = True
                    steps += 1
        if find(target_a) == find(target_b):
            return True
        # ID chase steps: add target tuples with fresh nulls.
        canon_facts = {canonical(f) for f in facts}
        for id_dep in ids:
            target_rel = schema.relation(id_dep.target)
            target_proj = {
                tuple(tup[i] for i in id_dep.target_positions)
                for (name, tup) in canon_facts
                if name == id_dep.target
            }
            for name, tup in list(canon_facts):
                if name != id_dep.source:
                    continue
                proj = tuple(tup[i] for i in id_dep.source_positions)
                if proj in target_proj:
                    continue
                new_tuple: List[object] = [None] * target_rel.arity
                for src_pos, tgt_pos in zip(
                    id_dep.source_positions, id_dep.target_positions
                ):
                    new_tuple[tgt_pos] = tup[src_pos]
                for pos in range(target_rel.arity):
                    if new_tuple[pos] is None:
                        new_tuple[pos] = _LabelledNull()
                facts.add((id_dep.target, tuple(new_tuple)))
                target_proj.add(proj)
                changed = True
                steps += 1
                if steps >= max_chase_steps:
                    break
            if steps >= max_chase_steps:
                break
        if find(target_a) == find(target_b):
            return True

    if steps >= max_chase_steps and changed:
        return None
    return find(target_a) == find(target_b)
