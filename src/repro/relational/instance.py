"""Relational instances with incremental per-position hash indexes.

An :class:`Instance` maps each relation of a schema to a finite set of
tuples.  Instances are the nodes of the labelled transition system induced
by a schema with access methods (Section 2 of the paper): each node is the
set of facts revealed so far.

Instances are mutable (facts can be added and, for undo logs, discarded)
but expose a frozen, hashable snapshot (:meth:`Instance.freeze`) used by
the LTS exploration code to detect revisited configurations.

Performance architecture (the substrate of the indexed join engine in
:mod:`repro.queries.plan_cache`):

* every relation carries lazily built, incrementally maintained hash
  indexes ``position -> value -> {tuples}`` (:meth:`Instance.index`), so a
  join can probe for matching tuples instead of scanning the relation;
* the derived views :meth:`tuples`, :meth:`facts` and :meth:`freeze` are
  cached and invalidated precisely on mutation, so repeated calls (the
  common pattern in fixedpoint loops and guard evaluation) stop
  re-allocating;
* :meth:`add_unchecked` and :meth:`discard` support the add/undo delta
  discipline of the memoized emptiness search
  (:mod:`repro.automata.emptiness`), avoiding full-instance copies on the
  search hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.relational.schema import Relation, Schema, SchemaError

Fact = Tuple[str, Tuple[object, ...]]
FrozenInstance = FrozenSet[Fact]

_EMPTY_FROZENSET: FrozenSet[Tuple[object, ...]] = frozenset()


@dataclass
class Instance:
    """A finite instance of a :class:`~repro.relational.schema.Schema`."""

    schema: Schema

    def __init__(
        self,
        schema: Schema,
        facts: Optional[Mapping[str, Iterable[Sequence[object]]]] = None,
    ) -> None:
        self.schema = schema
        self._data: Dict[str, Set[Tuple[object, ...]]] = {
            name: set() for name in schema.names()
        }
        # Lazily built indexes: relation -> position -> value -> {tuples}.
        # Once a (relation, position) index exists it is maintained
        # incrementally by add/discard, so it is built at most once per
        # instance lifetime.
        self._indexes: Dict[str, Dict[int, Dict[object, Set[Tuple[object, ...]]]]] = {}
        # Cached derived views, invalidated on mutation.
        self._tuples_cache: Dict[str, FrozenSet[Tuple[object, ...]]] = {}
        self._sorted_cache: Dict[str, List[Tuple[object, ...]]] = {}
        self._freeze_cache: Optional[FrozenInstance] = None
        if facts:
            for name, tuples in facts.items():
                for values in tuples:
                    self.add(name, values)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _invalidate(self, relation_name: str) -> None:
        """Drop cached views after a mutation of *relation_name*."""
        self._freeze_cache = None
        self._tuples_cache.pop(relation_name, None)
        self._sorted_cache.pop(relation_name, None)

    def _index_add(self, relation_name: str, tup: Tuple[object, ...]) -> None:
        indexes = self._indexes.get(relation_name)
        if indexes:
            for position, buckets in indexes.items():
                value = tup[position]
                bucket = buckets.get(value)
                if bucket is None:
                    buckets[value] = {tup}
                else:
                    bucket.add(tup)

    def _index_discard(self, relation_name: str, tup: Tuple[object, ...]) -> None:
        indexes = self._indexes.get(relation_name)
        if indexes:
            for position, buckets in indexes.items():
                bucket = buckets.get(tup[position])
                if bucket is not None:
                    bucket.discard(tup)

    def add(self, relation_name: str, values: Sequence[object]) -> Tuple[object, ...]:
        """Add a tuple to *relation_name*, validating arity and types."""
        relation = self.schema.relation(relation_name)
        tup = relation.validate_tuple(values)
        tuples = self._data[relation_name]
        if tup not in tuples:
            tuples.add(tup)
            self._index_add(relation_name, tup)
            self._invalidate(relation_name)
        return tup

    def add_unchecked(self, relation_name: str, tup: Tuple[object, ...]) -> bool:
        """Add an already validated tuple, returning whether it was new.

        The caller guarantees that *tup* is a well-typed tuple of the right
        arity for *relation_name* (e.g. it was previously returned by
        :meth:`add` on an instance over the same schema).  This is the bulk
        path used by transition-structure construction and the search
        code's scratch structures, where re-validation (or even the
        function-call overhead of the index/cache helpers, hence the
        inlined bodies) would dominate the cost.
        """
        tuples = self._data[relation_name]
        if tup in tuples:
            return False
        tuples.add(tup)
        indexes = self._indexes.get(relation_name)
        if indexes:
            for position, buckets in indexes.items():
                value = tup[position]
                bucket = buckets.get(value)
                if bucket is None:
                    buckets[value] = {tup}
                else:
                    bucket.add(tup)
        self._freeze_cache = None
        self._tuples_cache.pop(relation_name, None)
        self._sorted_cache.pop(relation_name, None)
        return True

    def discard(self, relation_name: str, tup: Tuple[object, ...]) -> bool:
        """Remove a tuple if present, returning whether it was removed.

        Together with :meth:`add_unchecked` this supports the bounded
        apply/undo discipline of the search code's scratch structures:
        apply a candidate's facts, evaluate, then discard exactly the
        facts that were new.  (The search *configurations* themselves now
        roll back via O(1) store snapshots instead —
        :mod:`repro.store.snapshot`.)
        """
        tuples = self._data.get(relation_name)
        if tuples is None or tup not in tuples:
            return False
        tuples.discard(tup)
        indexes = self._indexes.get(relation_name)
        if indexes:
            for position, buckets in indexes.items():
                bucket = buckets.get(tup[position])
                if bucket is not None:
                    bucket.discard(tup)
        self._freeze_cache = None
        self._tuples_cache.pop(relation_name, None)
        self._sorted_cache.pop(relation_name, None)
        return True

    def add_all(
        self, relation_name: str, tuples: Iterable[Sequence[object]]
    ) -> None:
        """Add several tuples to *relation_name*."""
        for values in tuples:
            self.add(relation_name, values)

    def add_fact(self, fact: Fact) -> None:
        """Add a ``(relation, tuple)`` fact."""
        self.add(fact[0], fact[1])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def tuples(self, relation_name: str) -> FrozenSet[Tuple[object, ...]]:
        """The set of tuples currently stored in *relation_name* (cached)."""
        cached = self._tuples_cache.get(relation_name)
        if cached is not None:
            return cached
        if relation_name not in self._data:
            raise SchemaError(f"unknown relation {relation_name!r}")
        frozen = frozenset(self._data[relation_name])
        self._tuples_cache[relation_name] = frozen
        return frozen

    def tuples_view(self, relation_name: str) -> Set[Tuple[object, ...]]:
        """A live, read-only view of the tuples of *relation_name*.

        Unlike :meth:`tuples` this performs no allocation at all; callers
        must not mutate the returned set and must not hold it across
        mutations of the instance.  Returns an empty set for relations
        outside the schema (queries may mention a larger vocabulary).
        """
        return self._data.get(relation_name, _EMPTY_FROZENSET)  # type: ignore[return-value]

    def index(
        self, relation_name: str, position: int, value: object
    ) -> Set[Tuple[object, ...]]:
        """Tuples of *relation_name* whose *position*-th value is *value*.

        The underlying ``position -> value -> {tuples}`` hash index is built
        on first use and maintained incrementally afterwards.  The returned
        set is a live view with the same caveats as :meth:`tuples_view`.
        """
        indexes = self._indexes.setdefault(relation_name, {})
        buckets = indexes.get(position)
        if buckets is None:
            buckets = {}
            for tup in self._data.get(relation_name, ()):
                key = tup[position]
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = {tup}
                else:
                    bucket.add(tup)
            indexes[position] = buckets
        return buckets.get(value, _EMPTY_FROZENSET)  # type: ignore[return-value]

    def __contains__(self, fact: Fact) -> bool:
        name, tup = fact
        return name in self._data and tuple(tup) in self._data[name]

    def contains(self, relation_name: str, values: Sequence[object]) -> bool:
        """Whether the given tuple is present in *relation_name*."""
        return (relation_name, tuple(values)) in self

    def _sorted_tuples(self, relation_name: str) -> List[Tuple[object, ...]]:
        cached = self._sorted_cache.get(relation_name)
        if cached is None:
            cached = sorted(self._data[relation_name], key=repr)
            self._sorted_cache[relation_name] = cached
        return cached

    def facts(self) -> Iterator[Fact]:
        """Iterate over all facts as ``(relation, tuple)`` pairs.

        The per-relation ``repr``-sorted order is cached between mutations,
        so repeated iteration (reports, fixedpoint seeding) does not re-sort.
        """
        for name in self.schema.names():
            for tup in self._sorted_tuples(name):
                yield (name, tup)

    def size(self) -> int:
        """Total number of facts."""
        return sum(len(tuples) for tuples in self._data.values())

    def __len__(self) -> int:
        return self.size()

    def is_empty(self) -> bool:
        """Whether the instance contains no facts."""
        return self.size() == 0

    def active_domain(self) -> FrozenSet[object]:
        """The set of values occurring in any fact (the *active domain*)."""
        values: Set[object] = set()
        for tuples in self._data.values():
            for tup in tuples:
                values.update(tup)
        return frozenset(values)

    def relation_names(self) -> Tuple[str, ...]:
        """Names of the relations of the underlying schema."""
        return self.schema.names()

    # ------------------------------------------------------------------
    # Cardinality statistics (the same API as the persistent store)
    # ------------------------------------------------------------------
    def relation_count(self, relation_name: str) -> int:
        """Cardinality of one relation (0 for relations outside the schema)."""
        tuples = self._data.get(relation_name)
        return len(tuples) if tuples is not None else 0

    def relation_counts(self) -> Dict[str, int]:
        """Per-relation cardinality statistics."""
        return {name: len(tuples) for name, tuples in self._data.items()}

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def copy(self) -> "Instance":
        """A deep copy of this instance (sharing the schema object).

        Indexes and cached views are not copied; the clone rebuilds them
        lazily on demand.
        """
        clone = Instance(self.schema)
        for name, tuples in self._data.items():
            clone._data[name] = set(tuples)
        return clone

    def union(self, other: "Instance") -> "Instance":
        """Fact-wise union of two instances over the same schema."""
        if other.schema.names() != self.schema.names():
            raise SchemaError("cannot union instances over different schemas")
        result = self.copy()
        for name, tuples in other._data.items():
            result._data[name].update(tuples)
        return result

    def union_facts(self, facts: Iterable[Fact]) -> "Instance":
        """A new instance extended with the given facts."""
        result = self.copy()
        for fact in facts:
            result.add_fact(fact)
        return result

    def is_subinstance_of(self, other: "Instance") -> bool:
        """Whether every fact of ``self`` is a fact of *other*."""
        for name, tuples in self._data.items():
            if not tuples <= other._data.get(name, set()):
                return False
        return True

    def intersect(self, other: "Instance") -> "Instance":
        """Fact-wise intersection."""
        result = Instance(self.schema)
        for name, tuples in self._data.items():
            result._data[name] = tuples & other._data.get(name, set())
        return result

    def restrict_to_values(self, values: Iterable[object]) -> "Instance":
        """Keep only the facts all of whose values belong to *values*.

        Used by the Boundedness Lemma (Lemma 4.13) style constructions that
        shrink a witness path to a polynomial-size one.
        """
        allowed = set(values)
        result = Instance(self.schema)
        for name, tuples in self._data.items():
            result._data[name] = {
                tup for tup in tuples if all(v in allowed for v in tup)
            }
        return result

    # ------------------------------------------------------------------
    # Hashable snapshots
    # ------------------------------------------------------------------
    def freeze(self) -> FrozenInstance:
        """A hashable snapshot of the instance (a frozenset of facts).

        The snapshot is cached until the next mutation, so callers that
        repeatedly fingerprint the same configuration (visited sets, guard
        caches) pay for the allocation once.
        """
        cached = self._freeze_cache
        if cached is None:
            cached = frozenset(
                (name, tup)
                for name, tuples in self._data.items()
                for tup in tuples
            )
            self._freeze_cache = cached
        return cached

    def fingerprint(self) -> FrozenInstance:
        """An exact content fingerprint usable as a memo key.

        For the dict-backed instance this is :meth:`freeze` (O(n) per
        mutation, cached in between); the persistent
        :class:`~repro.store.snapshot.SnapshotInstance` offers the same
        method returning its O(1) snapshot token.  Callers that memoise
        on content should use this method so either backend works.
        """
        return self.freeze()

    @classmethod
    def from_frozen(cls, schema: Schema, frozen: FrozenInstance) -> "Instance":
        """Rebuild an instance from a frozen snapshot."""
        instance = cls(schema)
        for name, tup in frozen:
            instance.add(name, tup)
        return instance

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self.freeze() == other.freeze()

    def __hash__(self) -> int:
        return hash(self.freeze())

    def __str__(self) -> str:
        parts = []
        for name in self.schema.names():
            for tup in self._sorted_tuples(name):
                parts.append(f"{name}{tup!r}")
        return "{" + ", ".join(parts) + "}"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Instance({self})"
