"""Relational instances.

An :class:`Instance` maps each relation of a schema to a finite set of
tuples.  Instances are the nodes of the labelled transition system induced
by a schema with access methods (Section 2 of the paper): each node is the
set of facts revealed so far.

Instances are mutable (facts can be added) but expose a frozen, hashable
snapshot (:meth:`Instance.freeze`) used by the LTS exploration code to
detect revisited configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.relational.schema import Relation, Schema, SchemaError

Fact = Tuple[str, Tuple[object, ...]]
FrozenInstance = FrozenSet[Fact]


@dataclass
class Instance:
    """A finite instance of a :class:`~repro.relational.schema.Schema`."""

    schema: Schema

    def __init__(
        self,
        schema: Schema,
        facts: Optional[Mapping[str, Iterable[Sequence[object]]]] = None,
    ) -> None:
        self.schema = schema
        self._data: Dict[str, Set[Tuple[object, ...]]] = {
            name: set() for name in schema.names()
        }
        if facts:
            for name, tuples in facts.items():
                for values in tuples:
                    self.add(name, values)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, relation_name: str, values: Sequence[object]) -> Tuple[object, ...]:
        """Add a tuple to *relation_name*, validating arity and types."""
        relation = self.schema.relation(relation_name)
        tup = relation.validate_tuple(values)
        self._data[relation_name].add(tup)
        return tup

    def add_all(
        self, relation_name: str, tuples: Iterable[Sequence[object]]
    ) -> None:
        """Add several tuples to *relation_name*."""
        for values in tuples:
            self.add(relation_name, values)

    def add_fact(self, fact: Fact) -> None:
        """Add a ``(relation, tuple)`` fact."""
        self.add(fact[0], fact[1])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def tuples(self, relation_name: str) -> FrozenSet[Tuple[object, ...]]:
        """The set of tuples currently stored in *relation_name*."""
        if relation_name not in self._data:
            raise SchemaError(f"unknown relation {relation_name!r}")
        return frozenset(self._data[relation_name])

    def __contains__(self, fact: Fact) -> bool:
        name, tup = fact
        return name in self._data and tuple(tup) in self._data[name]

    def contains(self, relation_name: str, values: Sequence[object]) -> bool:
        """Whether the given tuple is present in *relation_name*."""
        return (relation_name, tuple(values)) in self

    def facts(self) -> Iterator[Fact]:
        """Iterate over all facts as ``(relation, tuple)`` pairs."""
        for name in self.schema.names():
            for tup in sorted(self._data[name], key=repr):
                yield (name, tup)

    def size(self) -> int:
        """Total number of facts."""
        return sum(len(tuples) for tuples in self._data.values())

    def __len__(self) -> int:
        return self.size()

    def is_empty(self) -> bool:
        """Whether the instance contains no facts."""
        return self.size() == 0

    def active_domain(self) -> FrozenSet[object]:
        """The set of values occurring in any fact (the *active domain*)."""
        values: Set[object] = set()
        for tuples in self._data.values():
            for tup in tuples:
                values.update(tup)
        return frozenset(values)

    def relation_names(self) -> Tuple[str, ...]:
        """Names of the relations of the underlying schema."""
        return self.schema.names()

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def copy(self) -> "Instance":
        """A deep copy of this instance (sharing the schema object)."""
        clone = Instance(self.schema)
        for name, tuples in self._data.items():
            clone._data[name] = set(tuples)
        return clone

    def union(self, other: "Instance") -> "Instance":
        """Fact-wise union of two instances over the same schema."""
        if other.schema.names() != self.schema.names():
            raise SchemaError("cannot union instances over different schemas")
        result = self.copy()
        for name, tuples in other._data.items():
            result._data[name].update(tuples)
        return result

    def union_facts(self, facts: Iterable[Fact]) -> "Instance":
        """A new instance extended with the given facts."""
        result = self.copy()
        for fact in facts:
            result.add_fact(fact)
        return result

    def is_subinstance_of(self, other: "Instance") -> bool:
        """Whether every fact of ``self`` is a fact of *other*."""
        for name, tuples in self._data.items():
            if not tuples <= other._data.get(name, set()):
                return False
        return True

    def intersect(self, other: "Instance") -> "Instance":
        """Fact-wise intersection."""
        result = Instance(self.schema)
        for name, tuples in self._data.items():
            result._data[name] = tuples & other._data.get(name, set())
        return result

    def restrict_to_values(self, values: Iterable[object]) -> "Instance":
        """Keep only the facts all of whose values belong to *values*.

        Used by the Boundedness Lemma (Lemma 4.13) style constructions that
        shrink a witness path to a polynomial-size one.
        """
        allowed = set(values)
        result = Instance(self.schema)
        for name, tuples in self._data.items():
            result._data[name] = {
                tup for tup in tuples if all(v in allowed for v in tup)
            }
        return result

    # ------------------------------------------------------------------
    # Hashable snapshots
    # ------------------------------------------------------------------
    def freeze(self) -> FrozenInstance:
        """A hashable snapshot of the instance (a frozenset of facts)."""
        return frozenset(
            (name, tup) for name, tuples in self._data.items() for tup in tuples
        )

    @classmethod
    def from_frozen(cls, schema: Schema, frozen: FrozenInstance) -> "Instance":
        """Rebuild an instance from a frozen snapshot."""
        instance = cls(schema)
        for name, tup in frozen:
            instance.add(name, tup)
        return instance

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self.freeze() == other.freeze()

    def __hash__(self) -> int:
        return hash(self.freeze())

    def __str__(self) -> str:
        parts = []
        for name in self.schema.names():
            for tup in sorted(self._data[name], key=repr):
                parts.append(f"{name}{tup!r}")
        return "{" + ", ".join(parts) + "}"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Instance({self})"
