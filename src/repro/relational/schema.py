"""Relational schemas under the unnamed perspective.

A :class:`Relation` has a name, an arity and a datatype per position
(positions are 1-based in the paper; we keep them 0-based internally but
expose helpers for both conventions).  A :class:`Schema` is a collection of
relations with unique names.  Access methods (Section 2 of the paper) are
layered on top of schemas in :mod:`repro.access.methods`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.relational.types import ANY, DataType, Domain


class SchemaError(ValueError):
    """Raised for malformed schemas, relations or tuples."""


@dataclass(frozen=True)
class Relation:
    """A relation symbol: a name, an arity and per-position datatypes.

    Parameters
    ----------
    name:
        Relation name, unique within a schema.
    arity:
        Number of positions.
    types:
        Optional tuple of datatypes, one per position.  Defaults to the
        catch-all ``ANY`` type for every position.
    domains:
        Optional per-position domains, used by bounded model checkers and
        workload generators to enumerate candidate values.
    """

    name: str
    arity: int
    types: Tuple[DataType, ...] = ()
    domains: Tuple[Optional[Domain], ...] = ()

    def __post_init__(self) -> None:
        if self.arity < 0:
            raise SchemaError(f"relation {self.name!r} has negative arity")
        if not self.types:
            object.__setattr__(self, "types", tuple(ANY for _ in range(self.arity)))
        if len(self.types) != self.arity:
            raise SchemaError(
                f"relation {self.name!r}: expected {self.arity} types, got {len(self.types)}"
            )
        if not self.domains:
            object.__setattr__(self, "domains", tuple(None for _ in range(self.arity)))
        if len(self.domains) != self.arity:
            raise SchemaError(
                f"relation {self.name!r}: expected {self.arity} domains, got {len(self.domains)}"
            )

    @property
    def positions(self) -> range:
        """0-based positions of the relation."""
        return range(self.arity)

    def validate_tuple(self, values: Sequence[object]) -> Tuple[object, ...]:
        """Check that *values* is a well-typed tuple for this relation.

        Returns the tuple (as a ``tuple``) so callers can store it directly.
        """
        tup = tuple(values)
        if len(tup) != self.arity:
            raise SchemaError(
                f"tuple {tup!r} has {len(tup)} values but {self.name} has arity {self.arity}"
            )
        for pos, value in enumerate(tup):
            if not self.types[pos].contains(value):
                raise SchemaError(
                    f"value {value!r} at position {pos} of {self.name} is not of type "
                    f"{self.types[pos].name}"
                )
        return tup

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"


@dataclass
class Schema:
    """A relational schema: a set of relations with unique names."""

    relations: Dict[str, Relation] = field(default_factory=dict)

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self.relations = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: Relation) -> Relation:
        """Add *relation* to the schema; names must be unique."""
        if relation.name in self.relations:
            raise SchemaError(f"duplicate relation name {relation.name!r}")
        self.relations[relation.name] = relation
        return relation

    def add_relation(
        self,
        name: str,
        arity: int,
        types: Sequence[DataType] = (),
        domains: Sequence[Optional[Domain]] = (),
    ) -> Relation:
        """Convenience constructor-and-add for a relation."""
        return self.add(Relation(name, arity, tuple(types), tuple(domains)))

    def relation(self, name: str) -> Relation:
        """Return the relation named *name*, raising ``SchemaError`` if absent."""
        try:
            return self.relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self.relations.values())

    def __len__(self) -> int:
        return len(self.relations)

    def names(self) -> Tuple[str, ...]:
        """Relation names in insertion order."""
        return tuple(self.relations)

    def arity(self, name: str) -> int:
        """Arity of the relation named *name*."""
        return self.relation(name).arity

    def restrict(self, names: Iterable[str]) -> "Schema":
        """A new schema containing only the named relations."""
        return Schema([self.relation(name) for name in names])

    def extend(self, relations: Iterable[Relation]) -> "Schema":
        """A new schema with the given relations added."""
        merged = Schema(list(self))
        for relation in relations:
            merged.add(relation)
        return merged

    def max_arity(self) -> int:
        """The maximal arity over all relations (0 for an empty schema)."""
        return max((rel.arity for rel in self), default=0)

    def __str__(self) -> str:
        return "Schema(" + ", ".join(str(rel) for rel in self) + ")"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.relations == other.relations


def make_schema(spec: Mapping[str, int]) -> Schema:
    """Build a schema from a ``{name: arity}`` mapping.

    This is the most common construction in tests and benchmarks where the
    datatypes are irrelevant.
    """
    return Schema([Relation(name, arity) for name, arity in spec.items()])
