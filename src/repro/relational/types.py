"""Datatypes and domains.

The paper (Section 2) fixes a set ``Types`` of datatypes that contains at
least the integers and the booleans.  Schemas assign a datatype to every
position of every relation.  For finite model search (used by the bounded
reference model checkers, the ΣP2 procedure of Theorem 4.14 and the
workload generators) it is also convenient to have explicitly finite
*enum* domains; the hardness argument for Theorem 4.14 relies on positions
with finite datatypes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Tuple


def is_placeholder(value: object) -> bool:
    """Whether *value* is a labelled-null placeholder.

    Canonical databases, frozen query images and the bounded model checkers
    use string values prefixed with ``"~"`` as labelled nulls standing for
    "some value of the appropriate type".  Placeholders are members of
    every datatype, so typed schemas accept canonical instances.
    """
    return isinstance(value, str) and value.startswith("~")


@dataclass(frozen=True)
class DataType:
    """A named datatype.

    Parameters
    ----------
    name:
        Human readable name of the type (``"int"``, ``"string"`` ...).
    python_types:
        Python types whose values are considered members of the datatype.
        Membership is checked structurally by :meth:`contains`; labelled
        null placeholders (see :func:`is_placeholder`) belong to every type.
    """

    name: str
    python_types: Tuple[type, ...] = (object,)

    def contains(self, value: object) -> bool:
        """Return ``True`` if *value* is a member of this datatype."""
        if is_placeholder(value):
            return True
        if bool in self.python_types and isinstance(value, bool):
            return True
        if isinstance(value, bool) and bool not in self.python_types:
            return False
        return isinstance(value, self.python_types)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


#: The integer datatype required by the paper.
INT = DataType("int", (int,))

#: The boolean datatype required by the paper.
BOOL = DataType("bool", (bool,))

#: Strings, used pervasively by the web-directory examples.
STRING = DataType("string", (str,))

#: A catch-all datatype accepting any hashable value.
ANY = DataType("any", (object,))


@dataclass(frozen=True)
class Domain:
    """A (possibly infinite) domain of values of a given datatype.

    An unbounded :class:`Domain` simply wraps a :class:`DataType`; use
    :class:`EnumDomain` when the set of possible values is finite and known,
    which enables exhaustive enumeration in the bounded model checkers.
    """

    datatype: DataType = ANY

    @property
    def is_finite(self) -> bool:
        """Whether the domain can be exhaustively enumerated."""
        return False

    def contains(self, value: object) -> bool:
        """Return ``True`` if *value* belongs to the domain."""
        return self.datatype.contains(value)

    def sample(self, count: int) -> Sequence[object]:
        """Return *count* representative values from the domain.

        For unbounded domains we synthesise fresh values; the concrete
        values are irrelevant (the logics only compare for equality), only
        their distinctness matters.
        """
        if self.datatype is INT:
            return list(range(count))
        if self.datatype is BOOL:
            return [False, True][:count]
        return [f"{self.datatype.name}_{i}" for i in range(count)]


@dataclass(frozen=True)
class EnumDomain(Domain):
    """A finite, explicitly enumerated domain.

    Finite datatypes matter for the lower bound of Theorem 4.14 (hardness
    via non-containment of positive queries over enum types) and are handy
    for workload generation.
    """

    values: Tuple[object, ...] = field(default=())

    @property
    def is_finite(self) -> bool:
        return True

    def contains(self, value: object) -> bool:
        return value in self.values

    def sample(self, count: int) -> Sequence[object]:
        return list(self.values[:count])

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)


def enum_domain(values: Iterable[object], datatype: DataType = ANY) -> EnumDomain:
    """Build an :class:`EnumDomain` from any iterable of values."""
    return EnumDomain(datatype=datatype, values=tuple(values))
