"""Persistent fact-store subsystem: O(1) snapshots + parallel chain checking.

See ``src/repro/store/README.md`` for the architecture note.
"""

from repro.store.hamt import EMPTY_PMAP, PMap
from repro.store.snapshot import Shard, Snapshot, SnapshotInstance

__all__ = [
    "EMPTY_PMAP",
    "PMap",
    "Shard",
    "Snapshot",
    "SnapshotInstance",
]
