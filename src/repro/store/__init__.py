"""Persistent fact-store subsystem: O(1) snapshots + parallel chain checking.

See ``src/repro/store/README.md`` for the architecture note.
"""

from repro.store.backend import (
    BACKENDS,
    MEMORY_BACKEND,
    SQLITE_BACKEND,
    StoreBackend,
    configured_store_backend,
    create_store,
    resolve_backend,
)
from repro.store.hamt import EMPTY_PMAP, PMap
from repro.store.snapshot import Shard, Snapshot, SnapshotInstance
from repro.store.sqlstore import SQLSnapshot, SQLStoreInstance, SQLStoreView
from repro.store.verdict_cache import (
    BloomFilter,
    LRUMemo,
    VerdictCache,
    atomic_write_bytes,
    clear_store,
    encode_key,
    store_stats,
    verify_store,
)
from repro.store.workqueue import (
    DEFAULT_SPLIT_BUDGET,
    SubtreeExecutor,
    discard_shared_pool,
    shared_pool,
    subtree_split_budget,
)

__all__ = [
    "BACKENDS",
    "MEMORY_BACKEND",
    "SQLITE_BACKEND",
    "StoreBackend",
    "configured_store_backend",
    "create_store",
    "resolve_backend",
    "EMPTY_PMAP",
    "PMap",
    "Shard",
    "Snapshot",
    "SnapshotInstance",
    "SQLSnapshot",
    "SQLStoreInstance",
    "SQLStoreView",
    "BloomFilter",
    "LRUMemo",
    "VerdictCache",
    "atomic_write_bytes",
    "clear_store",
    "encode_key",
    "store_stats",
    "verify_store",
    "DEFAULT_SPLIT_BUDGET",
    "SubtreeExecutor",
    "discard_shared_pool",
    "shared_pool",
    "subtree_split_budget",
]
