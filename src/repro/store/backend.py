"""The store backend interface and factory.

Two backends satisfy :class:`StoreBackend`:

- ``memory`` — :class:`~repro.store.snapshot.SnapshotInstance`: adaptive
  frozenset/HAMT shards, O(#relations) snapshot/restore *and* O(1)
  branching (``copy`` shares structure).  The default; fastest below the
  memory wall and the only sensible choice for deep branching searches.
- ``sqlite`` — :class:`~repro.store.sqlstore.SQLStoreInstance`: facts
  live in an embedded SQLite database (anonymous scratch file or a
  persistent path), snapshots are MVCC generation tokens, and large
  joins push down as parameterized SQL (see
  :mod:`repro.store.sqlcodegen`).  Instances bigger than RAM; branching
  (``copy``) is O(n).

Both expose the same facade surface (the ``_data`` mapping, the
``index``/``tuples``/``tuples_view`` probes, ``add``/``add_unchecked``/
``discard``, ``snapshot``/``restore``/``fingerprint``), so the compiled
plan executor, the Datalog evaluator and the decision engine are
backend-agnostic.  Cross-backend snapshots hash and compare equal on
equal facts — engine memo keys and the persistent verdict cache carry
across.

The default backend is selected by the ``REPRO_STORE_BACKEND`` knob
(registered in :mod:`repro.obs.env`); call sites that want an explicit
choice pass ``backend=`` to :func:`create_store`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.obs import env as _env
from repro.relational.schema import Schema
from repro.store.snapshot import SnapshotInstance
from repro.store.sqlstore import SQLStoreInstance

MEMORY_BACKEND = "memory"
SQLITE_BACKEND = "sqlite"

#: Every recognised ``REPRO_STORE_BACKEND`` value.
BACKENDS = (MEMORY_BACKEND, SQLITE_BACKEND)


class StoreBackend(ABC):
    """The facade surface both store backends satisfy.

    An abstract interface (with virtual registration, so the concrete
    classes pay no MRO cost): the contract is the
    :class:`~repro.store.snapshot.SnapshotInstance` API — reads
    (``tuples``/``tuples_view``/``index``/``contains``/``size``/
    ``facts``/``freeze``), mutations (``add``/``add_unchecked``/
    ``discard``), and O(cheap) state tokens (``snapshot``/``restore``/
    ``fingerprint``) whose hashes agree across backends on equal facts.
    """

    @abstractmethod
    def snapshot(self):
        """The current state as an immutable, O(1)-hashable token."""

    @abstractmethod
    def restore(self, snap) -> None:
        """Return to a previously taken snapshot of this store."""

    @abstractmethod
    def fingerprint(self):
        """An exact content key: equal facts ⇒ equal key, across backends."""

    @abstractmethod
    def add_unchecked(self, relation_name, tup) -> bool:
        """Insert a validated tuple; True iff it was new."""

    @abstractmethod
    def discard(self, relation_name, tup) -> bool:
        """Remove a tuple if present; True iff it was removed."""

    @abstractmethod
    def tuples_view(self, relation_name):
        """The relation's current tuple set (empty for unknown names)."""

    @abstractmethod
    def index(self, relation_name, position, value):
        """The tuples whose *position*-th value equals *value*."""

    @abstractmethod
    def size(self) -> int:
        """Total fact count."""


StoreBackend.register(SnapshotInstance)
StoreBackend.register(SQLStoreInstance)


def configured_store_backend() -> str:
    """The backend name selected by ``REPRO_STORE_BACKEND`` (warn-once)."""
    return _env.choice(
        _env.STORE_BACKEND_ENV, BACKENDS, _env.DEFAULT_STORE_BACKEND
    )


def resolve_backend(backend: Optional[str]) -> str:
    """*backend* if given, else the environment-configured default."""
    if backend is None:
        return configured_store_backend()
    if backend not in BACKENDS:
        raise ValueError(
            "unknown store backend " + repr(backend) + "; expected one of "
            + ", ".join(BACKENDS)
        )
    return backend


def create_store(
    schema: Schema,
    backend: Optional[str] = None,
    path: Optional[str] = None,
) -> StoreBackend:
    """A fresh empty store on the requested (or configured) backend.

    *path* persists a ``sqlite`` store on disk (reopenable with
    :meth:`SQLStoreInstance.open`); the memory backend rejects it.
    """
    name = resolve_backend(backend)
    if name == SQLITE_BACKEND:
        return SQLStoreInstance(schema, path)
    if path is not None:
        raise ValueError("the memory backend does not take a path")
    return SnapshotInstance(schema)
