"""Deterministic fault injection for the pool paths (``REPRO_FAULT_INJECT``).

The robustness guarantees of the parallel modes — verdicts never change
when workers die, stall or return garbage — are only worth stating if
they are *provable*.  This module scripts faults at exact points so the
determinism suites can kill a worker on the third subtree item, delay a
chain result past its timeout, or corrupt a result pickle, and then
assert field-by-field agreement with the sequential oracle.

## Spec format

A spec is a comma-separated list of ``action@point:index[:arg]``:

* ``action`` — ``kill`` (the worker process exits hard, breaking the
  pool), ``delay`` (the worker sleeps ``arg`` seconds before computing —
  pair with ``REPRO_POOL_ITEM_TIMEOUT`` to exercise the timeout path),
  ``corrupt`` (the worker raises :class:`pickle.UnpicklingError`,
  modelling a result blob that cannot be decoded — the coordinator's
  fail-fast payload-error path), or ``raise`` (a generic transient
  ``RuntimeError`` — the retry path).
* ``point`` — which worker entry the fault arms: ``subtree`` (one
  subtree work item), ``chain`` (one whole-chain emptiness task),
  ``task`` (one pooled engine reduction task).
* ``index`` — fire on the *N*-th hit of that point (0-based).  Counters
  are per process: a single-worker pool makes indices exact; with more
  workers each counts its own stream.

Example: ``kill@subtree:2,delay@chain:0:0.2``.

## Storage fault points

The verdict cache (:mod:`repro.store.verdict_cache`) consults a second
family of points through :func:`storage_fault`, which *returns* the armed
fault instead of executing it — each point has storage semantics the
cache implements at the exact syscall boundary:

* ``torn_write`` — the atomic-write helper persists only a truncated
  prefix (``trip``), or dies mid-write with the tmp file on disk and the
  destination untouched (``kill``);
* ``corrupt_record`` — one record's value bytes are flipped before the
  segment is written, so its checksum fails on read;
* ``partial_read`` — a segment read returns a truncated byte string;
* ``lock_timeout`` — the advisory-lock acquisition reports an immediate
  timeout;
* ``disk_full`` — the atomic-write helper raises ``ENOSPC``.

The SQL store backend (:mod:`repro.store.sqlstore`) consults two more:

* ``sql_commit`` — the snapshot checkpoint fails before ``COMMIT``:
  ``trip`` rolls the transaction back (a torn transaction — the store
  resynchronises to the last committed snapshot and raises), ``kill``
  dies hard pre-commit so a reopened store proves SQLite's journal
  recovers the previous snapshot;
* ``sql_pushdown`` — the SQL join pushdown degrades to the in-memory
  executor over the same facade (counted in ``store.pushdown_fault``,
  verdict-identical).

The canonical action for storage points is ``trip`` (apply the point's
storage semantics); ``kill`` at ``torn_write`` scripts the mid-write
process death.  Example: ``trip@corrupt_record:0,trip@lock_timeout:1``.

## Activation

Tests install a parsed plan in-process (:func:`install` / :func:`clear`)
or set the :data:`FAULT_INJECT_ENV` environment variable before creating
the pool — forked workers inherit the environment, so scripted faults
fire inside real worker processes.  Production code never calls
:func:`fire` unless a plan is active; the hot-path cost of the hook is
one module attribute read and one ``dict.get`` on the environment.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Environment variable holding the fault spec (see the module docstring).
FAULT_INJECT_ENV = "REPRO_FAULT_INJECT"

_ACTIONS = ("kill", "delay", "corrupt", "raise", "trip")
_POINTS = ("subtree", "chain", "task")
#: Storage fault points consulted by :func:`storage_fault` (the verdict
#: cache implements each point's semantics at its own syscall boundary).
STORAGE_POINTS = (
    "torn_write",
    "corrupt_record",
    "partial_read",
    "lock_timeout",
    "disk_full",
    "sql_commit",
    "sql_pushdown",
)

#: Exit code of a scripted worker kill — distinctive in core-dump triage.
KILL_EXIT_CODE = 86


@dataclass(frozen=True)
class Fault:
    """One scripted fault: *action* at the *index*-th hit of *point*."""

    action: str
    point: str
    index: int
    arg: float = 0.0


class FaultPlan:
    """A parsed spec plus per-point hit counters (process-local state)."""

    def __init__(self, faults: Tuple[Fault, ...]) -> None:
        self.faults = faults
        self._hits: Dict[str, int] = {}

    def next_fault(self, point: str) -> Optional[Fault]:
        """The fault armed for this hit of *point*, advancing the counter."""
        hit = self._hits.get(point, 0)
        self._hits[point] = hit + 1
        for fault in self.faults:
            if fault.point == point and fault.index == hit:
                return fault
        return None


def parse_fault_spec(text: str) -> Tuple[Fault, ...]:
    """Parse a spec string (raises ``ValueError`` on malformed entries)."""
    faults = []
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        try:
            action, rest = entry.split("@", 1)
            point, _, tail = rest.partition(":")
            index_text, _, arg_text = tail.partition(":")
            index = int(index_text)
            arg = float(arg_text) if arg_text else 0.0
        except ValueError:
            raise ValueError(
                f"malformed {FAULT_INJECT_ENV} entry {entry!r} "
                "(expected action@point:index[:arg])"
            ) from None
        if action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {action!r} (one of {_ACTIONS})"
            )
        if point not in _POINTS and point not in STORAGE_POINTS:
            raise ValueError(
                f"unknown fault point {point!r} "
                f"(one of {_POINTS + STORAGE_POINTS})"
            )
        if index < 0:
            raise ValueError(f"fault index must be >= 0, got {index}")
        faults.append(Fault(action, point, index, arg))
    return tuple(faults)


# ----------------------------------------------------------------------
# Process-local plan state
# ----------------------------------------------------------------------
_INSTALLED: Optional[FaultPlan] = None
#: Cache of the environment-derived plan, keyed by the raw spec string so
#: tests that monkeypatch the variable get a fresh plan (and counters).
_ENV_PLAN: Optional[Tuple[str, FaultPlan]] = None


def install(spec) -> FaultPlan:
    """Install a plan in-process (test hook).  Accepts a spec string or plan."""
    global _INSTALLED
    plan = spec if isinstance(spec, FaultPlan) else FaultPlan(parse_fault_spec(spec))
    _INSTALLED = plan
    return plan


def clear() -> None:
    """Remove any installed plan and forget the cached environment plan."""
    global _INSTALLED, _ENV_PLAN
    _INSTALLED = None
    _ENV_PLAN = None


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, else one parsed from the environment, else ``None``."""
    global _ENV_PLAN
    if _INSTALLED is not None:
        return _INSTALLED
    raw = os.environ.get(FAULT_INJECT_ENV, "").strip()
    if not raw:
        return None
    if _ENV_PLAN is None or _ENV_PLAN[0] != raw:
        try:
            _ENV_PLAN = (raw, FaultPlan(parse_fault_spec(raw)))
        except ValueError:
            # A malformed spec must not take the pool down; the env-var
            # warning machinery (store.workqueue) reports it.
            _ENV_PLAN = (raw, FaultPlan(()))
    return _ENV_PLAN[1]


def fire(point: str) -> None:
    """Apply the fault scripted for this hit of *point*, if any.

    Called at the worker entry points.  ``kill`` exits the process hard
    (``os._exit`` — no cleanup, exactly like a crashed worker), ``delay``
    sleeps, ``corrupt`` raises :class:`pickle.UnpicklingError` and
    ``raise`` a ``RuntimeError``; with no active plan this is a no-op.
    """
    plan = active_plan()
    if plan is None:
        return
    fault = plan.next_fault(point)
    if fault is None:
        return
    if fault.action == "kill":
        os._exit(KILL_EXIT_CODE)
    elif fault.action == "delay":
        time.sleep(fault.arg)
    elif fault.action == "corrupt":
        raise pickle.UnpicklingError(
            f"{FAULT_INJECT_ENV}: scripted corrupt result at {point}:{fault.index}"
        )
    elif fault.action == "raise":
        raise RuntimeError(
            f"{FAULT_INJECT_ENV}: scripted transient failure at {point}:{fault.index}"
        )


def storage_fault(point: str) -> Optional[Fault]:
    """The fault armed for this hit of a storage *point*, if any.

    Unlike :func:`fire`, this never executes the fault: storage faults
    have point-specific semantics (a torn write, a short read, an
    immediate lock timeout) that only the cache's own syscall boundaries
    can realise, so the caller receives the armed :class:`Fault` and acts
    on it in place.  With no active plan the hot-path cost is one module
    attribute read.
    """
    plan = active_plan()
    if plan is None:
        return None
    return plan.next_fault(point)
