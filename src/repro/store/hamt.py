"""A persistent hash array mapped trie (HAMT) map.

This is the structural-sharing substrate of the fact store
(:mod:`repro.store.snapshot`): an immutable mapping with O(log32 n)
``set``/``delete``/``get`` where every update returns a *new* map sharing
all untouched subtrees with the old one.  Taking a snapshot of a store
built on these maps is therefore O(1) — the snapshot simply retains the
current roots — and restoring a snapshot is equally O(1).

Design notes
------------

* **Node kinds.**  ``_Leaf`` holds one ``(hash, key, value)`` entry;
  ``_Bitmap`` is the classic 32-way bitmap-indexed branch node;
  ``_Collision`` holds the (rare) entries whose masked hashes are fully
  equal.  The empty map has root ``None``.

* **Canonical shape.**  For a fixed hash function the shape of the trie
  depends only on the *set* of keys, not on the insertion order: inserts
  place entries by hash bits alone, and deletes collapse branch nodes
  back to leaves whenever a single non-branch entry remains.  Structural
  equality (:meth:`PMap.__eq__`) exploits this — it walks both tries in
  lockstep with an identity short-circuit, so comparing two snapshots
  that share most of their structure touches only the differing subtrees.

* **Hash stability across processes.**  The trie layout depends on
  ``hash()``, which for strings is randomized per process.  A pickled
  map therefore never ships its nodes: :meth:`PMap.__reduce__`
  serialises the items and the receiving process rebuilds the trie with
  its own hash seed.  This is what makes snapshots safely picklable into
  worker processes (see :mod:`repro.store.parallel`) even under the
  ``spawn`` start method.

The map is deliberately minimal: exactly the operations the fact store
needs, nothing speculative.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

_BITS = 5
_MASK = (1 << _BITS) - 1
# Hashes are masked to 60 bits (12 levels of 5 bits) so that negative
# Python hashes index correctly and the trie has a fixed maximal depth.
_HASH_BITS = 60
_HASH_MASK = (1 << _HASH_BITS) - 1


class _Leaf:
    __slots__ = ("h", "key", "value")

    def __init__(self, h: int, key: object, value: object) -> None:
        self.h = h
        self.key = key
        self.value = value


class _Collision:
    """Entries whose 60-bit hashes are fully equal (pathological case)."""

    __slots__ = ("h", "pairs")

    def __init__(self, h: int, pairs: Tuple[Tuple[object, object], ...]) -> None:
        self.h = h
        self.pairs = pairs


class _Bitmap:
    __slots__ = ("bitmap", "items")

    def __init__(self, bitmap: int, items: Tuple[object, ...]) -> None:
        self.bitmap = bitmap
        self.items = items


def _key_hash(key: object) -> int:
    return hash(key) & _HASH_MASK


def _merge(shift: int, a: object, b: object) -> _Bitmap:
    """A branch holding two subtrees with distinct hashes (``a.h != b.h``)."""
    index_a = (a.h >> shift) & _MASK  # type: ignore[attr-defined]
    index_b = (b.h >> shift) & _MASK  # type: ignore[attr-defined]
    if index_a == index_b:
        return _Bitmap(1 << index_a, (_merge(shift + _BITS, a, b),))
    if index_a < index_b:
        return _Bitmap((1 << index_a) | (1 << index_b), (a, b))
    return _Bitmap((1 << index_a) | (1 << index_b), (b, a))


def _assoc(node: object, shift: int, h: int, key: object, value: object):
    """Insert/replace ``key``; returns ``(new_node, grew)``."""
    if node is None:
        return _Leaf(h, key, value), True
    if type(node) is _Leaf:
        if node.h == h:
            if node.key == key:
                return _Leaf(h, key, value), False
            return _Collision(h, ((node.key, node.value), (key, value))), True
        return _merge(shift, node, _Leaf(h, key, value)), True
    if type(node) is _Collision:
        if node.h == h:
            for position, (existing, _) in enumerate(node.pairs):
                if existing == key:
                    pairs = (
                        node.pairs[:position]
                        + ((key, value),)
                        + node.pairs[position + 1 :]
                    )
                    return _Collision(h, pairs), False
            return _Collision(h, node.pairs + ((key, value),)), True
        return _merge(shift, node, _Leaf(h, key, value)), True
    # _Bitmap
    index = (h >> shift) & _MASK
    bit = 1 << index
    slot = (node.bitmap & (bit - 1)).bit_count()
    if node.bitmap & bit:
        child, grew = _assoc(node.items[slot], shift + _BITS, h, key, value)
        items = node.items[:slot] + (child,) + node.items[slot + 1 :]
        return _Bitmap(node.bitmap, items), grew
    items = node.items[:slot] + (_Leaf(h, key, value),) + node.items[slot:]
    return _Bitmap(node.bitmap | bit, items), True


def _dissoc(node: object, shift: int, h: int, key: object):
    """Remove ``key``; returns ``(new_node_or_None, removed)``."""
    if node is None:
        return None, False
    if type(node) is _Leaf:
        if node.h == h and node.key == key:
            return None, True
        return node, False
    if type(node) is _Collision:
        if node.h != h:
            return node, False
        for position, (existing, existing_value) in enumerate(node.pairs):
            if existing == key:
                pairs = node.pairs[:position] + node.pairs[position + 1 :]
                if len(pairs) == 1:
                    return _Leaf(h, pairs[0][0], pairs[0][1]), True
                return _Collision(h, pairs), True
        return node, False
    # _Bitmap
    index = (h >> shift) & _MASK
    bit = 1 << index
    if not (node.bitmap & bit):
        return node, False
    slot = (node.bitmap & (bit - 1)).bit_count()
    child, removed = _dissoc(node.items[slot], shift + _BITS, h, key)
    if not removed:
        return node, False
    if child is None:
        bitmap = node.bitmap & ~bit
        items = node.items[:slot] + node.items[slot + 1 :]
        if not items:
            return None, True
        if len(items) == 1 and type(items[0]) is not _Bitmap:
            return items[0], True  # collapse: keeps the shape canonical
        return _Bitmap(bitmap, items), True
    items = node.items[:slot] + (child,) + node.items[slot + 1 :]
    if len(items) == 1 and type(child) is not _Bitmap:
        return child, True
    return _Bitmap(node.bitmap, items), True


def _get(node: object, h: int, key: object, default: object) -> object:
    shift = 0
    while node is not None:
        kind = type(node)
        if kind is _Leaf:
            if node.h == h and node.key == key:
                return node.value
            return default
        if kind is _Collision:
            if node.h == h:
                for existing, value in node.pairs:
                    if existing == key:
                        return value
            return default
        bit = 1 << ((h >> shift) & _MASK)
        if not (node.bitmap & bit):
            return default
        node = node.items[(node.bitmap & (bit - 1)).bit_count()]
        shift += _BITS
    return default


def _iter_items(node: object) -> Iterator[Tuple[object, object]]:
    if node is None:
        return
    stack = [node]
    while stack:
        current = stack.pop()
        kind = type(current)
        if kind is _Leaf:
            yield current.key, current.value
        elif kind is _Collision:
            yield from current.pairs
        else:
            stack.extend(current.items)


def _node_eq(a: object, b: object) -> bool:
    """Structural equality with identity short-circuits.

    Because the shape of a trie is canonical for its key set, equal maps
    have equal shapes (up to the order of collision pairs), so a lockstep
    walk decides equality without materialising either side.
    """
    if a is b:
        return True
    if a is None or b is None:
        return False
    kind = type(a)
    if kind is not type(b):
        return False
    if kind is _Leaf:
        return a.h == b.h and a.key == b.key and a.value == b.value
    if kind is _Collision:
        if a.h != b.h or len(a.pairs) != len(b.pairs):
            return False
        remaining = list(b.pairs)
        for pair in a.pairs:
            try:
                remaining.remove(pair)
            except ValueError:
                return False
        return True
    if a.bitmap != b.bitmap or len(a.items) != len(b.items):
        return False
    return all(_node_eq(x, y) for x, y in zip(a.items, b.items))


class PMap:
    """An immutable, structurally shared mapping.

    Every mutating operation returns a new :class:`PMap`; the receiver is
    never changed.  Iteration order is unspecified (it follows the hash
    layout) — callers needing a stable order must sort.
    """

    __slots__ = ("_root", "_size")

    def __init__(self, items: Optional[Iterable[Tuple[object, object]]] = None) -> None:
        self._root: object = None
        self._size = 0
        if items:
            root = None
            size = 0
            for key, value in items:
                root, grew = _assoc(root, 0, _key_hash(key), key, value)
                if grew:
                    size += 1
            self._root = root
            self._size = size

    @classmethod
    def _from_root(cls, root: object, size: int) -> "PMap":
        new = cls.__new__(cls)
        new._root = root
        new._size = size
        return new

    def set(self, key: object, value: object) -> "PMap":
        """A map with ``key`` bound to ``value``."""
        root, grew = _assoc(self._root, 0, _key_hash(key), key, value)
        return PMap._from_root(root, self._size + (1 if grew else 0))

    def delete(self, key: object) -> "PMap":
        """A map without ``key``; returns ``self`` when the key is absent."""
        root, removed = _dissoc(self._root, 0, _key_hash(key), key)
        if not removed:
            return self
        return PMap._from_root(root, self._size - 1)

    def get(self, key: object, default: object = None) -> object:
        return _get(self._root, _key_hash(key), key, default)

    def __contains__(self, key: object) -> bool:
        sentinel = _ABSENT
        return _get(self._root, _key_hash(key), key, sentinel) is not sentinel

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[object]:
        for key, _ in _iter_items(self._root):
            yield key

    def keys(self) -> Iterator[object]:
        return iter(self)

    def items(self) -> Iterator[Tuple[object, object]]:
        return _iter_items(self._root)

    def values(self) -> Iterator[object]:
        for _, value in _iter_items(self._root):
            yield value

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, PMap):
            return NotImplemented
        if self._size != other._size:
            return False
        return _node_eq(self._root, other._root)

    __hash__ = None  # mutable-by-convention containers as values; keep unhashable

    def __reduce__(self):
        # Never pickle nodes: their layout depends on this process's hash
        # seed.  Ship the items and rebuild on the receiving side.
        return (PMap, (tuple(self.items()),))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        preview = ", ".join(f"{k!r}: {v!r}" for k, v in list(self.items())[:8])
        suffix = ", ..." if self._size > 8 else ""
        return f"PMap({{{preview}{suffix}}})"


class _Absent:
    __slots__ = ()


_ABSENT = _Absent()

EMPTY_PMAP = PMap()
