"""Parallel checking of the Lemma 4.9 chain restrictions.

The emptiness procedure of Theorem 4.6 decomposes an A-automaton into
SCC-chain restrictions whose emptiness checks are *independent*: the
guard/sentence caches of the witness search are per-search already, and
the initial configuration ships as a store snapshot, which is picklable
by construction (:mod:`repro.store.snapshot`).  This module fans those
checks out across a process pool.

Guarantees:

* **Identical verdicts.**  Workers run exactly
  :func:`repro.automata.emptiness.check_restriction` — the same unit of
  work as the sequential loop — and the caller folds the ordered outcome
  list with the same fold as the sequential path, so the resulting
  :class:`~repro.automata.emptiness.EmptinessResult` is bit-identical
  (verdict, witness, ``paths_explored``, ``exhausted``) whether or not a
  pool was used.  The determinism test in
  ``tests/test_parallel_chains.py`` asserts this field by field.

* **Sequential fallback.**  One restriction, one worker, an unavailable
  pool (restricted environments without ``fork``/semaphores) or a worker
  failure all degrade to in-process sequential checking.

The pool prefers the ``fork`` start method (cheap on Linux, inherits the
parent's hash seed); under ``spawn`` correctness is preserved because
snapshots and the persistent maps inside them rebuild themselves from
their fact lists on unpickling instead of shipping hash-seed-dependent
trie layouts.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence

from repro.store.snapshot import Snapshot, SnapshotInstance

#: Environment toggle consulted when ``automaton_emptiness(parallel=None)``.
PARALLEL_CHAINS_ENV = "REPRO_PARALLEL_CHAINS"

#: Upper bound on workers regardless of core count: chain counts are small
#: and each worker pays a full search setup, so very wide pools only add
#: startup latency.
_MAX_WORKERS_CAP = 8


def parallel_chains_enabled() -> bool:
    """Whether the environment opts in to parallel chain checking."""
    value = os.environ.get(PARALLEL_CHAINS_ENV, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


def _worker_count(num_chains: int, max_workers: Optional[int]) -> int:
    if max_workers is not None:
        # An explicit worker count is honoured as given (minus idle
        # workers): tests use it to exercise the real pool on single-core
        # machines, operators to oversubscribe or restrict deliberately.
        return max(1, min(num_chains, max_workers))
    available = os.cpu_count() or 1
    return max(1, min(num_chains, available, _MAX_WORKERS_CAP))


# A lazily created, reused pool: spawning workers costs hundreds of
# milliseconds (fork of a large parent, interpreter warm-up), which would
# otherwise be paid by every emptiness call.  The pool is replaced when a
# caller needs more workers than it has, and discarded on any failure
# (the next call recreates it).
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0


def _get_pool(workers: int) -> ProcessPoolExecutor:
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS >= workers:
        return _POOL
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    _POOL = ProcessPoolExecutor(max_workers=workers, mp_context=context)
    _POOL_WORKERS = workers
    return _POOL


def _discard_pool() -> None:
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        try:
            _POOL.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
    _POOL = None
    _POOL_WORKERS = 0


def _check_chain_payload(payload):
    """Top-level worker entry point (must be picklable by name)."""
    restriction, vocabulary, initial_snapshot, search_kwargs, use_precheck = payload
    from repro.automata.emptiness import check_restriction

    initial = SnapshotInstance.from_snapshot(initial_snapshot)
    return check_restriction(
        restriction, vocabulary, initial, search_kwargs, use_precheck
    )


def _sequential(
    restrictions: Sequence,
    vocabulary,
    initial,
    search_kwargs: Dict[str, object],
    use_datalog_precheck: bool,
) -> List:
    from repro.automata.emptiness import check_restriction

    outcomes = []
    for restriction in restrictions:
        outcome = check_restriction(
            restriction, vocabulary, initial, search_kwargs, use_datalog_precheck
        )
        outcomes.append(outcome)
        if outcome.witness is not None:
            break  # the fold stops here; later chains are dead work
    return outcomes


def map_chain_outcomes(
    restrictions: Sequence,
    vocabulary,
    initial,
    search_kwargs: Dict[str, object],
    use_datalog_precheck: bool,
    max_workers: Optional[int] = None,
):
    """Chain outcomes in restriction order, up to the first witness.

    Dispatches the per-chain checks to a process pool and collects the
    ordered outcomes; once an outcome carries a witness the remaining
    chains are dead work (the caller's fold stops there, mirroring the
    sequential early exit), so not-yet-started tasks are cancelled and
    the list is truncated at that point.  Falls back to in-process
    sequential checking whenever parallelism cannot help (a single
    chain, one worker) or cannot be obtained (no pool, a worker
    failure) — by construction the folded result is the same.
    """
    num_chains = len(restrictions)
    workers = _worker_count(num_chains, max_workers)
    if num_chains <= 1 or workers <= 1:
        return _sequential(
            restrictions, vocabulary, initial, search_kwargs, use_datalog_precheck
        )

    if isinstance(initial, Snapshot):
        initial_snapshot = initial
    else:
        initial_snapshot = SnapshotInstance.from_instance(initial).snapshot()
    payloads = [
        (restriction, vocabulary, initial_snapshot, search_kwargs, use_datalog_precheck)
        for restriction in restrictions
    ]
    try:
        pool = _get_pool(workers)
        futures = [pool.submit(_check_chain_payload, payload) for payload in payloads]
        outcomes = []
        for index, future in enumerate(futures):
            outcome = future.result()
            outcomes.append(outcome)
            if outcome.witness is not None:
                # The fold stops at the first witness in restriction
                # order, so everything after this chain is dead work:
                # cancel what has not started (running tasks finish in
                # the background and are discarded).
                for later in futures[index + 1 :]:
                    later.cancel()
                break
        return outcomes
    except Exception:
        # Pools can be unavailable (sandboxes without semaphores) and
        # exotic payloads can fail to pickle; verdicts must not depend on
        # either, so recompute everything in process.
        _discard_pool()
        return _sequential(
            restrictions, vocabulary, initial, search_kwargs, use_datalog_precheck
        )
