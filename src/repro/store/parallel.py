"""Parallel checking of the Lemma 4.9 chain restrictions.

The emptiness procedure of Theorem 4.6 decomposes an A-automaton into
SCC-chain restrictions whose emptiness checks are *independent*: the
guard/sentence caches of the witness search are per-search already, and
the initial configuration ships as a store snapshot, which is picklable
by construction (:mod:`repro.store.snapshot`).  This module fans those
checks out across the shared persistent process pool
(:mod:`repro.store.workqueue`), and — when subtree mode is on — fans the
*dominant* chain's own DFS subtrees out alongside them, so the pool does
not drain to one busy worker while a hard chain finishes alone.

Guarantees:

* **Identical verdicts.**  Workers run exactly
  :func:`repro.automata.emptiness.check_restriction` — the same unit of
  work as the sequential loop — and the caller folds the ordered outcome
  list with the same fold as the sequential path, so the resulting
  :class:`~repro.automata.emptiness.EmptinessResult` is bit-identical
  (verdict, witness, ``paths_explored``, ``exhausted``) whether or not a
  pool was used.  The determinism tests in
  ``tests/test_parallel_chains.py`` assert this field by field.

* **Cost-gated dispatch.**  Pool dispatch pays startup and pickling
  latency, so it engages only when it can win: there must be usable
  extra CPUs (measured by *scheduling affinity*, not raw core count — a
  container pinned to one CPU can fork a pool but never gains from it)
  and the estimated work must clear ``REPRO_PARALLEL_MIN_COST``.  Below
  either bar, ``parallel=True`` degrades to the in-process loop — the
  gate makes parallel a strict non-loss, which is exactly what the
  ``parallel_chains_par`` benchmark row asserts.  An explicit
  ``max_workers`` overrides the gate (tests use it to exercise the real
  pool on single-core machines; operators to force dispatch).

* **Sequential fallback.**  One restriction, one worker, an unavailable
  pool (restricted environments without ``fork``/semaphores) or a worker
  failure all degrade to in-process sequential checking.

The pool prefers the ``fork`` start method (cheap on Linux, inherits the
parent's hash seed); under ``spawn`` correctness is preserved because
snapshots and the persistent maps inside them rebuild themselves from
their fact lists on unpickling instead of shipping hash-seed-dependent
trie layouts.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional, Sequence

from repro.obs import env as envknobs
from repro.obs import trace as _trace
from repro.store import faults, workqueue
from repro.store.snapshot import Snapshot, SnapshotInstance
from repro.store.workqueue import SubtreeExecutor, warn_invalid_env

#: Environment toggle consulted when ``automaton_emptiness(parallel=None)``.
PARALLEL_CHAINS_ENV = envknobs.PARALLEL_CHAINS_ENV

#: Environment toggle consulted when
#: ``automaton_emptiness(subtree_parallel=None)``: decompose each chain's
#: witness search into subtree work items (deterministic semantics; pool
#: dispatch still requires ``parallel`` and the cost gate).
PARALLEL_SUBTREES_ENV = envknobs.PARALLEL_SUBTREES_ENV

#: Environment override for the dispatch cost gate (see
#: :func:`min_dispatch_cost`).
PARALLEL_MIN_COST_ENV = envknobs.PARALLEL_MIN_COST_ENV

#: Default for :func:`min_dispatch_cost`: estimated-work floor below
#: which ``parallel=True`` stays in process.  The unit is the
#: :func:`estimate_chain_cost` proxy — roughly ``automaton size ×
#: exploration budget``; the default clears comfortably for the
#: multi-second workloads parallelism targets and blocks the
#: millisecond-scale calls where pool latency dominates.
DEFAULT_MIN_DISPATCH_COST = envknobs.DEFAULT_MIN_DISPATCH_COST

#: Upper bound on workers regardless of core count: chain counts are small
#: and each worker pays a full search setup, so very wide pools only add
#: startup latency.
_MAX_WORKERS_CAP = 8

#: How many parallel units to assume when sizing a pool for subtree mode:
#: a single chain still yields many subtree items, so the pool is sized
#: by CPUs/cap rather than by the chain count.
_SUBTREE_POOL_UNITS = 8


#: Back-compat alias; the lenient-flag semantics live in the knob
#: registry (:func:`repro.obs.env.flag_lenient`).
_env_flag = envknobs.flag_lenient


def parallel_chains_enabled() -> bool:
    """Whether the environment opts in to parallel chain checking."""
    return _env_flag(PARALLEL_CHAINS_ENV)


def subtree_parallel_enabled() -> bool:
    """Whether the environment opts in to subtree-decomposed searches."""
    return _env_flag(PARALLEL_SUBTREES_ENV)


def min_dispatch_cost() -> int:
    """Estimated-work floor for pool dispatch (env override or default)."""
    return envknobs.non_negative_int(PARALLEL_MIN_COST_ENV, DEFAULT_MIN_DISPATCH_COST)


def available_cpus() -> int:
    """CPUs this process may actually run on (scheduling affinity).

    ``os.cpu_count()`` reports the machine; a containerised or
    CPU-pinned process can see many cores it will never be scheduled
    onto, in which case a worker pool only adds dispatch overhead — the
    exact failure mode the cost gate exists to prevent.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def estimate_chain_cost(
    restriction,
    search_kwargs: Dict[str, object],
    pool_size: Optional[int] = None,
) -> int:
    """Deterministic proxy for one chain's witness-search work.

    ``automaton size × exploration budget``: the candidate loop is
    per-transition guard work and the budget caps the explored nodes.
    ``max_paths`` alone overestimates small searches badly (the default
    cap is 40 000 but a three-fact pool exhausts after a few hundred
    nodes), so the budget is additionally bounded by a branching proxy
    of the search space, ``(pool + 2) ^ min(max_length, 8)``.  All
    inputs are known before any search setup and the estimate is a pure
    function of them — gate decisions never depend on machine state and
    cannot perturb results (gating only chooses *where* identical work
    runs).
    """
    budget = int(search_kwargs.get("max_paths") or 0)
    if pool_size is None:
        fact_pool = search_kwargs.get("fact_pool")
        pool_size = len(fact_pool) if fact_pool is not None else None
    max_length = search_kwargs.get("max_length")
    if pool_size is not None and max_length:
        space = (pool_size + 2) ** min(int(max_length), 8)
        budget = min(budget, space)
    states, transitions = restriction.size()
    return (states + transitions) * budget


def _worker_count(num_units: int, max_workers: Optional[int]) -> int:
    if max_workers is not None:
        # An explicit worker count is honoured as given (minus idle
        # workers): tests use it to exercise the real pool on single-core
        # machines, operators to oversubscribe or restrict deliberately.
        return max(1, min(num_units, max_workers))
    return max(1, min(num_units, available_cpus(), _MAX_WORKERS_CAP))


def _should_dispatch(total_cost: int, max_workers: Optional[int]) -> bool:
    if max_workers is not None:
        return True
    return total_cost >= min_dispatch_cost()


def _check_chain_payload(payload):
    """Top-level worker entry point (must be picklable by name).

    The payload's optional sixth element is the coordinator's tracing
    flag; when set, the worker records its ``emptiness.chain`` span tree
    locally and ships it back on ``ChainOutcome.spans`` for the
    coordinator to fold into the parent trace.
    """
    restriction, vocabulary, initial_snapshot, search_kwargs, use_precheck = payload[:5]
    trace_on = bool(payload[5]) if len(payload) > 5 else False
    from repro.automata.emptiness import check_restriction

    _trace.configure_worker(trace_on)
    faults.fire("chain")
    initial = SnapshotInstance.from_snapshot(initial_snapshot)
    outcome = check_restriction(
        restriction, vocabulary, initial, search_kwargs, use_precheck
    )
    if trace_on:
        spans = tuple(_trace.take_spans())
        if spans:
            outcome = dataclasses.replace(outcome, spans=spans)
    return outcome


def _sequential(
    restrictions: Sequence,
    vocabulary,
    initial,
    search_kwargs: Dict[str, object],
    use_datalog_precheck: bool,
) -> List:
    from repro.automata.emptiness import check_restriction

    outcomes = []
    for restriction in restrictions:
        outcome = check_restriction(
            restriction, vocabulary, initial, search_kwargs, use_datalog_precheck
        )
        outcomes.append(outcome)
        if outcome.witness is not None:
            break  # the fold stops here; later chains are dead work
    return outcomes


def _initial_snapshot(initial) -> Snapshot:
    if isinstance(initial, Snapshot):
        return initial
    return SnapshotInstance.from_instance(initial).snapshot()


def _chain_fanout(
    pool,
    restrictions: Sequence,
    vocabulary,
    initial,
    search_kwargs: Dict[str, object],
    use_datalog_precheck: bool,
) -> List:
    """Whole-chain fan-out: one pool task per restriction."""
    initial_snapshot = _initial_snapshot(initial)
    payloads = [
        (
            restriction,
            vocabulary,
            initial_snapshot,
            search_kwargs,
            use_datalog_precheck,
            _trace.enabled(),
        )
        for restriction in restrictions
    ]
    futures = [pool.submit(_check_chain_payload, payload) for payload in payloads]
    outcomes = []
    for index, future in enumerate(futures):
        outcome = future.result()
        _trace.attach_children(outcome.spans)
        outcomes.append(outcome)
        if outcome.witness is not None:
            # The fold stops at the first witness in restriction order,
            # so everything after this chain is dead work: cancel what
            # has not started (running tasks finish in the background
            # and are discarded).
            for later in futures[index + 1 :]:
                later.cancel()
            break
    return outcomes


def _hybrid_fanout(
    pool,
    restrictions: Sequence,
    vocabulary,
    initial,
    search_kwargs: Dict[str, object],
    use_datalog_precheck: bool,
    pool_size: Optional[int] = None,
) -> List:
    """Subtree-aware placement: split the straggler, pool the rest.

    The chain with the largest cost estimate is the straggler that makes
    whole-chain granularity lose; its witness search runs in the
    coordinator with its DFS subtrees dispatched to the shared pool,
    while every other chain ships as a whole-chain task into the same
    queue.  Workers therefore stay busy on the dominant chain's items as
    the small chains drain — the sequential tail is split instead of
    waited on.  Placement depends on runtime estimates, but the subtree
    decomposition's results are placement-independent, so the folded
    outcome never does.
    """
    from repro.automata.emptiness import check_restriction

    costs = [
        estimate_chain_cost(r, search_kwargs, pool_size) for r in restrictions
    ]
    dominant = max(range(len(restrictions)), key=lambda i: (costs[i], -i))
    initial_snapshot = _initial_snapshot(initial)
    futures = {}
    for index, restriction in enumerate(restrictions):
        if index == dominant:
            continue
        payload = (
            restriction,
            vocabulary,
            initial_snapshot,
            search_kwargs,
            use_datalog_precheck,
            _trace.enabled(),
        )
        futures[index] = pool.submit(_check_chain_payload, payload)

    def _earlier_witness_already_found() -> bool:
        # Non-blocking scan: a finished earlier-indexed chain carrying a
        # witness makes the dominant chain dead work (the fold stops
        # before it).  A chain that finishes *while* the dominant search
        # runs is not seen — that race is inherent to running them
        # concurrently — but the cheap chains often beat the coordinator
        # to this point, and skipping a multi-second dominant search is
        # worth the O(#chains) check.
        for index in range(dominant):
            future = futures.get(index)
            if future is not None and future.done():
                try:
                    if future.result().witness is not None:
                        return True
                except Exception:
                    return False  # broken future: the caller's fallback handles it
        return False

    if _earlier_witness_already_found():
        dominant_outcome = None
    else:
        executor = SubtreeExecutor(pool)
        dominant_outcome = check_restriction(
            restrictions[dominant],
            vocabulary,
            initial,
            search_kwargs,
            use_datalog_precheck,
            executor=executor,
        )
    outcomes = []
    for index in range(len(restrictions)):
        if index == dominant and dominant_outcome is None:
            # Unreachable by the fold: an earlier chain's witness
            # truncates the walk before this entry.  Assert the
            # invariant rather than fabricating an outcome.
            raise AssertionError(
                "dominant chain skipped without an earlier witness"
            )  # pragma: no cover - guarded by _earlier_witness_already_found
        outcome = (
            dominant_outcome if index == dominant else futures[index].result()
        )
        if index != dominant:
            _trace.attach_children(outcome.spans)
        outcomes.append(outcome)
        if outcome.witness is not None:
            for later in range(index + 1, len(restrictions)):
                future = futures.get(later)
                if future is not None:
                    future.cancel()
            break
    return outcomes


def map_chain_outcomes(
    restrictions: Sequence,
    vocabulary,
    initial,
    search_kwargs: Dict[str, object],
    use_datalog_precheck: bool,
    max_workers: Optional[int] = None,
    pool_size: Optional[int] = None,
):
    """Chain outcomes in restriction order, up to the first witness.

    *pool_size* is the caller's fact-pool cardinality hint for
    :func:`estimate_chain_cost` (``automaton_emptiness`` derives the
    pool anyway and passes its size along so the gate can bound the
    exploration budget by the actual search space).

    Dispatches the per-chain checks (and, in subtree mode, the dominant
    chain's subtree items) to the shared process pool and collects the
    ordered outcomes; once an outcome carries a witness the remaining
    chains are dead work (the caller's fold stops there, mirroring the
    sequential early exit), so not-yet-started tasks are cancelled and
    the list is truncated at that point.  Falls back to in-process
    sequential checking whenever parallelism cannot help (no usable
    extra CPUs, estimated work below :func:`min_dispatch_cost`, a single
    chain outside subtree mode) or cannot be obtained (no pool, a worker
    failure) — by construction the folded result is the same.
    """
    num_chains = len(restrictions)
    subtree = bool(search_kwargs.get("subtree_mode"))
    units = num_chains if not subtree else max(num_chains, _SUBTREE_POOL_UNITS)
    workers = _worker_count(units, max_workers)
    total_cost = sum(
        estimate_chain_cost(restriction, search_kwargs, pool_size)
        for restriction in restrictions
    )
    if (
        workers <= 1
        or not _should_dispatch(total_cost, max_workers)
        or (num_chains <= 1 and not subtree)
    ):
        return _sequential(
            restrictions, vocabulary, initial, search_kwargs, use_datalog_precheck
        )
    try:
        pool = workqueue.shared_pool(workers)
        if subtree:
            return _hybrid_fanout(
                pool,
                restrictions,
                vocabulary,
                initial,
                search_kwargs,
                use_datalog_precheck,
                pool_size,
            )
        return _chain_fanout(
            pool,
            restrictions,
            vocabulary,
            initial,
            search_kwargs,
            use_datalog_precheck,
        )
    except Exception:
        # Pools can be unavailable (sandboxes without semaphores) and
        # exotic payloads can fail to pickle; verdicts must not depend on
        # either, so recompute everything in process — and say so: the
        # fallback is recorded in the first outcome's stats instead of
        # being swallowed (stats are excluded from result equality, so
        # the determinism guarantees are untouched).
        workqueue.discard_shared_pool()
        _trace.event("pool.fallback", point="chain")
        outcomes = _sequential(
            restrictions, vocabulary, initial, search_kwargs, use_datalog_precheck
        )
        if outcomes:
            first = outcomes[0]
            stats = dict(first.stats or {})
            stats["pool_chain_fallbacks"] = stats.get("pool_chain_fallbacks", 0) + 1
            outcomes[0] = dataclasses.replace(first, stats=stats)
        return outcomes
