"""The persistent fact store: O(1) snapshots of relational instances.

:class:`SnapshotInstance` is a drop-in facade over the read API of
:class:`repro.relational.instance.Instance` — the compiled join plans of
:mod:`repro.queries.plan_cache` execute on it unchanged — backed by
persistent (structurally shared) per-relation shards instead of mutable
``set`` objects.  The facade itself is mutable in place like an
``Instance``, but every mutation swaps immutable shard roots, so

* :meth:`SnapshotInstance.snapshot` is O(#relations): it retains the
  current roots and the incrementally maintained fingerprint;
* :meth:`SnapshotInstance.restore` rolls the facade back to any snapshot
  in O(#relations), replacing the add/undo delta logs of the search code;
* :meth:`SnapshotInstance.from_snapshot` branches an independent facade
  off a snapshot in O(#relations) — the persistent-instance replacement
  for the O(n) ``Instance.copy()`` in search stack nodes;
* snapshots are hashable (O(1), via the incremental fingerprint) and
  compare *exactly* (structural comparison with identity short-circuits),
  so they serve directly as visited-set and memo keys;
* snapshots are picklable by construction — they serialise as their fact
  list and rebuild on the receiving side — which is what lets the
  parallel chain checker (:mod:`repro.store.parallel`) ship search states
  to worker processes.

Per-relation shards also carry **per-position indexes that survive
snapshots** (``(position, value) -> frozenset of tuples``): built on the
first probe of a relation and *derived* copy-on-write by every later
mutation, they stay warm across snapshot/restore/branch — unlike the
mutable ``Instance`` whose indexes are rebuilt from scratch after a
copy — while relations that are never probed never pay for indexing.
Shards also record **cardinality statistics** (``Shard.count``), which
the plan compiler consumes for statistics-driven atom ordering
(:func:`repro.queries.plan_cache.get_plan`).
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.relational.instance import Fact, FrozenInstance, Instance
from repro.relational.schema import Schema, SchemaError
from repro.store.hamt import PMap

_EMPTY_FROZENSET: FrozenSet[Tuple[object, ...]] = frozenset()

_M64 = (1 << 64) - 1


def _fact_hash(relation_name: str, tup: Tuple[object, ...]) -> int:
    """A well-mixed 64-bit hash of one fact (for the commutative fingerprint)."""
    h = hash((relation_name, tup)) & _M64
    h ^= h >> 33
    h = (h * 0xFF51AFD7ED558CCD) & _M64
    h ^= h >> 33
    h = (h * 0xC4CEB9FE1A85EC53) & _M64
    h ^= h >> 33
    return h


#: Shards at or below this cardinality store their tuples as a plain
#: ``frozenset`` (copy-on-write: updates copy the whole set at C speed);
#: above it they promote to the persistent HAMT, whose O(log n) updates
#: win once copying would move hundreds of entries.  The representation
#: is a pure function of the cardinality, so equal shard contents always
#: have equal representations (which keeps structural equality trivial).
SMALL_SHARD_LIMIT = 256


class Shard:
    """The immutable per-relation state: tuples, indexes, statistics.

    ``tuples`` holds the relation's tuple set — a ``frozenset`` while the
    relation is small, a persistent :class:`~repro.store.hamt.PMap` (of
    ``tuple -> True``) once it outgrows :data:`SMALL_SHARD_LIMIT` — and
    ``count`` is the recorded cardinality statistic.  Two derived views
    are cached *on* the shard — safe because a shard never changes, so
    they survive snapshot/restore/branch for as long as the shard is
    shared:

    * ``frozen`` — the materialised ``frozenset`` of tuples (the tuple
      set itself while the shard is small);
    * ``index`` — the per-position hash index ``(position, value) ->
      frozen bucket``, built on first probe and from then on *derived*
      copy-on-write by every mutation, so a relation that is being
      probed keeps its index warm across snapshots without ever
      rebuilding it, while a relation that is never probed (e.g. a
      search configuration that exists only to be fingerprinted) never
      pays for indexing at all.  The bucket table mirrors the tuple
      set's representation: a plain ``dict`` (whole-table copy per
      mutation, C speed) while the shard is small, a :class:`PMap`
      (O(log) bucket updates, structural sharing) once it grows past
      :data:`SMALL_SHARD_LIMIT` — so deriving stays O(affected buckets)
      at scale instead of O(#buckets).
    """

    __slots__ = ("tuples", "count", "frozen", "index")

    def __init__(
        self,
        tuples,
        count: int,
        index: Optional[Dict[Tuple[int, object], FrozenSet[Tuple[object, ...]]]] = None,
    ) -> None:
        self.tuples = tuples
        self.count = count
        self.frozen: Optional[FrozenSet[Tuple[object, ...]]] = None
        self.index = index

    def frozen_tuples(self) -> FrozenSet[Tuple[object, ...]]:
        tuples = self.tuples
        if type(tuples) is frozenset:
            return tuples
        cached = self.frozen
        if cached is None:
            cached = frozenset(tuples)
            self.frozen = cached
        return cached

    def get_index(self):
        """The bucket table (``dict`` or :class:`PMap`, both ``.get``-able)."""
        index = self.index
        if index is None:
            buckets: Dict[Tuple[int, object], Set[Tuple[object, ...]]] = {}
            for tup in self.tuples:
                for position, value in enumerate(tup):
                    buckets.setdefault((position, value), set()).add(tup)
            frozen_buckets = {
                key: frozenset(bucket) for key, bucket in buckets.items()
            }
            index = (
                frozen_buckets
                if type(self.tuples) is frozenset
                else PMap(frozen_buckets.items())
            )
            self.index = index
        return index


_EMPTY_SHARD = Shard(frozenset(), 0)


def _derive_index(index, tup: Tuple[object, ...], adding: bool, small: bool):
    """A built bucket table with *tup* added to / removed from its buckets.

    Keeps the table's representation in lockstep with the shard's size
    class (*small*): a plain dict is copied whole (C speed, fine for small
    relations), a :class:`PMap` is updated per bucket (O(log) each, so
    large relations never pay O(#buckets) per mutation).
    """
    if small and type(index) is not dict:
        index = dict(index.items())
    elif not small and type(index) is dict:
        index = PMap(index.items())
    if type(index) is dict:
        new_index = dict(index)
        for position, value in enumerate(tup):
            key = (position, value)
            bucket = new_index.get(key)
            if adding:
                new_index[key] = (
                    frozenset((tup,)) if bucket is None else bucket | {tup}
                )
            elif bucket is not None:
                remaining = bucket - {tup}
                if remaining:
                    new_index[key] = remaining
                else:
                    del new_index[key]
        return new_index
    new_pmap = index
    for position, value in enumerate(tup):
        key = (position, value)
        bucket = new_pmap.get(key)
        if adding:
            new_pmap = new_pmap.set(
                key, frozenset((tup,)) if bucket is None else bucket | {tup}
            )
        elif bucket is not None:
            remaining = bucket - {tup}
            new_pmap = (
                new_pmap.set(key, remaining) if remaining else new_pmap.delete(key)
            )
    return new_pmap


class Snapshot:
    """An immutable, hashable, picklable state of a :class:`SnapshotInstance`.

    Hashing is O(1) (the precomputed commutative fingerprint); equality
    first compares fingerprints and then confirms *structurally*, shard
    by shard, with identity short-circuits — so equality is exact (never
    fooled by a fingerprint collision) yet cheap for the snapshots a
    search revisits, which share almost all of their structure.
    """

    __slots__ = (
        "schema",
        "shards",
        "count",
        "hash_sum",
        "hash_xor",
        "_hash",
        "_view",
    )

    def __init__(
        self,
        schema: Schema,
        shards: Dict[str, Shard],
        count: int,
        hash_sum: int,
        hash_xor: int,
    ) -> None:
        self.schema = schema
        self.shards = shards
        self.count = count
        self.hash_sum = hash_sum
        self.hash_xor = hash_xor
        self._hash = hash((count, hash_sum, hash_xor))
        self._view: Optional["SnapshotInstance"] = None

    def size(self) -> int:
        """Total number of facts in the snapshotted state."""
        return self.count

    def relation_counts(self) -> Dict[str, int]:
        """Recorded per-relation cardinality statistics."""
        return {name: shard.count for name, shard in self.shards.items()}

    def facts(self) -> Iterator[Fact]:
        """All facts, repr-sorted per relation (the ``Instance`` convention)."""
        for name in self.schema.names():
            shard = self.shards.get(name)
            if shard is None or not shard.count:
                continue
            for tup in sorted(shard.tuples, key=repr):
                yield (name, tup)

    def to_instance(self) -> Instance:
        """Materialise a dict-backed :class:`Instance` with the same facts."""
        instance = Instance(self.schema)
        for name, tup in self.facts():
            instance.add_unchecked(name, tup)
        return instance

    def view(self) -> "SnapshotInstance":
        """A shared **read-only** facade positioned at this snapshot.

        O(#relations) on first call, O(1) afterwards (the facade is cached
        on the snapshot), and it runs the compiled join plans unchanged —
        this is how the semi-naive Datalog evaluator reads the
        previous-generation side of its delta plans off the same snapshot
        chain it logs.  The shards (and therefore their warm per-position
        indexes) are shared with every other holder of this snapshot, so
        callers must treat the view as immutable: mutate a private branch
        from :meth:`SnapshotInstance.from_snapshot` instead.
        """
        view = self._view
        if view is None:
            view = SnapshotInstance.from_snapshot(self)
            self._view = view
        return view

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Snapshot):
            return NotImplemented
        if (
            self.count != other.count
            or self.hash_sum != other.hash_sum
            or self.hash_xor != other.hash_xor
            or len(self.shards) != len(other.shards)
        ):
            return False
        for name, shard in self.shards.items():
            other_shard = other.shards.get(name)
            if other_shard is None:
                return False
            if shard is other_shard:
                continue
            if shard.count != other_shard.count or shard.tuples != other_shard.tuples:
                return False
        return True

    def __reduce__(self):
        # Shards embed HAMTs whose layout depends on this process's hash
        # seed; serialise the facts instead and rebuild on the other side.
        payload = tuple(
            (name, tuple(sorted(shard.tuples, key=repr)))
            for name, shard in sorted(self.shards.items())
            if shard.count
        )
        return (_snapshot_from_payload, (self.schema, payload))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Snapshot({self.count} facts)"


def _snapshot_from_payload(
    schema: Schema, payload: Tuple[Tuple[str, Tuple[Tuple[object, ...], ...]], ...]
) -> Snapshot:
    """Rebuild a pickled snapshot in the receiving process."""
    instance = SnapshotInstance(schema)
    for name, tuples in payload:
        for tup in tuples:
            instance.add_unchecked(name, tup)
    return instance.snapshot()


class _RelationView:
    """A live, read-only, sized view of one relation's tuples.

    This is what the compiled plan executor sees through ``._data``: it
    needs existence/size checks that track the facade's current state.
    Iteration captures the shard at call time, so an in-flight iteration
    is never affected by later mutations (the same contract as the
    mutable ``Instance``'s cached views).
    """

    __slots__ = ("_owner", "_name")

    def __init__(self, owner: "SnapshotInstance", name: str) -> None:
        self._owner = owner
        self._name = name

    def _shard(self) -> Shard:
        return self._owner._shards.get(self._name, _EMPTY_SHARD)

    def __len__(self) -> int:
        return self._shard().count

    def __bool__(self) -> bool:
        return self._shard().count > 0

    def __iter__(self) -> Iterator[Tuple[object, ...]]:
        return iter(self._shard().tuples)

    def __contains__(self, tup: object) -> bool:
        return tup in self._shard().tuples


class _DataMap:
    """The ``._data`` mapping of a :class:`SnapshotInstance`.

    Provides the small mapping surface the plan executor uses
    (``get``/``[]``/``in``) over lazily created relation views.
    """

    __slots__ = ("_owner", "_views")

    def __init__(self, owner: "SnapshotInstance") -> None:
        self._owner = owner
        self._views: Dict[str, _RelationView] = {}

    def get(
        self, name: str, default: Optional[_RelationView] = None
    ) -> Optional[_RelationView]:
        view = self._views.get(name)
        if view is not None:
            return view
        if name not in self._owner._shards:
            return default
        view = _RelationView(self._owner, name)
        self._views[name] = view
        return view

    def __getitem__(self, name: str) -> _RelationView:
        view = self.get(name)
        if view is None:
            raise KeyError(name)
        return view

    def __contains__(self, name: str) -> bool:
        return name in self._owner._shards

    def __iter__(self) -> Iterator[str]:
        return iter(self._owner._shards)

    def __len__(self) -> int:
        return len(self._owner._shards)

    def keys(self) -> Iterable[str]:
        return self._owner._shards.keys()

    def values(self) -> Iterator[_RelationView]:
        for name in self._owner._shards:
            yield self[name]

    def items(self) -> Iterator[Tuple[str, _RelationView]]:
        for name in self._owner._shards:
            yield name, self[name]


class SnapshotInstance:
    """A mutable facade over the persistent fact store.

    Implements the read API of :class:`~repro.relational.instance.Instance`
    (``tuples``/``tuples_view``/``index``/``facts``/``freeze``/``contains``/
    ``active_domain``/``size`` plus the ``_data`` mapping the compiled plan
    executor probes) and the mutation API the search code uses
    (``add``/``add_unchecked``/``discard``), with three additional
    operations the mutable instance cannot offer:

    * :meth:`snapshot` / :meth:`fingerprint` — an O(#relations) immutable
      state token, hashable in O(1);
    * :meth:`restore` — roll back to any snapshot in O(#relations);
    * :meth:`from_snapshot` — branch an independent facade in
      O(#relations).
    """

    __slots__ = (
        "schema",
        "_shards",
        "_count",
        "_hash_sum",
        "_hash_xor",
        "_data",
        "_snap_cache",
        "_freeze_cache",
    )

    def __init__(
        self,
        schema: Schema,
        facts: Optional[Mapping[str, Iterable[Sequence[object]]]] = None,
    ) -> None:
        self.schema = schema
        self._shards: Dict[str, Shard] = {
            name: _EMPTY_SHARD for name in schema.names()
        }
        self._count = 0
        self._hash_sum = 0
        self._hash_xor = 0
        self._data = _DataMap(self)
        self._snap_cache: Optional[Snapshot] = None
        self._freeze_cache: Optional[FrozenInstance] = None
        if facts:
            for name, tuples in facts.items():
                for values in tuples:
                    self.add(name, values)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_instance(cls, instance) -> "SnapshotInstance":
        """A store holding the facts of *instance* (any Instance-like)."""
        if isinstance(instance, SnapshotInstance):
            return instance.copy()
        store = cls(instance.schema)
        for name in instance.schema.names():
            for tup in instance.tuples_view(name):
                store.add_unchecked(name, tup)
        return store

    @classmethod
    def from_snapshot(cls, snap: Snapshot) -> "SnapshotInstance":
        """An independent facade positioned at *snap* (O(#relations))."""
        store = cls.__new__(cls)
        store.schema = snap.schema
        store._shards = dict(snap.shards)
        store._count = snap.count
        store._hash_sum = snap.hash_sum
        store._hash_xor = snap.hash_xor
        store._data = _DataMap(store)
        store._snap_cache = snap
        store._freeze_cache = None
        return store

    @classmethod
    def from_frozen(cls, schema: Schema, frozen: FrozenInstance) -> "SnapshotInstance":
        """Rebuild a store from a frozen snapshot (a frozenset of facts)."""
        store = cls(schema)
        for name, tup in frozen:
            store.add(name, tup)
        return store

    def copy(self) -> "SnapshotInstance":
        """An independent branch of this store (O(#relations), not O(n))."""
        return SnapshotInstance.from_snapshot(self.snapshot())

    def to_instance(self) -> Instance:
        """Materialise a dict-backed :class:`Instance` with the same facts."""
        return self.snapshot().to_instance()

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Snapshot:
        """The current state as an immutable, hashable, picklable token."""
        cached = self._snap_cache
        if cached is None:
            cached = Snapshot(
                self.schema,
                dict(self._shards),
                self._count,
                self._hash_sum,
                self._hash_xor,
            )
            self._snap_cache = cached
        return cached

    def fingerprint(self) -> Snapshot:
        """Alias of :meth:`snapshot`: an exact O(1)-hashable content key.

        The mutable ``Instance`` offers the same method returning its
        frozen fact set; both are exact content fingerprints usable as
        memo keys, this one without the O(n) rebuild per mutation.
        """
        return self.snapshot()

    def restore(self, snap: Snapshot) -> None:
        """Roll this facade back to *snap* (O(#relations))."""
        self._shards = dict(snap.shards)
        self._count = snap.count
        self._hash_sum = snap.hash_sum
        self._hash_xor = snap.hash_xor
        self._snap_cache = snap
        self._freeze_cache = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _apply_add(
        self, name: str, shard: Shard, tup: Tuple[object, ...], tuples
    ) -> None:
        new_shard = Shard(tuples, shard.count + 1)
        if shard.frozen is not None:
            new_shard.frozen = shard.frozen | {tup}
        if shard.index is not None:
            # Derive (don't rebuild) the index, touching only this
            # tuple's buckets.
            new_shard.index = _derive_index(
                shard.index, tup, True, type(tuples) is frozenset
            )
        self._shards[name] = new_shard
        fh = _fact_hash(name, tup)
        self._count += 1
        self._hash_sum = (self._hash_sum + fh) & _M64
        self._hash_xor ^= fh
        self._snap_cache = None
        self._freeze_cache = None

    def add(self, relation_name: str, values: Sequence[object]) -> Tuple[object, ...]:
        """Add a tuple, validating arity and types (the ``Instance`` contract)."""
        relation = self.schema.relation(relation_name)
        tup = relation.validate_tuple(values)
        self.add_unchecked(relation_name, tup)
        return tup

    def add_unchecked(self, relation_name: str, tup: Tuple[object, ...]) -> bool:
        """Add an already validated tuple, returning whether it was new."""
        shard = self._shards[relation_name]
        tuples = shard.tuples
        if type(tuples) is frozenset:
            if tup in tuples:
                return False
            if shard.count < SMALL_SHARD_LIMIT:
                new_tuples = tuples | {tup}
            else:
                # Promote to the persistent map: from here on updates are
                # O(log n) node copies instead of whole-set copies.
                new_tuples = PMap((existing, True) for existing in tuples).set(
                    tup, True
                )
        else:
            new_tuples = tuples.set(tup, True)
            if len(new_tuples) == shard.count:
                return False
        self._apply_add(relation_name, shard, tup, new_tuples)
        return True

    def discard(self, relation_name: str, tup: Tuple[object, ...]) -> bool:
        """Remove a tuple if present, returning whether it was removed."""
        shard = self._shards.get(relation_name)
        if shard is None or tup not in shard.tuples:
            return False
        tuples = shard.tuples
        if type(tuples) is frozenset:
            new_tuples = tuples - {tup}
        elif shard.count - 1 <= SMALL_SHARD_LIMIT:
            # Demote exactly at the limit so the representation stays a
            # pure function of the cardinality.
            new_tuples = frozenset(key for key in tuples if key != tup)
        else:
            new_tuples = tuples.delete(tup)
        new_shard = Shard(new_tuples, shard.count - 1)
        if shard.frozen is not None:
            new_shard.frozen = shard.frozen - {tup}
        if shard.index is not None:
            new_shard.index = _derive_index(
                shard.index, tup, False, type(new_tuples) is frozenset
            )
        self._shards[relation_name] = new_shard
        fh = _fact_hash(relation_name, tup)
        self._count -= 1
        self._hash_sum = (self._hash_sum - fh) & _M64
        self._hash_xor ^= fh
        self._snap_cache = None
        self._freeze_cache = None
        return True

    def add_all(self, relation_name: str, tuples: Iterable[Sequence[object]]) -> None:
        """Add several tuples to *relation_name*."""
        for values in tuples:
            self.add(relation_name, values)

    def add_fact(self, fact: Fact) -> None:
        """Add a ``(relation, tuple)`` fact."""
        self.add(fact[0], fact[1])

    # ------------------------------------------------------------------
    # Queries (the Instance read API)
    # ------------------------------------------------------------------
    def tuples(self, relation_name: str) -> FrozenSet[Tuple[object, ...]]:
        """The set of tuples currently stored (cached per immutable shard)."""
        shard = self._shards.get(relation_name)
        if shard is None:
            raise SchemaError(f"unknown relation {relation_name!r}")
        return shard.frozen_tuples()

    def tuples_view(self, relation_name: str) -> FrozenSet[Tuple[object, ...]]:
        """A cheap read-only view (empty for relations outside the schema)."""
        shard = self._shards.get(relation_name)
        if shard is None or not shard.count:
            return _EMPTY_FROZENSET
        return shard.frozen_tuples()

    def index(
        self, relation_name: str, position: int, value: object
    ) -> FrozenSet[Tuple[object, ...]]:
        """Tuples whose *position*-th value is *value* (shard-cached index)."""
        shard = self._shards.get(relation_name)
        if shard is None:
            return _EMPTY_FROZENSET
        return shard.get_index().get((position, value), _EMPTY_FROZENSET)

    def __contains__(self, fact: Fact) -> bool:
        name, tup = fact
        shard = self._shards.get(name)
        return shard is not None and tuple(tup) in shard.tuples

    def contains(self, relation_name: str, values: Sequence[object]) -> bool:
        """Whether the given tuple is present in *relation_name*."""
        return (relation_name, tuple(values)) in self

    def facts(self) -> Iterator[Fact]:
        """All facts as ``(relation, tuple)`` pairs, repr-sorted per relation."""
        for name in self.schema.names():
            shard = self._shards[name]
            if not shard.count:
                continue
            for tup in sorted(shard.tuples, key=repr):
                yield (name, tup)

    def size(self) -> int:
        """Total number of facts (O(1): maintained incrementally)."""
        return self._count

    def __len__(self) -> int:
        return self._count

    def is_empty(self) -> bool:
        """Whether the store contains no facts."""
        return self._count == 0

    def active_domain(self) -> FrozenSet[object]:
        """The set of values occurring in any fact."""
        values: Set[object] = set()
        for shard in self._shards.values():
            for tup in shard.tuples:
                values.update(tup)
        return frozenset(values)

    def relation_names(self) -> Tuple[str, ...]:
        """Names of the relations of the underlying schema."""
        return self.schema.names()

    # ------------------------------------------------------------------
    # Cardinality statistics
    # ------------------------------------------------------------------
    def relation_count(self, relation_name: str) -> int:
        """Recorded cardinality of one relation (O(1))."""
        shard = self._shards.get(relation_name)
        return shard.count if shard is not None else 0

    def relation_counts(self) -> Dict[str, int]:
        """Recorded per-relation cardinality statistics."""
        return {name: shard.count for name, shard in self._shards.items()}

    # ------------------------------------------------------------------
    # Interop with the mutable Instance
    # ------------------------------------------------------------------
    def freeze(self) -> FrozenInstance:
        """A frozenset-of-facts snapshot (the ``Instance.freeze`` contract).

        O(n) to build, cached until the next mutation.  Prefer
        :meth:`fingerprint` for memo keys — it is O(1) and exactly as
        discriminating.
        """
        cached = self._freeze_cache
        if cached is None:
            cached = frozenset(
                (name, tup)
                for name, shard in self._shards.items()
                for tup in shard.tuples
            )
            self._freeze_cache = cached
        return cached

    def is_subinstance_of(self, other) -> bool:
        """Whether every fact of ``self`` is a fact of *other*."""
        for name, shard in self._shards.items():
            if not shard.count:
                continue
            other_tuples = other.tuples_view(name)
            if any(tup not in other_tuples for tup in shard.tuples):
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SnapshotInstance):
            return self.snapshot() == other.snapshot()
        if isinstance(other, Instance):
            return self.freeze() == other.freeze()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.freeze())

    def __reduce__(self):
        return (SnapshotInstance.from_snapshot, (self.snapshot(),))

    def __str__(self) -> str:
        parts = [f"{name}{tup!r}" for name, tup in self.facts()]
        return "{" + ", ".join(parts) + "}"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SnapshotInstance({self})"
