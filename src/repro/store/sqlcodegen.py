"""The one module allowed to contain SQL text (lint rule SQL002).

Every statement the SQLite store backend (:mod:`repro.store.sqlstore`)
executes is built here, and only as **parameterised** SQL: data values
always travel as ``?`` bindings, never interpolated into statement text,
and identifiers (table/column/alias names) are assembled from vetted
fragments — relation names pass through :func:`quote_ident`, columns and
aliases are generated as ``c<i>`` / ``t<i>``.  Statement text is joined
from fragment lists; f-strings, ``%``-formatting, ``.format`` and ``+``
concatenation of SQL are banned even here (SQL002 enforces both halves:
no SQL text outside this module, no interpolated SQL inside it).

The second half of the module is the **join compiler**: it lowers a
compiled slot plan (:class:`repro.queries.plan_cache.QueryPlan`,
including the semi-naive delta variants) to a single parameterised
``SELECT`` over the per-relation tables.  The lowering is mechanical —
each plan opcode has one SQL image:

* ``_OP_CONST``  → ``t<i>.c<p> = ?``  (the encoded constant as a param);
* ``_OP_CHECK``  → ``t<i>.c<p> = t<j>.c<q>``  (the slot's binding site);
* ``_OP_BIND``   → records ``slot -> (alias, column)`` (first bind wins);
* compiled comparisons → ``=`` / ``<>`` over binding-site columns and
  encoded-constant params;
* per-atom row visibility → the MVCC predicate of the atom's source
  (live head, a pinned snapshot generation, or a per-round delta temp
  table, which carries no visibility column at all).

Because a fact's validity intervals are disjoint by construction (see
``sqlstore``), at most one row per fact is visible to any generation, so
the join needs no ``DISTINCT`` to agree with the in-memory executor's
assignment multiplicity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.queries import plan_cache as _pc

# ----------------------------------------------------------------------
# Identifiers
# ----------------------------------------------------------------------
#: Prefix of per-relation data tables (quoted, so any relation name works).
_TABLE_PREFIX = "rel "
#: Prefix of per-round delta temp tables.
_DELTA_PREFIX = "delta "
#: Name of the store metadata table.
META_TABLE = "repro_store_meta"


def quote_ident(name: str) -> str:
    """*name* as a double-quoted SQL identifier (embedded quotes doubled)."""
    if "\x00" in name:
        raise ValueError("SQL identifiers cannot contain NUL")
    return '"' + name.replace('"', '""') + '"'


def table_for(relation: str) -> str:
    """The quoted data-table identifier of *relation*."""
    return quote_ident(_TABLE_PREFIX + relation)


def delta_table_for(relation: str) -> str:
    """The quoted per-round delta temp-table identifier of *relation*."""
    return quote_ident(_DELTA_PREFIX + relation)


def column(position: int) -> str:
    """The value column of tuple position *position* (``c0``, ``c1``, ...)."""
    return "c" + str(int(position))


def _alias(index: int) -> str:
    return "t" + str(int(index))


def _columns(arity: int) -> List[str]:
    return [column(position) for position in range(arity)]


def _select_columns(arity: int) -> str:
    """The result-column list of a tuple select.

    A nullary relation has no value columns, but SQL requires at least
    one result column — select ``g`` instead; the store decodes every
    row of a nullary select as the empty tuple regardless of content.
    """
    return ", ".join(_columns(arity)) if arity else "g"


# ----------------------------------------------------------------------
# Fixed statements (transactions, pragmas)
# ----------------------------------------------------------------------
SQL_BEGIN = "BEGIN IMMEDIATE"
SQL_COMMIT = "COMMIT"
SQL_ROLLBACK = "ROLLBACK"
SQL_INTEGRITY_CHECK = "PRAGMA integrity_check"

#: Pragmas for a file-backed store: WAL keeps readers unblocked during
#: ingest and ``synchronous=NORMAL`` is durable at every checkpoint
#: (transaction commit) on WAL, which is exactly the store's durability
#: contract — snapshots are the durability points.
FILE_PRAGMAS = (
    "PRAGMA journal_mode=WAL",
    "PRAGMA synchronous=NORMAL",
)
#: Pragmas for an anonymous scratch store (``connect("")``): the database
#: is deleted on close, so journalling buys nothing — trade crash safety
#: (already void) for ingest speed.
SCRATCH_PRAGMAS = (
    "PRAGMA journal_mode=MEMORY",
    "PRAGMA synchronous=OFF",
)


# ----------------------------------------------------------------------
# DDL
# ----------------------------------------------------------------------
def create_relation_table_sql(relation: str, arity: int) -> List[str]:
    """Statements creating one relation's table and its indexes.

    Layout: value columns ``c0..c{arity-1}`` (encoded TEXT, see
    ``sqlstore.encode_value``), ``g`` — the generation the row became
    visible, ``d`` — the generation it stopped being visible (``NULL`` =
    still live).  Indexes: one per value position (the plan executor's
    index probes), plus a partial UNIQUE index over the value columns of
    *live* rows — the O(log n) membership/dedup probe, and the invariant
    that a fact has at most one live row.
    """
    table = table_for(relation)
    cols = _columns(arity)
    decls = [" ".join([name, "TEXT", "NOT", "NULL"]) for name in cols]
    decls.append("g INTEGER NOT NULL")
    decls.append("d INTEGER")
    statements = [
        " ".join(
            ["CREATE TABLE IF NOT EXISTS", table, "(", ", ".join(decls), ")"]
        )
    ]
    for position in range(arity):
        index_name = quote_ident(
            "idx " + relation + " " + column(position)
        )
        statements.append(
            " ".join(
                [
                    "CREATE INDEX IF NOT EXISTS",
                    index_name,
                    "ON",
                    table,
                    "(",
                    column(position),
                    ")",
                ]
            )
        )
    live_name = quote_ident("live " + relation)
    # A nullary relation's one fact is the empty tuple: uniqueness of the
    # live row is over the constant expression ( g * 0 ) (SQLite indexes
    # need at least one column-referencing expression).
    live_cols = ", ".join(cols) if cols else "( g * 0 )"
    statements.append(
        " ".join(
            [
                "CREATE UNIQUE INDEX IF NOT EXISTS",
                live_name,
                "ON",
                table,
                "(",
                live_cols,
                ")",
                "WHERE d IS NULL",
            ]
        )
    )
    return statements


def create_meta_table_sql() -> str:
    """The key/value metadata table (schema, counters, frozen generation)."""
    return " ".join(
        [
            "CREATE TABLE IF NOT EXISTS",
            quote_ident(META_TABLE),
            "( k TEXT PRIMARY KEY, v TEXT NOT NULL )",
        ]
    )


def meta_upsert_sql() -> str:
    return " ".join(
        [
            "INSERT INTO",
            quote_ident(META_TABLE),
            "( k, v ) VALUES ( ?, ? )",
            "ON CONFLICT ( k ) DO UPDATE SET v = excluded.v",
        ]
    )


def meta_select_sql() -> str:
    return " ".join(["SELECT k, v FROM", quote_ident(META_TABLE)])


def create_delta_table_sql(relation: str, arity: int) -> str:
    """A per-round delta temp table (connection-local, no MVCC columns).

    A nullary delta gets one constant dummy column (tables need at least
    one); each row still means one occurrence of the empty tuple.
    """
    decls = [" ".join([name, "TEXT", "NOT", "NULL"]) for name in _columns(arity)]
    if not decls:
        decls = ["z INTEGER NOT NULL"]
    return " ".join(
        [
            "CREATE TEMP TABLE IF NOT EXISTS",
            delta_table_for(relation),
            "(",
            ", ".join(decls),
            ")",
        ]
    )


def clear_delta_sql(relation: str) -> str:
    return " ".join(["DELETE FROM", delta_table_for(relation)])


def insert_delta_sql(relation: str, arity: int) -> str:
    if not arity:
        return " ".join(
            ["INSERT INTO", delta_table_for(relation), "( z ) VALUES ( 0 )"]
        )
    params = ", ".join(["?"] * arity)
    return " ".join(
        [
            "INSERT INTO",
            delta_table_for(relation),
            "(",
            ", ".join(_columns(arity)),
            ") VALUES (",
            params,
            ")",
        ]
    )


# ----------------------------------------------------------------------
# DML / point queries
# ----------------------------------------------------------------------
def _eq_all(prefix: str, arity: int) -> str:
    """``c0 = ? AND c1 = ? ...`` (optionally alias-qualified).

    Arity 0 yields the trivially-true predicate: the empty tuple matches
    every row of its (nullary) relation.
    """
    if not arity:
        return "1 = 1"
    parts = []
    for position in range(arity):
        name = column(position) if not prefix else ".".join([prefix, column(position)])
        parts.append(" ".join([name, "=", "?"]))
    return " AND ".join(parts)


def insert_live_sql(relation: str, arity: int) -> str:
    """Insert a live row at generation ``?`` unless the fact is already live."""
    if not arity:
        return " ".join(
            [
                "INSERT OR IGNORE INTO",
                table_for(relation),
                "( g, d ) VALUES ( ?, NULL )",
            ]
        )
    params = ", ".join(["?"] * arity)
    return " ".join(
        [
            "INSERT OR IGNORE INTO",
            table_for(relation),
            "(",
            ", ".join(_columns(arity)),
            ", g, d ) VALUES (",
            params,
            ", ?, NULL )",
        ]
    )


def delete_unfrozen_fact_sql(relation: str, arity: int) -> str:
    """Delete the live row of a fact *iff* it was added after the last freeze."""
    return " ".join(
        [
            "DELETE FROM",
            table_for(relation),
            "WHERE",
            _eq_all("", arity),
            "AND d IS NULL AND g > ?",
        ]
    )


def kill_live_fact_sql(relation: str, arity: int) -> str:
    """Tombstone a frozen live row at the working generation ``?``."""
    return " ".join(
        [
            "UPDATE",
            table_for(relation),
            "SET d = ? WHERE",
            _eq_all("", arity),
            "AND d IS NULL",
        ]
    )


def live_exists_sql(relation: str, arity: int) -> str:
    return " ".join(
        [
            "SELECT 1 FROM",
            table_for(relation),
            "WHERE",
            _eq_all("", arity),
            "AND d IS NULL LIMIT 1",
        ]
    )


def at_exists_sql(relation: str, arity: int) -> str:
    """Membership at a pinned generation (params: values..., g, g)."""
    return " ".join(
        [
            "SELECT 1 FROM",
            table_for(relation),
            "WHERE",
            _eq_all("", arity),
            "AND g <= ? AND ( d IS NULL OR d > ? ) LIMIT 1",
        ]
    )


def select_live_sql(relation: str, arity: int) -> str:
    return " ".join(
        [
            "SELECT",
            _select_columns(arity),
            "FROM",
            table_for(relation),
            "WHERE d IS NULL",
        ]
    )


def select_at_sql(relation: str, arity: int) -> str:
    return " ".join(
        [
            "SELECT",
            _select_columns(arity),
            "FROM",
            table_for(relation),
            "WHERE g <= ? AND ( d IS NULL OR d > ? )",
        ]
    )


def select_live_index_sql(relation: str, arity: int, position: int) -> str:
    """Live tuples whose *position*-th value equals ``?`` (index probe)."""
    return " ".join(
        [
            select_live_sql(relation, arity),
            "AND",
            column(position),
            "=",
            "?",
        ]
    )


def select_at_index_sql(relation: str, arity: int, position: int) -> str:
    return " ".join(
        [
            select_at_sql(relation, arity),
            "AND",
            column(position),
            "=",
            "?",
        ]
    )


def count_live_sql(relation: str) -> str:
    return " ".join(
        ["SELECT COUNT(*) FROM", table_for(relation), "WHERE d IS NULL"]
    )


# ----------------------------------------------------------------------
# Restore (rolling the head back to a snapshot generation)
# ----------------------------------------------------------------------
def drop_unfrozen_sql(relation: str) -> str:
    """Delete every row created after the last frozen generation ``?``."""
    return " ".join(["DELETE FROM", table_for(relation), "WHERE g > ?"])


def revive_tombstones_sql(relation: str) -> str:
    """Clear tombstones written after the last frozen generation ``?``."""
    return " ".join(
        ["UPDATE", table_for(relation), "SET d = NULL WHERE d > ?"]
    )


def kill_after_sql(relation: str) -> str:
    """Tombstone (at working gen ``?``) live rows born after generation ``?``."""
    return " ".join(
        [
            "UPDATE",
            table_for(relation),
            "SET d = ? WHERE d IS NULL AND g > ?",
        ]
    )


def reinsert_interval_sql(relation: str, arity: int) -> str:
    """Re-open (at working gen ``?``) facts visible at ``?`` but dead by ``?``.

    Parameters in order: working generation, restore target S, S again,
    last frozen generation.  Copies every row with ``g <= S AND d > S AND
    d <= max_frozen`` as a fresh live row — together with
    :func:`kill_after_sql` this makes head visibility equal visibility at
    S without touching any frozen interval.
    """
    cols = ", ".join(_columns(arity))
    cols_prefix = cols + "," if cols else ""
    return " ".join(
        [
            "INSERT INTO",
            table_for(relation),
            "(",
            cols_prefix,
            "g, d ) SELECT",
            cols_prefix,
            "?, NULL FROM",
            table_for(relation),
            "WHERE g <= ? AND d > ? AND d <= ?",
        ]
    )


# ----------------------------------------------------------------------
# The join compiler (slot plan -> one parameterised SELECT)
# ----------------------------------------------------------------------
#: Runtime-parameter tokens of a compiled join, in bind order.  ``lit``
#: carries its encoded value inline; the generation tokens are filled at
#: execution time with the reading side's pinned generation.
P_LIT = "lit"
P_NEW_GEN = "new_gen"
P_OLD_GEN = "old_gen"

#: Visibility of the ``SRC_NEW`` side: the live head (``d IS NULL``) or a
#: pinned snapshot generation (``new_gen`` params).
VIS_HEAD = "head"
VIS_PINNED = "pinned"


class SQLJoin:
    """A lowered join: statement text plus its runtime parameter plan."""

    __slots__ = ("sql", "params")

    def __init__(self, sql: str, params: Tuple[Tuple[str, object], ...]) -> None:
        self.sql = sql
        self.params = params


def compile_join_sql(
    plan: "_pc.QueryPlan",
    new_visibility: str,
    encode_value,
) -> SQLJoin:
    """Lower a (possibly delta-variant) slot plan to one SELECT.

    *new_visibility* selects the MVCC predicate of ``SRC_NEW`` atoms:
    :data:`VIS_HEAD` when the plan reads the store's live head,
    :data:`VIS_PINNED` when it reads a pinned snapshot generation
    (parameterised — the same text serves every generation).  ``SRC_OLD``
    atoms are always pinned (``old_gen`` params) and ``SRC_DELTA`` atoms
    read their relation's delta temp table with no visibility predicate.

    *encode_value* maps a Python constant to its stored TEXT encoding;
    it raises ``TypeError`` for values no stored fact can equal, which
    callers surface as a compile-time empty result.
    """
    binding_site: Dict[int, str] = {}
    from_items: List[str] = []
    conditions: List[str] = []
    params: List[Tuple[str, object]] = []

    for index, atom in enumerate(plan.atoms):
        alias = _alias(index)
        if atom.source == _pc.SRC_DELTA:
            from_items.append(" ".join([delta_table_for(atom.relation), alias]))
        else:
            from_items.append(" ".join([table_for(atom.relation), alias]))
            pinned = atom.source == _pc.SRC_OLD or new_visibility == VIS_PINNED
            if pinned:
                token = P_OLD_GEN if atom.source == _pc.SRC_OLD else P_NEW_GEN
                conditions.append(
                    " ".join(
                        [
                            ".".join([alias, "g"]),
                            "<= ? AND (",
                            ".".join([alias, "d"]),
                            "IS NULL OR",
                            ".".join([alias, "d"]),
                            "> ? )",
                        ]
                    )
                )
                params.append((token, None))
                params.append((token, None))
            else:
                conditions.append(
                    " ".join([".".join([alias, "d"]), "IS NULL"])
                )
        for opcode, position, payload in atom.ops:
            col = ".".join([alias, column(position)])
            if opcode == _pc._OP_CONST:
                conditions.append(" ".join([col, "=", "?"]))
                params.append((P_LIT, encode_value(payload)))
            elif opcode == _pc._OP_CHECK:
                conditions.append(
                    " ".join([col, "=", binding_site[payload]])
                )
            else:  # _OP_BIND: first bind of the slot defines its site
                site = binding_site.get(payload)
                if site is None:
                    binding_site[payload] = col
                else:
                    conditions.append(" ".join([col, "=", site]))
        for check in atom.checks:
            operator = "=" if check.is_equality else "<>"
            sides: List[str] = []
            for is_slot, operand in (
                (check.left_is_slot, check.left),
                (check.right_is_slot, check.right),
            ):
                if is_slot:
                    sides.append(binding_site[operand])
                else:
                    sides.append("?")
                    params.append((P_LIT, encode_value(operand)))
            conditions.append(" ".join([sides[0], operator, sides[1]]))

    select_list = ", ".join(
        binding_site[slot] for slot in range(plan.num_slots)
    )
    fragments = ["SELECT", select_list or "1", "FROM", ", ".join(from_items)]
    if conditions:
        fragments.append("WHERE")
        fragments.append(" AND ".join(conditions))
    return SQLJoin(" ".join(fragments), tuple(params))
