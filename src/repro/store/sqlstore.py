"""The embedded-SQLite store backend: instances bigger than RAM.

:class:`SQLStoreInstance` is the second implementation of the store
backend interface (:mod:`repro.store.backend`): the same facade surface
as :class:`~repro.store.snapshot.SnapshotInstance` — the ``_data``
mapping and ``index``/``tuples``/``tuples_view`` probes the compiled
plan executor uses, the ``add``/``add_unchecked``/``discard`` mutation
API, O(#relations) ``snapshot``/``restore`` — backed by per-relation
SQLite tables instead of in-heap shards, so the working set lives on
disk and only cursors and counters live in Python.

## MVCC layout (snapshots as versioned views, not copies)

Each relation's table holds encoded value columns ``c0..cN`` plus two
generation columns: ``g`` — the generation a row became visible — and
``d`` — the generation it stopped being visible (``NULL`` = live).  The
head (current mutable state) reads ``d IS NULL``; snapshot generation
``S`` reads ``g <= S AND (d IS NULL OR d > S)``.  A snapshot is therefore
one committed transaction plus five Python integers — no data is copied.
Mutations after a snapshot only ever touch *unfrozen* rows (``g`` or
``d`` above the last frozen generation), so every frozen generation's
visible set is immutable; :meth:`SQLStoreInstance.restore` rolls the head
back by deleting/reviving unfrozen rows and, for older targets, by
tombstoning and re-opening rows at the working generation — a fact's
validity intervals stay pairwise disjoint, which is what lets the SQL
join pushdown (:mod:`repro.store.sqlcodegen`) run without ``DISTINCT``.

## Fingerprint parity with the memory backend

The store maintains the same commutative content fingerprint as the
in-memory shards (``_fact_hash`` sums/xors), so an :class:`SQLSnapshot`
hashes and compares equal to a :class:`~repro.store.snapshot.Snapshot`
with the same facts: engine memo keys, visited sets and the persistent
verdict cache (byte-identical ``encode_key`` via
``_verdict_key_payload``) all work unchanged across backends.

## Value encoding

Fact values are stored as tagged TEXT (:func:`encode_value`): strings,
ints, floats, bools and ``None``.  Numeric values collapse to their
canonical equal (``True``/``1``/``1.0`` share one encoding and decode as
``1``) so SQL row equality coincides with Python equality — the same
equivalence the in-memory ``set`` semantics already impose.  Values
outside the scalar vocabulary raise ``TypeError`` on write; on the read
side an un-encodable probe value simply matches nothing.

## Durability

The connection runs one explicit transaction per snapshot interval:
mutations open it lazily, :meth:`SQLStoreInstance.snapshot` writes the
counter metadata and commits — snapshots are the durability points, and
SQLite's journal makes each checkpoint atomic (a crashed writer rolls
back to the previous snapshot, never a torn state).  The scripted
``sql_commit``/``sql_pushdown`` fault points (:mod:`repro.store.faults`)
let the tests prove both degradations.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.obs import env as _env
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.queries import plan_cache as _pc
from repro.relational.instance import Fact, FrozenInstance, Instance
from repro.relational.schema import Relation, Schema, SchemaError
from repro.store import faults
from repro.store import sqlcodegen as _sql
from repro.store.snapshot import (
    Snapshot,
    SnapshotInstance,
    _fact_hash,
    _M64,
    _snapshot_from_payload,
)

_EMPTY_FROZENSET: FrozenSet[Tuple[object, ...]] = frozenset()

#: Default row threshold above which compiled plans push down as SQL
#: joins (below it the in-memory executor runs against the SQL facade —
#: correct either way; the threshold only picks the faster engine).
DEFAULT_SQL_PUSHDOWN_MIN_ROWS = _env.DEFAULT_SQL_PUSHDOWN_MIN_ROWS

#: Batch size of bulk cursor fetches (pushdown results, bulk copies).
_FETCH_BATCH = 1024

_META_FORMAT = 1


def _pushdown_threshold() -> int:
    return _env.positive_int(
        _env.SQL_PUSHDOWN_MIN_ROWS_ENV, _env.DEFAULT_SQL_PUSHDOWN_MIN_ROWS
    )


# ----------------------------------------------------------------------
# Value encoding (tagged TEXT; equality-faithful for the scalar types)
# ----------------------------------------------------------------------
def encode_value(value: object) -> str:
    """The stored TEXT encoding of one fact value.

    Injective on Python equality classes: equal values (including
    ``True == 1 == 1.0``) share one encoding, unequal values never do —
    so SQL ``=``/``<>`` over encodings agrees with Python ``==``/``!=``.
    Raises ``TypeError`` outside the scalar vocabulary (str/int/float/
    bool/None; NaN is rejected because it is not equal to itself).
    """
    kind = type(value)
    if kind is str:
        return "s" + value
    if kind is bool:
        return "i" + str(int(value))
    if kind is int:
        return "i" + str(value)
    if kind is float:
        if value != value:
            raise TypeError("NaN fact values are not supported by the SQL backend")
        try:
            integral = value == int(value)
        except OverflowError:
            integral = False  # +/-inf: finite canonical form does not exist
        if integral:
            return "i" + str(int(value))
        return "f" + repr(value)
    if value is None:
        return "n"
    raise TypeError(
        "the SQL store backend supports scalar fact values "
        f"(str/int/float/bool/None), got {kind.__name__}"
    )


def decode_value(text: str) -> object:
    """The canonical Python value of one stored TEXT encoding."""
    tag = text[0]
    if tag == "s":
        return text[1:]
    if tag == "i":
        return int(text[1:])
    if tag == "f":
        return float(text[1:])
    return None


def _encode_tuple(tup: Sequence[object]) -> Tuple[str, ...]:
    return tuple(encode_value(value) for value in tup)


def _decode_row(row: Sequence[str]) -> Tuple[object, ...]:
    return tuple(decode_value(text) for text in row)


def _decode_rows(arity: int, rows) -> Iterator[Tuple[object, ...]]:
    """Decode fetched tuple-select rows.

    Nullary selects still return one (dummy) column per visible row —
    SQL has no zero-column results — so every row decodes to ``()``.
    """
    if arity:
        return (_decode_row(row) for row in rows)
    return (() for _ in rows)


# ----------------------------------------------------------------------
# The ``_data`` facade (what the in-memory plan executor probes)
# ----------------------------------------------------------------------
class _SQLRelationView:
    """A live, read-only, sized view of one relation (head or pinned gen)."""

    __slots__ = ("_store", "_snap", "_name")

    def __init__(
        self, store: "SQLStoreInstance", snap: Optional["SQLSnapshot"], name: str
    ) -> None:
        self._store = store
        self._snap = snap
        self._name = name

    def __len__(self) -> int:
        if self._snap is None:
            return self._store._counts.get(self._name, 0)
        return self._snap._counts.get(self._name, 0)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self) -> Iterator[Tuple[object, ...]]:
        if self._snap is None:
            return iter(self._store._live_tuples(self._name))
        return iter(self._snap._tuples_at(self._name))

    def __contains__(self, tup: object) -> bool:
        if not isinstance(tup, tuple):
            return False
        if self._snap is None:
            return self._store.contains(self._name, tup)
        return self._snap._contains(self._name, tup)


class _SQLDataMap:
    """The ``._data`` mapping surface over lazily created relation views."""

    __slots__ = ("_store", "_snap", "_views")

    def __init__(
        self, store: "SQLStoreInstance", snap: Optional["SQLSnapshot"]
    ) -> None:
        self._store = store
        self._snap = snap
        self._views: Dict[str, _SQLRelationView] = {}

    def get(
        self, name: str, default: Optional[_SQLRelationView] = None
    ) -> Optional[_SQLRelationView]:
        view = self._views.get(name)
        if view is not None:
            return view
        if name not in self._store.schema:
            return default
        view = _SQLRelationView(self._store, self._snap, name)
        self._views[name] = view
        return view

    def __getitem__(self, name: str) -> _SQLRelationView:
        view = self.get(name)
        if view is None:
            raise KeyError(name)
        return view

    def __contains__(self, name: str) -> bool:
        return name in self._store.schema

    def __iter__(self) -> Iterator[str]:
        return iter(self._store.schema.names())

    def __len__(self) -> int:
        return len(self._store.schema)

    def keys(self) -> Tuple[str, ...]:
        return self._store.schema.names()

    def values(self) -> Iterator[_SQLRelationView]:
        for name in self._store.schema.names():
            yield self[name]

    def items(self) -> Iterator[Tuple[str, _SQLRelationView]]:
        for name in self._store.schema.names():
            yield name, self[name]


# ----------------------------------------------------------------------
# Snapshots (generation tokens) and pinned read views
# ----------------------------------------------------------------------
class SQLSnapshot:
    """An immutable state token of an :class:`SQLStoreInstance`.

    Hash and equality are **cross-backend**: the hash formula is the one
    :class:`~repro.store.snapshot.Snapshot` uses over the same
    commutative fact fingerprint, and equality against a memory
    ``Snapshot`` (or another SQL snapshot, even of a different store)
    compares exactly — counters first, then per-relation fact sets (the
    exact check materialises one relation at a time, so it is O(largest
    relation) memory; it only runs on fingerprint-equal pairs).

    Pickling materialises the fact payload and rebuilds as a memory
    ``Snapshot`` on the receiving side (the same fact-list serialisation
    contract as the memory backend) — ship small states, not 10M-fact
    stores.
    """

    __slots__ = (
        "_store",
        "gen",
        "count",
        "hash_sum",
        "hash_xor",
        "_counts",
        "schema",
        "_hash",
        "_view",
    )

    _sql_backend = True

    def __init__(
        self,
        store: "SQLStoreInstance",
        gen: int,
        count: int,
        hash_sum: int,
        hash_xor: int,
        counts: Dict[str, int],
    ) -> None:
        self._store = store
        self.gen = gen
        self.count = count
        self.hash_sum = hash_sum
        self.hash_xor = hash_xor
        self._counts = counts
        self.schema = store.schema
        self._hash = hash((count, hash_sum, hash_xor))
        self._view: Optional["SQLStoreView"] = None

    # -- read API ------------------------------------------------------
    def size(self) -> int:
        return self.count

    def relation_counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def _tuples_at(self, name: str) -> FrozenSet[Tuple[object, ...]]:
        if not self._counts.get(name):
            return _EMPTY_FROZENSET
        store = self._store
        arity = store.schema.arity(name)
        cursor = store._conn.execute(
            _sql.select_at_sql(name, arity), (self.gen, self.gen)
        )
        return frozenset(_decode_rows(arity, cursor.fetchall()))

    def _contains(self, name: str, tup: Tuple[object, ...]) -> bool:
        if not self._counts.get(name):
            return False
        try:
            encoded = _encode_tuple(tup)
        except TypeError:
            return False  # un-encodable values are never stored
        store = self._store
        cursor = store._conn.execute(
            _sql.at_exists_sql(name, store.schema.arity(name)),
            encoded + (self.gen, self.gen),
        )
        return cursor.fetchone() is not None

    def facts(self) -> Iterator[Fact]:
        for name in self.schema.names():
            if not self._counts.get(name):
                continue
            for tup in sorted(self._tuples_at(name), key=repr):
                yield (name, tup)

    def to_instance(self) -> Instance:
        instance = Instance(self.schema)
        for name, tup in self.facts():
            instance.add_unchecked(name, tup)
        return instance

    def view(self) -> "SQLStoreView":
        """A shared read-only facade pinned at this generation (cached)."""
        view = self._view
        if view is None:
            view = SQLStoreView(self._store, self)
            self._view = view
        return view

    def fingerprint(self) -> "SQLSnapshot":
        return self

    # -- persisted-cache key parity ------------------------------------
    def _payload(self) -> Tuple[Tuple[str, Tuple[Tuple[object, ...], ...]], ...]:
        return tuple(
            (name, tuple(sorted(self._tuples_at(name), key=repr)))
            for name in sorted(self.schema.names())
            if self._counts.get(name)
        )

    def _verdict_key_payload(self) -> Tuple[object, ...]:
        """Byte-identical ``encode_key`` content to a memory ``Snapshot``."""
        return (tuple(self.schema.names()), self._payload())

    # -- identity ------------------------------------------------------
    def __hash__(self) -> int:
        return self._hash

    def _same_facts(self, counts: Mapping[str, int], tuples_of) -> bool:
        mine = {name: n for name, n in self._counts.items() if n}
        theirs = {name: n for name, n in counts.items() if n}
        if mine != theirs:
            return False
        for name in mine:
            if self._tuples_at(name) != tuples_of(name):
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, SQLSnapshot):
            if self._store is other._store and self.gen == other.gen:
                return True
            if (
                self.count != other.count
                or self.hash_sum != other.hash_sum
                or self.hash_xor != other.hash_xor
            ):
                return False
            return self._same_facts(other._counts, other._tuples_at)
        if isinstance(other, Snapshot):
            if (
                self.count != other.count
                or self.hash_sum != other.hash_sum
                or self.hash_xor != other.hash_xor
            ):
                return False
            return self._same_facts(
                {name: shard.count for name, shard in other.shards.items()},
                lambda name: other.shards[name].frozen_tuples(),
            )
        return NotImplemented

    def __reduce__(self):
        return (_snapshot_from_payload, (self.schema, self._payload()))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "SQLSnapshot(" + str(self.count) + " facts @ gen " + str(self.gen) + ")"


class SQLStoreView:
    """A read-only facade pinned at one :class:`SQLSnapshot` generation.

    Runs the compiled join plans unchanged (same ``_data``/``index``/
    ``tuples`` surface as the mutable store) and serves as the
    previous-generation side of semi-naive delta plans; large reads push
    down as SQL joins against the pinned-generation visibility predicate.
    """

    __slots__ = ("_store", "_snap", "schema", "_data", "_tuples_cache")

    _sql_backend = True

    def __init__(self, store: "SQLStoreInstance", snap: SQLSnapshot) -> None:
        self._store = store
        self._snap = snap
        self.schema = store.schema
        self._data = _SQLDataMap(store, snap)
        self._tuples_cache: Dict[str, FrozenSet[Tuple[object, ...]]] = {}

    def snapshot(self) -> SQLSnapshot:
        return self._snap

    def fingerprint(self) -> SQLSnapshot:
        return self._snap

    def tuples(self, relation_name: str) -> FrozenSet[Tuple[object, ...]]:
        if relation_name not in self.schema:
            raise SchemaError("unknown relation " + repr(relation_name))
        cached = self._tuples_cache.get(relation_name)
        if cached is None:
            cached = self._snap._tuples_at(relation_name)
            self._tuples_cache[relation_name] = cached
        return cached

    def tuples_view(self, relation_name: str) -> FrozenSet[Tuple[object, ...]]:
        if relation_name not in self.schema:
            return _EMPTY_FROZENSET
        return self.tuples(relation_name)

    def index(
        self, relation_name: str, position: int, value: object
    ) -> FrozenSet[Tuple[object, ...]]:
        if not self._snap._counts.get(relation_name):
            return _EMPTY_FROZENSET
        try:
            encoded = encode_value(value)
        except TypeError:
            return _EMPTY_FROZENSET  # un-encodable probe values match nothing
        arity = self.schema.arity(relation_name)
        cursor = self._store._conn.execute(
            _sql.select_at_index_sql(relation_name, arity, position),
            (self._snap.gen, self._snap.gen, encoded),
        )
        return frozenset(_decode_rows(arity, cursor.fetchall()))

    def facts(self) -> Iterator[Fact]:
        return self._snap.facts()

    def size(self) -> int:
        return self._snap.count

    def __len__(self) -> int:
        return self._snap.count

    def is_empty(self) -> bool:
        return self._snap.count == 0

    def contains(self, relation_name: str, values: Sequence[object]) -> bool:
        return self._snap._contains(relation_name, tuple(values))

    def __contains__(self, fact: Fact) -> bool:
        name, tup = fact
        return self._snap._contains(name, tuple(tup))

    def relation_names(self) -> Tuple[str, ...]:
        return self.schema.names()

    def relation_count(self, relation_name: str) -> int:
        return self._snap._counts.get(relation_name, 0)

    def relation_counts(self) -> Dict[str, int]:
        return self._snap.relation_counts()

    def active_domain(self) -> FrozenSet[object]:
        values: Set[object] = set()
        for name in self.schema.names():
            for tup in self._snap._tuples_at(name):
                values.update(tup)
        return frozenset(values)

    # -- pushdown ------------------------------------------------------
    def sql_assignments(self, plan: "_pc.QueryPlan") -> Optional[Iterator[dict]]:
        return _maybe_pushdown(
            self._store,
            plan,
            counts=self._snap._counts,
            pinned_gen=self._snap.gen,
        )


# ----------------------------------------------------------------------
# The mutable store
# ----------------------------------------------------------------------
class SQLStoreInstance:
    """A mutable relational store backed by an embedded SQLite database.

    Same facade surface as
    :class:`~repro.store.snapshot.SnapshotInstance` (the compiled plan
    executor, the Datalog evaluator and the decision engine run on it
    unchanged), plus SQL join pushdown for large relations.  Pass
    *path* for a persistent, reopenable on-disk store
    (:meth:`SQLStoreInstance.open`); without it the store lives in an
    anonymous on-disk scratch database that SQLite deletes on close —
    still bigger-than-RAM, just not durable.

    Not thread-safe (one connection, one owner — the same contract as
    the in-memory facade).  ``copy``/``from_snapshot`` materialise an
    independent store in O(n) (unlike the memory backend's O(#relations)
    branch): deep-branching searches should stay on the memory backend,
    which is exactly what the pushdown threshold's sibling knob
    ``REPRO_STORE_BACKEND`` defaults to.
    """

    __slots__ = (
        "schema",
        "_path",
        "_conn",
        "_counts",
        "_count",
        "_hash_sum",
        "_hash_xor",
        "_gen",
        "_max_frozen",
        "_in_txn",
        "_snap_cache",
        "_freeze_cache",
        "_tuples_cache",
        "_data",
        "_insert_sql",
        "_delta_key",
        "_delta_relations",
        "_closed",
    )

    _sql_backend = True

    def __init__(self, schema: Schema, path: Optional[str] = None) -> None:
        self.schema = schema
        self._path = path
        # ``connect("")`` is an anonymous on-disk database, auto-deleted
        # on close: the spill-to-disk default needing no path management.
        self._conn = sqlite3.connect(path if path else "", isolation_level=None)
        self._closed = False
        pragmas = _sql.FILE_PRAGMAS if path else _sql.SCRATCH_PRAGMAS
        for pragma in pragmas:
            self._conn.execute(pragma).fetchall()
        self._conn.execute(_sql.create_meta_table_sql())
        for name in schema.names():
            for statement in _sql.create_relation_table_sql(
                name, schema.arity(name)
            ):
                self._conn.execute(statement)
        self._insert_sql = {
            name: _sql.insert_live_sql(name, schema.arity(name))
            for name in schema.names()
        }
        self._counts: Dict[str, int] = {name: 0 for name in schema.names()}
        self._count = 0
        self._hash_sum = 0
        self._hash_xor = 0
        self._max_frozen = 0
        self._gen = 1
        self._in_txn = False
        self._snap_cache: Optional[SQLSnapshot] = None
        self._freeze_cache: Optional[FrozenInstance] = None
        self._tuples_cache: Dict[str, FrozenSet[Tuple[object, ...]]] = {}
        self._data = _SQLDataMap(self, None)
        self._delta_key: Optional[object] = None
        self._delta_relations: Set[str] = set()
        self._load_or_init_meta()

    # ------------------------------------------------------------------
    # Metadata (reopenability + the committed-counter source of truth)
    # ------------------------------------------------------------------
    def _load_or_init_meta(self) -> None:
        meta = dict(self._conn.execute(_sql.meta_select_sql()).fetchall())
        if "schema" in meta:
            stored = json.loads(meta["schema"])
            declared = [[name, self.schema.arity(name)] for name in self.schema.names()]
            if stored != declared:
                raise SchemaError(
                    "existing SQL store schema "
                    + repr(stored)
                    + " does not match the declared schema "
                    + repr(declared)
                )
            self._max_frozen = int(meta.get("max_frozen", "0"))
            self._gen = self._max_frozen + 1
            # The persisted hash_sum/hash_xor were computed under the
            # *writing* process's string-hash seed; fingerprint parity
            # with this process's memory snapshots requires recomputing
            # them from the rows (one streaming scan; the persisted pair
            # stays authoritative only for same-process rollback resync).
            self._recount_from_rows()
        else:
            self._conn.execute(
                _sql.meta_upsert_sql(), ("format", str(_META_FORMAT))
            )
            self._conn.execute(
                _sql.meta_upsert_sql(),
                (
                    "schema",
                    json.dumps(
                        [[name, self.schema.arity(name)] for name in self.schema.names()]
                    ),
                ),
            )
            self._write_meta(self._max_frozen)

    def _recount_from_rows(self) -> None:
        count = 0
        hash_sum = 0
        hash_xor = 0
        counts = {name: 0 for name in self.schema.names()}
        for name in self.schema.names():
            observed = 0
            arity = self.schema.arity(name)
            cursor = self._conn.execute(_sql.select_live_sql(name, arity))
            for tup in _decode_rows(arity, cursor):
                fh = _fact_hash(name, tup)
                hash_sum = (hash_sum + fh) & _M64
                hash_xor ^= fh
                observed += 1
            counts[name] = observed
            count += observed
        self._counts = counts
        self._count = count
        self._hash_sum = hash_sum
        self._hash_xor = hash_xor

    def _apply_meta(self, meta: Dict[str, str]) -> None:
        self._count = int(meta.get("count", "0"))
        self._hash_sum = int(meta.get("hash_sum", "0"))
        self._hash_xor = int(meta.get("hash_xor", "0"))
        self._max_frozen = int(meta.get("max_frozen", "0"))
        self._gen = self._max_frozen + 1
        counts = json.loads(meta.get("counts", "{}"))
        self._counts = {name: 0 for name in self.schema.names()}
        self._counts.update({name: int(n) for name, n in counts.items()})

    def _write_meta(self, frozen_gen: int) -> None:
        rows = (
            ("count", str(self._count)),
            ("hash_sum", str(self._hash_sum)),
            ("hash_xor", str(self._hash_xor)),
            ("max_frozen", str(frozen_gen)),
            ("counts", json.dumps({n: c for n, c in self._counts.items() if c})),
        )
        self._conn.executemany(_sql.meta_upsert_sql(), rows)

    @classmethod
    def open(cls, path: str) -> "SQLStoreInstance":
        """Reopen a persistent store, reconstructing its schema from disk."""
        if not os.path.exists(path):
            raise FileNotFoundError(path)
        conn = sqlite3.connect(path)
        try:
            meta = dict(conn.execute(_sql.meta_select_sql()).fetchall())
        finally:
            conn.close()
        if "schema" not in meta:
            raise SchemaError("not a repro SQL store: " + path)
        schema = Schema(
            [Relation(name, int(arity)) for name, arity in json.loads(meta["schema"])]
        )
        return cls(schema, path)

    def close(self) -> None:
        """Roll back uncommitted work and close the connection.

        Snapshots are the durability points: anything not yet snapshotted
        is discarded, exactly as a crash would.
        """
        if self._closed:
            return
        if self._in_txn:
            self._conn.execute(_sql.SQL_ROLLBACK)
            self._in_txn = False
        self._conn.close()
        self._closed = True

    @property
    def path(self) -> Optional[str]:
        return self._path

    # ------------------------------------------------------------------
    # Construction helpers (facade parity)
    # ------------------------------------------------------------------
    @classmethod
    def from_instance(cls, instance, path: Optional[str] = None) -> "SQLStoreInstance":
        """A store holding the facts of *instance* (any Instance-like)."""
        store = cls(instance.schema, path)
        for name in instance.schema.names():
            for tup in instance.tuples_view(name):
                store.add_unchecked(name, tup)
        return store

    @classmethod
    def from_snapshot(cls, snap: SQLSnapshot) -> "SQLStoreInstance":
        """An independent store positioned at *snap* (O(n) materialising copy)."""
        store = cls(snap.schema)
        for name in snap.schema.names():
            if not snap._counts.get(name):
                continue
            for tup in snap._tuples_at(name):
                store.add_unchecked(name, tup)
        return store

    def copy(self) -> "SQLStoreInstance":
        """An independent branch (O(n) — see the class docstring caveat)."""
        return SQLStoreInstance.from_instance(self)

    def to_instance(self) -> Instance:
        instance = Instance(self.schema)
        for name, tup in self.facts():
            instance.add_unchecked(name, tup)
        return instance

    # ------------------------------------------------------------------
    # Transactions and snapshots
    # ------------------------------------------------------------------
    def _begin(self) -> None:
        if not self._in_txn:
            self._conn.execute(_sql.SQL_BEGIN)
            self._in_txn = True

    def _touched(self) -> None:
        self._snap_cache = None
        self._freeze_cache = None
        if self._tuples_cache:
            self._tuples_cache.clear()

    def _resync_to_committed(self) -> None:
        """Re-adopt the last committed checkpoint after a rolled-back txn."""
        meta = dict(self._conn.execute(_sql.meta_select_sql()).fetchall())
        self._apply_meta(meta)
        self._delta_key = None
        self._touched()

    def _checkpoint(self, frozen_gen: int) -> None:
        self._begin()
        self._write_meta(frozen_gen)
        fault = faults.storage_fault("sql_commit")
        if fault is not None:
            if fault.action == "kill":
                os._exit(faults.KILL_EXIT_CODE)
            # Scripted torn transaction: everything since the previous
            # snapshot rolls back atomically; the store resynchronises to
            # the last committed state and surfaces the failure.
            self._conn.execute(_sql.SQL_ROLLBACK)
            self._in_txn = False
            self._resync_to_committed()
            raise OSError(
                faults.FAULT_INJECT_ENV
                + ": scripted sql_commit fault; store rolled back to the "
                "last snapshot"
            )
        self._conn.execute(_sql.SQL_COMMIT)
        self._in_txn = False

    def snapshot(self) -> SQLSnapshot:
        """The current state as an immutable token (commits the interval).

        O(#relations) Python work plus one SQLite commit — no data copy;
        the returned token pins a generation the MVCC predicates can read
        forever.  This is also the store's durability point.
        """
        cached = self._snap_cache
        if cached is None:
            frozen = self._gen
            self._checkpoint(frozen)
            cached = SQLSnapshot(
                self,
                frozen,
                self._count,
                self._hash_sum,
                self._hash_xor,
                dict(self._counts),
            )
            self._max_frozen = frozen
            self._gen = frozen + 1
            self._snap_cache = cached
        return cached

    def fingerprint(self) -> SQLSnapshot:
        """Alias of :meth:`snapshot`: an exact O(1)-hashable content key."""
        return self.snapshot()

    def restore(self, snap: SQLSnapshot) -> None:
        """Roll the head back to *snap* without disturbing frozen generations.

        Unfrozen rows are deleted/revived outright; restoring past older
        snapshots tombstones and re-opens rows at the working generation,
        keeping every fact's validity intervals disjoint.  Only snapshots
        of this store can be restored (a foreign snapshot has no rows
        here to roll back to).
        """
        if not isinstance(snap, SQLSnapshot) or snap._store is not self:
            raise ValueError(
                "an SQL store can only restore its own snapshots; "
                "branch with from_snapshot() instead"
            )
        if not self._in_txn and snap.gen == self._max_frozen:
            # Nothing has changed since that snapshot was frozen.
            self._adopt_counters(snap)
            self._snap_cache = snap
            self._freeze_cache = None
            self._tuples_cache.clear()
            return
        self._begin()
        max_frozen = self._max_frozen
        for name in self.schema.names():
            self._conn.execute(_sql.drop_unfrozen_sql(name), (max_frozen,))
            self._conn.execute(_sql.revive_tombstones_sql(name), (max_frozen,))
        if snap.gen < max_frozen:
            working = self._gen
            for name in self.schema.names():
                self._conn.execute(
                    _sql.kill_after_sql(name), (working, snap.gen)
                )
                self._conn.execute(
                    _sql.reinsert_interval_sql(name, self.schema.arity(name)),
                    (working, snap.gen, snap.gen, max_frozen),
                )
        self._adopt_counters(snap)
        self._delta_key = None
        self._touched()

    def _adopt_counters(self, snap: SQLSnapshot) -> None:
        self._count = snap.count
        self._hash_sum = snap.hash_sum
        self._hash_xor = snap.hash_xor
        self._counts = dict(snap._counts)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, relation_name: str, values: Sequence[object]) -> Tuple[object, ...]:
        relation = self.schema.relation(relation_name)
        tup = relation.validate_tuple(values)
        self.add_unchecked(relation_name, tup)
        return tup

    def add_unchecked(self, relation_name: str, tup: Tuple[object, ...]) -> bool:
        statement = self._insert_sql[relation_name]
        encoded = _encode_tuple(tup)
        self._begin()
        cursor = self._conn.execute(statement, encoded + (self._gen,))
        if cursor.rowcount != 1:
            return False
        fh = _fact_hash(relation_name, tup)
        self._count += 1
        self._counts[relation_name] += 1
        self._hash_sum = (self._hash_sum + fh) & _M64
        self._hash_xor ^= fh
        self._touched()
        return True

    def discard(self, relation_name: str, tup: Tuple[object, ...]) -> bool:
        if relation_name not in self.schema:
            return False
        try:
            encoded = _encode_tuple(tup)
        except TypeError:
            return False  # un-encodable values are never stored
        arity = self.schema.arity(relation_name)
        self._begin()
        cursor = self._conn.execute(
            _sql.delete_unfrozen_fact_sql(relation_name, arity),
            encoded + (self._max_frozen,),
        )
        if cursor.rowcount != 1:
            cursor = self._conn.execute(
                _sql.kill_live_fact_sql(relation_name, arity),
                (self._gen,) + encoded,
            )
            if cursor.rowcount != 1:
                return False
        fh = _fact_hash(relation_name, tup)
        self._count -= 1
        self._counts[relation_name] -= 1
        self._hash_sum = (self._hash_sum - fh) & _M64
        self._hash_xor ^= fh
        self._touched()
        return True

    def add_all(self, relation_name: str, tuples: Iterable[Sequence[object]]) -> None:
        for values in tuples:
            self.add(relation_name, values)

    def add_fact(self, fact: Fact) -> None:
        self.add(fact[0], fact[1])

    def add_facts(self, facts: Iterable[Fact]) -> int:
        """Bulk-ingest validated ``(relation, tuple)`` facts; returns #new.

        One open transaction across the whole stream (committed by the
        next :meth:`snapshot`) — the batched ingest path of the CLI and
        the scaling benchmarks.
        """
        added = 0
        for name, tup in facts:
            if self.add_unchecked(name, tuple(tup)):
                added += 1
        return added

    # ------------------------------------------------------------------
    # Queries (the Instance read API)
    # ------------------------------------------------------------------
    def _live_tuples(self, relation_name: str) -> FrozenSet[Tuple[object, ...]]:
        cached = self._tuples_cache.get(relation_name)
        if cached is None:
            arity = self.schema.arity(relation_name)
            cursor = self._conn.execute(
                _sql.select_live_sql(relation_name, arity)
            )
            cached = frozenset(_decode_rows(arity, cursor.fetchall()))
            self._tuples_cache[relation_name] = cached
        return cached

    def tuples(self, relation_name: str) -> FrozenSet[Tuple[object, ...]]:
        if relation_name not in self.schema:
            raise SchemaError("unknown relation " + repr(relation_name))
        return self._live_tuples(relation_name)

    def tuples_view(self, relation_name: str) -> FrozenSet[Tuple[object, ...]]:
        if relation_name not in self.schema or not self._counts.get(relation_name):
            return _EMPTY_FROZENSET
        return self._live_tuples(relation_name)

    def index(
        self, relation_name: str, position: int, value: object
    ) -> FrozenSet[Tuple[object, ...]]:
        if not self._counts.get(relation_name):
            return _EMPTY_FROZENSET
        try:
            encoded = encode_value(value)
        except TypeError:
            return _EMPTY_FROZENSET  # un-encodable probe values match nothing
        arity = self.schema.arity(relation_name)
        cursor = self._conn.execute(
            _sql.select_live_index_sql(relation_name, arity, position),
            (encoded,),
        )
        return frozenset(_decode_rows(arity, cursor.fetchall()))

    def __contains__(self, fact: Fact) -> bool:
        name, tup = fact
        return self.contains(name, tuple(tup))

    def contains(self, relation_name: str, values: Sequence[object]) -> bool:
        if relation_name not in self.schema:
            return False
        try:
            encoded = _encode_tuple(tuple(values))
        except TypeError:
            return False  # un-encodable values are never stored
        cursor = self._conn.execute(
            _sql.live_exists_sql(relation_name, self.schema.arity(relation_name)),
            encoded,
        )
        return cursor.fetchone() is not None

    def facts(self) -> Iterator[Fact]:
        for name in self.schema.names():
            if not self._counts.get(name):
                continue
            for tup in sorted(self._live_tuples(name), key=repr):
                yield (name, tup)

    def size(self) -> int:
        return self._count

    def __len__(self) -> int:
        return self._count

    def is_empty(self) -> bool:
        return self._count == 0

    def active_domain(self) -> FrozenSet[object]:
        values: Set[object] = set()
        for name in self.schema.names():
            if self._counts.get(name):
                for tup in self._live_tuples(name):
                    values.update(tup)
        return frozenset(values)

    def relation_names(self) -> Tuple[str, ...]:
        return self.schema.names()

    def relation_count(self, relation_name: str) -> int:
        return self._counts.get(relation_name, 0)

    def relation_counts(self) -> Dict[str, int]:
        return dict(self._counts)

    # ------------------------------------------------------------------
    # Interop with the mutable Instance
    # ------------------------------------------------------------------
    def freeze(self) -> FrozenInstance:
        cached = self._freeze_cache
        if cached is None:
            cached = frozenset(
                (name, tup)
                for name in self.schema.names()
                if self._counts.get(name)
                for tup in self._live_tuples(name)
            )
            self._freeze_cache = cached
        return cached

    def is_subinstance_of(self, other) -> bool:
        for name in self.schema.names():
            if not self._counts.get(name):
                continue
            other_tuples = other.tuples_view(name)
            if any(tup not in other_tuples for tup in self._live_tuples(name)):
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, SQLStoreInstance):
            if (
                self._count != other._count
                or self._hash_sum != other._hash_sum
                or self._hash_xor != other._hash_xor
            ):
                return False
            mine = {n: c for n, c in self._counts.items() if c}
            theirs = {n: c for n, c in other._counts.items() if c}
            if mine != theirs:
                return False
            return all(
                self._live_tuples(name) == other._live_tuples(name) for name in mine
            )
        if isinstance(other, (Instance, SnapshotInstance)):
            return self.freeze() == other.freeze()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.freeze())

    def __reduce__(self):
        payload = tuple(
            (name, tuple(sorted(self._live_tuples(name), key=repr)))
            for name in sorted(self.schema.names())
            if self._counts.get(name)
        )
        return (_sqlstore_from_payload, (self.schema, payload))

    def __str__(self) -> str:
        parts = [name + repr(tup) for name, tup in self.facts()]
        return "{" + ", ".join(parts) + "}"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            "SQLStoreInstance("
            + str(self._count)
            + " facts, "
            + ("scratch" if self._path is None else repr(self._path))
            + ")"
        )

    # ------------------------------------------------------------------
    # Verification (the CLI surface)
    # ------------------------------------------------------------------
    def verify(self) -> Dict[str, object]:
        """Recompute counters from the live rows and compare with the meta.

        Returns a report dict with ``ok`` plus per-check details; used by
        ``repro store verify`` (database-level ``PRAGMA integrity_check``
        first, then content: per-relation counts and the commutative
        fingerprint recomputed row by row against the maintained
        counters).
        """
        integrity = self._conn.execute(_sql.SQL_INTEGRITY_CHECK).fetchone()
        report: Dict[str, object] = {
            "integrity": integrity[0] if integrity else "missing",
            "relations": {},
        }
        count = 0
        hash_sum = 0
        hash_xor = 0
        counts_ok = True
        for name in self.schema.names():
            observed = self._conn.execute(_sql.count_live_sql(name)).fetchone()[0]
            recorded = self._counts.get(name, 0)
            report["relations"][name] = {
                "recorded": recorded,
                "observed": observed,
            }
            if observed != recorded:
                counts_ok = False
            for tup in self._live_tuples(name):
                fh = _fact_hash(name, tup)
                count += 1
                hash_sum = (hash_sum + fh) & _M64
                hash_xor ^= fh
        fingerprint_ok = (
            count == self._count
            and hash_sum == self._hash_sum
            and hash_xor == self._hash_xor
        )
        report["counts_ok"] = counts_ok
        report["fingerprint_ok"] = fingerprint_ok
        # With no transaction open the live head *is* the last committed
        # snapshot, so the committed metadata (whose counts are
        # process-independent, unlike the hash pair) must agree with the
        # observed rows; mid-transaction the head legitimately runs ahead.
        if not self._in_txn:
            meta = dict(self._conn.execute(_sql.meta_select_sql()).fetchall())
            meta_counts = {
                name: int(n)
                for name, n in json.loads(meta.get("counts", "{}")).items()
            }
            meta_ok = int(meta.get("count", "0")) == count and all(
                meta_counts.get(name, 0)
                == report["relations"][name]["observed"]
                for name in self.schema.names()
            )
            report["meta_counts_ok"] = meta_ok
        else:
            meta_ok = True
        report["ok"] = (
            report["integrity"] == "ok" and counts_ok and fingerprint_ok and meta_ok
        )
        return report

    # ------------------------------------------------------------------
    # SQL join pushdown
    # ------------------------------------------------------------------
    def _ensure_delta(
        self, delta: Mapping[str, Iterable[Tuple[object, ...]]]
    ) -> None:
        """Load the round's delta fact sets into temp tables (idempotent).

        Keyed by the mapping's identity: the Datalog evaluator builds a
        fresh delta dict per round and never mutates one mid-round (the
        documented executor contract), so one load serves every delta
        variant of every rule in the round.
        """
        if self._delta_key is delta:
            return
        for name in self._delta_relations:
            self._conn.execute(_sql.clear_delta_sql(name))
        for name, tuples in delta.items():
            if name not in self.schema:
                continue
            arity = self.schema.arity(name)
            self._conn.execute(_sql.create_delta_table_sql(name, arity))
            if name in self._delta_relations:
                pass  # already cleared above
            else:
                self._delta_relations.add(name)
            self._conn.executemany(
                _sql.insert_delta_sql(name, arity),
                (_encode_tuple(tup) for tup in tuples),
            )
        self._delta_key = delta

    def sql_assignments(self, plan: "_pc.QueryPlan") -> Optional[Iterator[dict]]:
        """Execute *plan* as a pushed-down SQL join over the live head.

        Returns ``None`` when the plan should run on the in-memory
        executor instead (below the ``REPRO_SQL_PUSHDOWN_MIN_ROWS``
        threshold, un-encodable constants, or a scripted ``sql_pushdown``
        fault) — the caller falls through to the facade path, which is
        always correct.
        """
        return _maybe_pushdown(self, plan, counts=self._counts)

    def sql_assignments_delta(
        self,
        plan: "_pc.QueryPlan",
        old_instance,
        delta: Mapping[str, Iterable[Tuple[object, ...]]],
    ) -> Optional[Iterator[dict]]:
        """Execute a delta-variant plan as a pushed-down SQL join."""
        if not isinstance(old_instance, SQLStoreView) or old_instance._store is not self:
            return None  # mixed-backend delta round: in-memory path handles it
        return _maybe_pushdown(
            self,
            plan,
            counts=self._counts,
            old_counts=old_instance._snap._counts,
            old_gen=old_instance._snap.gen,
            delta=delta,
        )


def _sqlstore_from_payload(
    schema: Schema,
    payload: Tuple[Tuple[str, Tuple[Tuple[object, ...], ...]], ...],
) -> SQLStoreInstance:
    """Rebuild a pickled SQL store (as a scratch store) in the receiver."""
    store = SQLStoreInstance(schema)
    for name, tuples in payload:
        for tup in tuples:
            store.add_unchecked(name, tup)
    return store


# ----------------------------------------------------------------------
# Pushdown routing
# ----------------------------------------------------------------------
def _maybe_pushdown(
    store: SQLStoreInstance,
    plan: "_pc.QueryPlan",
    counts: Mapping[str, int],
    pinned_gen: Optional[int] = None,
    old_counts: Optional[Mapping[str, int]] = None,
    old_gen: Optional[int] = None,
    delta: Optional[Mapping[str, Iterable[Tuple[object, ...]]]] = None,
) -> Optional[Iterator[dict]]:
    """The routing decision + execution of one SQL join pushdown.

    Returns a row iterator (decoded assignment dicts) or ``None`` to
    degrade to the in-memory executor.  The decision is recorded in the
    ``store.pushdown*`` counters and, when tracing is on, as a
    ``store.sql_pushdown`` span.
    """
    if plan.fallback or plan.always_false or not plan.atoms:
        return None
    largest = 0
    for atom in plan.atoms:
        if atom.source == _pc.SRC_DELTA:
            continue
        side = old_counts if atom.source == _pc.SRC_OLD else counts
        n = side.get(atom.relation, 0) if side is not None else 0
        if n > largest:
            largest = n
    if largest < _pushdown_threshold():
        _metrics.counter("store.pushdown_skipped")
        return None
    fault = faults.storage_fault("sql_pushdown")
    if fault is not None:
        # Scripted storage failure on the pushdown path: degrade to the
        # in-memory executor over the same facade — verdict-identical,
        # merely slower — and count the degradation.
        _metrics.counter("store.pushdown_fault")
        return None
    cache = plan.__dict__.get("_sql_join_cache")
    if cache is None:
        cache = {}
        object.__setattr__(plan, "_sql_join_cache", cache)
    visibility = _sql.VIS_PINNED if pinned_gen is not None else _sql.VIS_HEAD
    join = cache.get(visibility)
    if join is None:
        try:
            join = _sql.compile_join_sql(plan, visibility, encode_value)
        except TypeError:
            # A constant outside the scalar vocabulary: comparisons over
            # it have no SQL image — the in-memory executor decides them.
            _metrics.counter("store.pushdown_skipped")
            return None
        cache[visibility] = join
    if delta is not None:
        store._ensure_delta(delta)
    args: List[object] = []
    for token, payload in join.params:
        if token == _sql.P_LIT:
            args.append(payload)
        elif token == _sql.P_OLD_GEN:
            args.append(old_gen)
        else:
            args.append(pinned_gen)
    _metrics.counter("store.pushdown")
    slot_variables = plan.slot_variables
    with _trace.trace_span(
        "store.sql_pushdown",
        atoms=len(plan.atoms),
        largest_relation=largest,
        delta=delta is not None,
    ):
        cursor = store._conn.execute(join.sql, args)
        first = cursor.fetchmany(_FETCH_BATCH)

    def rows() -> Iterator[dict]:
        batch = first
        while batch:
            for row in batch:
                yield dict(zip(slot_variables, map(decode_value, row)))
            batch = cursor.fetchmany(_FETCH_BATCH)

    return rows()
