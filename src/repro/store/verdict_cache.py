"""Crash-safe two-tier verdict cache for the decision engine.

The engine's cross-request memo is its biggest lever — fingerprints are
stable, canonical tokens and matrix workloads repeat 80–90% of their
tasks — but an unbounded in-process dict dies with the process, so a
fleet of workers or repeated CLI runs re-solve everything.  This module
makes verdicts durable without ever risking a *wrong* one: a cache that
can serve a corrupt, torn or stale entry is worse than no cache, so
every failure mode degrades to a counted, traced recomputation.

## Tiers

* **Memory** — :class:`LRUMemo`, a bounded LRU map (``REPRO_MEMO_CAPACITY``,
  ``0`` = unbounded) with hit/miss/eviction counters.
* **Disk** — an append log of immutable *segment* files in a shared
  directory (``REPRO_MEMO_PERSIST_PATH``).  Batches of verdicts are
  buffered in memory and spilled as one new segment per flush.

## Record format

A segment is ``b"RVC1"`` + one format-version byte, followed by records::

    <klen:u32le> <vlen:u32le> <crc32(key+value):u32le> <key bytes> <value bytes>

Keys are canonical cross-process-stable encodings of task fingerprints
(:func:`encode_key` — notably *not* raw pickle, whose set iteration
order depends on the per-process hash seed); values are pickled result
objects.  Readers verify the per-record checksum and compare the full
key bytes on every hit, so a hash collision or flipped bit can only ever
produce a *miss*.

## Writing and locking

Segments are written only through :func:`atomic_write_bytes` (unique tmp
file + ``fsync`` + ``os.replace`` + directory ``fsync``), so a reader
never observes a half-written segment: a crash mid-write leaves a stray
``*.tmp`` and an untouched directory.  All writes happen under an
advisory ``flock`` on ``<dir>/lock`` — the kernel releases it when a
holder dies, so a crashed process can never wedge the store (stale-lock
recovery is automatic).  A lock-acquisition timeout
(``REPRO_MEMO_LOCK_TIMEOUT``) degrades that flush to compute-only with a
single warning.  When the directory accumulates more than
``REPRO_MEMO_COMPACT_SEGMENTS`` segments, the flush holding the lock
compacts them into one (later-wins by segment sequence); a crash
mid-compaction leaves duplicate records, which the next scan resolves
identically.

## Degradation matrix

Every failure is counted in :meth:`VerdictCache.stats`, mirrored into
the :mod:`repro.obs.metrics` registry under ``verdict_cache.*``, and
(when tracing is on) emitted as a ``verdict_cache.degraded`` event:

=================  ==============================================
corrupt record     skipped (framing intact → rest of segment kept)
truncated segment  parsed up to the tear, tail dropped
newer format       store disabled, compute-only, single warning
older format       segment skipped, single warning
``ENOSPC``         persistence disabled, single warning
lock timeout       flush skipped, single warning
unreadable file    treated as a miss
=================  ==============================================

Partial (``UNKNOWN``/interrupted) results are never handed to the cache
(the engine's never-memoize-partials rule), so nothing partial is ever
persisted.

## Fault injection

The storage points of :mod:`repro.store.faults` (``torn_write``,
``corrupt_record``, ``partial_read``, ``lock_timeout``, ``disk_full``)
hook the exact syscall boundaries here, so the crash-consistency suite
can prove verdict-for-verdict equality with the cold-cache oracle under
every fault.
"""

from __future__ import annotations

import enum
import errno
import hashlib
import itertools
import os
import pickle
import struct
import time
import warnings
import zlib
from collections import OrderedDict
from dataclasses import fields as dataclass_fields, is_dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs.env import (
    DEFAULT_MEMO_CAPACITY,
    DEFAULT_MEMO_COMPACT_SEGMENTS,
    DEFAULT_MEMO_LOCK_TIMEOUT,
    MEMO_CAPACITY_ENV,
    MEMO_COMPACT_SEGMENTS_ENV,
    MEMO_LOCK_TIMEOUT_ENV,
    MEMO_PERSIST_PATH_ENV,
    non_negative_int,
    positive_float,
    positive_int,
    raw_string,
)
from repro.store import faults

try:  # pragma: no cover - fcntl is present on every supported platform
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

#: Segment file magic; the trailing byte of the header is the version.
MAGIC = b"RVC1"
#: Bump on any incompatible record-format change.  A store written by a
#: *newer* library disables this process's cache (compute-only) — old
#: code must neither misread new records nor pollute a new store.
FORMAT_VERSION = 1

_HEADER = MAGIC + bytes([FORMAT_VERSION])
_RECORD = struct.Struct("<III")  # klen, vlen, crc32(key + value)

_SEGMENT_SUFFIX = ".seg"
_LOCK_NAME = "lock"

#: Distinguished miss token (``None`` is a legal cached value).
_MISS = object()

_TMP_COUNTER = itertools.count()


# ----------------------------------------------------------------------
# One-time degradation warnings
# ----------------------------------------------------------------------
_WARNED: set = set()


def _warn_once(key: str, message: str) -> None:
    """Warn once per process about a degradation (then stay quiet)."""
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, RuntimeWarning, stacklevel=3)


# ----------------------------------------------------------------------
# Canonical key encoding
# ----------------------------------------------------------------------
def _lp(data: bytes) -> bytes:
    """Length-prefixed framing (keeps every encoding self-delimiting)."""
    return struct.pack("<I", len(data)) + data


def encode_key(obj: object) -> bytes:
    """A canonical, cross-process-stable byte encoding of a fingerprint.

    Raw pickle is *not* stable: frozensets pickle in iteration order,
    which depends on the per-process hash seed, so pickled fingerprints
    from two CLI runs would never match on disk.  This encoder is
    type-tagged and recursive; unordered containers sort their elements
    by encoded bytes (injective by induction, so the order is total and
    deterministic), snapshots encode their repr-sorted fact content
    rather than their seed-dependent hash fingerprint, and dataclasses
    (formulas, bounds, results) encode as qualified name plus fields.

    Objects outside the known vocabulary fall back to pickle — a
    potentially unstable encoding, but the failure mode is a cache
    *miss*, never a wrong hit (readers compare full key bytes).
    """
    if obj is None:
        return b"\x00"
    if obj is True:
        return b"\x01"
    if obj is False:
        return b"\x02"
    kind = type(obj)
    if kind is int:
        return b"\x03" + _lp(str(obj).encode("ascii"))
    if kind is float:
        return b"\x04" + struct.pack("<d", obj)
    if kind is str:
        return b"\x05" + _lp(obj.encode("utf-8", "surrogatepass"))
    if kind is bytes:
        return b"\x06" + _lp(obj)
    if kind is tuple:
        return b"\x07" + struct.pack("<I", len(obj)) + b"".join(
            encode_key(item) for item in obj
        )
    if kind is list:
        return b"\x08" + struct.pack("<I", len(obj)) + b"".join(
            encode_key(item) for item in obj
        )
    if kind is frozenset or kind is set:
        parts = sorted(encode_key(item) for item in obj)
        return b"\x09" + struct.pack("<I", len(parts)) + b"".join(parts)
    if kind is dict:
        parts = sorted(
            encode_key(key) + encode_key(value) for key, value in obj.items()
        )
        return b"\x0a" + struct.pack("<I", len(parts)) + b"".join(parts)
    if isinstance(obj, enum.Enum):
        return (
            b"\x0b"
            + _lp(f"{kind.__module__}.{kind.__qualname__}".encode("utf-8"))
            + _lp(obj.name.encode("utf-8"))
        )
    # Foreign store backends (e.g. the SQL store's snapshots) provide the
    # Snapshot-branch payload themselves — duck-typed so this module never
    # imports them; equal facts encode to identical bytes across backends.
    payload_builder = getattr(obj, "_verdict_key_payload", None)
    if payload_builder is not None:
        return b"\x0c" + encode_key(payload_builder())
    # Snapshot content (imported lazily: snapshot.py must not depend on us).
    from repro.store.snapshot import Snapshot

    if isinstance(obj, Snapshot):
        names = tuple(obj.schema.names())
        payload = tuple(
            (name, tuple(sorted(shard.tuples, key=repr)))
            for name, shard in sorted(obj.shards.items())
            if shard.count
        )
        return b"\x0c" + encode_key((names, payload))
    if is_dataclass(obj) and not isinstance(obj, type):
        values = tuple(
            getattr(obj, field.name) for field in dataclass_fields(obj)
        )
        return (
            b"\x0d"
            + _lp(f"{kind.__module__}.{kind.__qualname__}".encode("utf-8"))
            + encode_key(values)
        )
    return b"\x0e" + _lp(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------
def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write *data* to *path* so readers see the old file or all of *data*.

    Unique tmp file in the same directory → write → ``fsync`` →
    ``os.replace`` → directory ``fsync``.  This is the **only** function
    allowed to create or replace verdict-store files (lint rule IO001).

    Fault hooks: ``disk_full`` raises ``ENOSPC`` before anything is
    written; ``torn_write`` persists only a truncated prefix (action
    ``trip``) or kills the process after the tmp write and before the
    replace (action ``kill`` — the scripted mid-write crash).
    """
    if faults.storage_fault("disk_full") is not None:
        raise OSError(errno.ENOSPC, os.strerror(errno.ENOSPC), path)
    torn = faults.storage_fault("torn_write")
    payload = data[: len(data) // 2] if torn is not None else data
    directory = os.path.dirname(os.path.abspath(path))
    tmp = os.path.join(
        directory,
        f".{os.path.basename(path)}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp",
    )
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
    try:
        try:
            os.write(fd, payload)
            os.fsync(fd)
        finally:
            os.close(fd)
        if torn is not None and torn.action == "kill":
            os._exit(faults.KILL_EXIT_CODE)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    dir_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


# ----------------------------------------------------------------------
# Bloom filter (negative lookups without touching the index)
# ----------------------------------------------------------------------
class BloomFilter:
    """A plain bloom filter over key digests.

    Three probe positions come from independent 4-byte slices of the
    16-byte key digest — the digest already is a uniform hash, so no
    further mixing is needed.  Sized at ~10 bits/key for a ~1% false
    positive rate; false positives cost one index probe, false negatives
    are impossible.
    """

    __slots__ = ("_bits", "_nbits")

    def __init__(self, capacity: int, bits_per_key: int = 10) -> None:
        nbits = max(256, capacity * bits_per_key)
        self._bits = bytearray((nbits + 7) // 8)
        self._nbits = len(self._bits) * 8

    def _positions(self, digest: bytes) -> Tuple[int, int, int]:
        return (
            int.from_bytes(digest[0:4], "little") % self._nbits,
            int.from_bytes(digest[4:8], "little") % self._nbits,
            int.from_bytes(digest[8:12], "little") % self._nbits,
        )

    def add(self, digest: bytes) -> None:
        for pos in self._positions(digest):
            self._bits[pos >> 3] |= 1 << (pos & 7)

    def might_contain(self, digest: bytes) -> bool:
        return all(
            self._bits[pos >> 3] & (1 << (pos & 7))
            for pos in self._positions(digest)
        )


# ----------------------------------------------------------------------
# Memory tier
# ----------------------------------------------------------------------
class LRUMemo:
    """Bounded LRU map over task fingerprints (capacity ``<= 0``: unbounded)."""

    __slots__ = ("_entries", "capacity", "hits", "misses", "evictions")

    def __init__(self, capacity: int = 0) -> None:
        self._entries: "OrderedDict[object, object]" = OrderedDict()
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: object) -> object:
        """The cached value or :data:`_MISS`; a hit refreshes recency."""
        value = self._entries.get(key, _MISS)
        if value is _MISS:
            self.misses += 1
            return _MISS
        self.hits += 1
        if self.capacity > 0:
            self._entries.move_to_end(key)
        return value

    def put(self, key: object, value: object) -> None:
        self._entries[key] = value
        if self.capacity > 0:
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
#: Counter names exposed by :meth:`VerdictCache.stats` (and mirrored into
#: the metrics registry as ``verdict_cache.<name>``).
_COUNTERS = (
    "disk_hits",
    "disk_misses",
    "bloom_negatives",
    "persisted_records",
    "segments_written",
    "compactions",
    "corrupt_records",
    "truncated_segments",
    "version_mismatches",
    "lock_timeouts",
    "write_errors",
    "read_errors",
    "decode_errors",
    "encode_errors",
)


class VerdictCache:
    """Bounded memory tier + optional crash-safe persistent tier.

    The engine owns one per instance: :meth:`lookup` on classify,
    :meth:`put` on store, :meth:`flush` once per batch.  Thread-safety
    matches the engine's (single-threaded per instance); *process* safety
    is the point — concurrent processes share the store through immutable
    segments and the flock-serialised writer protocol.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        persist_path: Optional[str] = None,
        lock_timeout_s: Optional[float] = None,
        compact_segments: Optional[int] = None,
    ) -> None:
        if capacity is None:
            capacity = non_negative_int(MEMO_CAPACITY_ENV, DEFAULT_MEMO_CAPACITY)
        if persist_path is None:
            persist_path = raw_string(MEMO_PERSIST_PATH_ENV, "").strip()
        if lock_timeout_s is None:
            lock_timeout_s = positive_float(
                MEMO_LOCK_TIMEOUT_ENV, DEFAULT_MEMO_LOCK_TIMEOUT
            )
        if compact_segments is None:
            compact_segments = positive_int(
                MEMO_COMPACT_SEGMENTS_ENV, DEFAULT_MEMO_COMPACT_SEGMENTS
            )
        self.memo = LRUMemo(capacity)
        self.persist_path = persist_path or None
        self.lock_timeout_s = lock_timeout_s or DEFAULT_MEMO_LOCK_TIMEOUT
        self.compact_segments = compact_segments
        self.counters: Dict[str, int] = {name: 0 for name in _COUNTERS}
        self._pending: List[Tuple[bytes, bytes]] = []
        # digest -> (segment path, record payload offset, klen, vlen, crc)
        self._index: Dict[bytes, Tuple[str, int, int, int, int]] = {}
        self._bloom = BloomFilter(0)
        self._scanned = False
        self._dir_sig: Optional[Tuple[int, int]] = None
        self._disabled = False  # newer-format store: compute-only mode
        self._write_disabled = False  # ENOSPC: reads still fine

    # -- counting ------------------------------------------------------
    def _bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount
        _metrics.counter(f"verdict_cache.{name}", amount)

    def _degrade(self, point: str, reason: str, warn: Optional[str] = None) -> None:
        """Count + trace one degradation; optionally warn once."""
        self._bump(point)
        _trace.event("verdict_cache.degraded", point=point, reason=reason)
        if warn is not None:
            _warn_once(f"{self.persist_path}:{point}", warn)

    # -- tier 1: memory ------------------------------------------------
    def lookup(self, fingerprint: object) -> Tuple[object, Optional[str]]:
        """``(value, tier)`` — tier ``"memory"``, ``"disk"`` or ``None`` (miss)."""
        value = self.memo.get(fingerprint)
        if value is not _MISS:
            return value, "memory"
        if self.persist_path is None or self._disabled:
            return None, None
        value = self._disk_lookup(fingerprint)
        if value is _MISS:
            return None, None
        # Promote: later same-process hits are memory hits on the same
        # object, preserving the memo's pristine-original semantics.
        self.memo.put(fingerprint, value)
        return value, "disk"

    def put(self, fingerprint: object, value: object) -> None:
        """Store a *complete* verdict (partials are the engine's to reject)."""
        self.memo.put(fingerprint, value)
        if self.persist_path is None or self._disabled or self._write_disabled:
            return
        try:
            key_bytes = encode_key(fingerprint)
            value_bytes = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            # Unpicklable payloads opt out of the disk tier, like
            # unkeyable tasks opt out of memoization.
            self._bump("encode_errors")
            return
        self._pending.append((key_bytes, value_bytes))

    def clear(self, *, disk: bool = False) -> None:
        """Drop the memory tier (and with ``disk=True`` the store files)."""
        self.memo.clear()
        self._pending.clear()
        if disk and self.persist_path is not None:
            clear_store(self.persist_path, lock_timeout_s=self.lock_timeout_s)
        self._index.clear()
        self._bloom = BloomFilter(0)
        self._scanned = False
        self._dir_sig = None

    def __len__(self) -> int:
        return len(self.memo)

    def stats(self) -> Dict[str, object]:
        out: Dict[str, object] = dict(self.counters)
        out["memory_hits"] = self.memo.hits
        out["memory_misses"] = self.memo.misses
        out["evictions"] = self.memo.evictions
        out["entries"] = len(self.memo)
        out["capacity"] = self.memo.capacity
        out["pending_records"] = len(self._pending)
        out["indexed_records"] = len(self._index)
        out["persist_enabled"] = bool(
            self.persist_path and not self._disabled and not self._write_disabled
        )
        return out

    # -- tier 2: disk --------------------------------------------------
    def _segment_paths(self) -> List[str]:
        """Current segments, oldest first (sequence order = write order)."""
        assert self.persist_path is not None
        try:
            names = os.listdir(self.persist_path)
        except OSError:
            return []
        return [
            os.path.join(self.persist_path, name)
            for name in sorted(names)
            if name.endswith(_SEGMENT_SUFFIX)
        ]

    def _dir_signature(self) -> Optional[Tuple[int, int]]:
        try:
            stat = os.stat(self.persist_path)  # type: ignore[arg-type]
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_ino)

    def _read_file(self, path: str) -> bytes:
        with open(path, "rb") as handle:
            data = handle.read()
        if faults.storage_fault("partial_read") is not None:
            data = data[: len(data) // 2]
        return data

    def _read_span(self, path: str, offset: int, length: int) -> bytes:
        with open(path, "rb") as handle:
            handle.seek(offset)
            data = handle.read(length)
        if faults.storage_fault("partial_read") is not None:
            data = data[: len(data) // 2]
        return data

    def _scan(self) -> None:
        """(Re)build the digest index + bloom filter from the segments."""
        self._index.clear()
        self._scanned = True
        self._dir_sig = self._dir_signature()
        paths = self._segment_paths()
        records: List[Tuple[bytes, Tuple[str, int, int, int, int]]] = []
        for path in paths:
            try:
                data = self._read_file(path)
            except OSError:
                self._degrade("read_errors", f"unreadable segment {path}")
                continue
            if len(data) < len(_HEADER) or data[:4] != MAGIC:
                self._degrade(
                    "version_mismatches",
                    f"bad magic in {path}",
                    warn=f"verdict cache: skipping non-RVC file {path!r}",
                )
                continue
            version = data[4]
            if version > FORMAT_VERSION:
                # A newer library owns this store; neither read nor
                # pollute it.  Compute-only from here on.
                self._disabled = True
                self._index.clear()
                self._degrade(
                    "version_mismatches",
                    f"segment format v{version} > v{FORMAT_VERSION}",
                    warn=(
                        f"verdict cache at {self.persist_path!r} uses format "
                        f"v{version} (this library writes v{FORMAT_VERSION}); "
                        "falling back to compute-only mode"
                    ),
                )
                return
            if version < FORMAT_VERSION:
                self._degrade(
                    "version_mismatches",
                    f"segment format v{version} < v{FORMAT_VERSION}",
                    warn=(
                        f"verdict cache: skipping old-format (v{version}) "
                        f"segment {path!r}"
                    ),
                )
                continue
            for digest, entry in self._parse_records(path, data):
                records.append((digest, entry))
        self._bloom = BloomFilter(max(len(records), 64))
        for digest, entry in records:
            # Later segments win (the dict keeps the last assignment).
            self._index[digest] = entry
            self._bloom.add(digest)

    def _parse_records(
        self, path: str, data: bytes
    ) -> Iterator[Tuple[bytes, Tuple[str, int, int, int, int]]]:
        pos = len(_HEADER)
        total = len(data)
        while pos + _RECORD.size <= total:
            klen, vlen, crc = _RECORD.unpack_from(data, pos)
            start = pos + _RECORD.size
            end = start + klen + vlen
            if end > total:
                self._degrade("truncated_segments", f"torn tail in {path}")
                return
            blob = data[start:end]
            pos = end
            if zlib.crc32(blob) & 0xFFFFFFFF != crc:
                # Framing is intact, so later records in the segment
                # are still recoverable.
                self._degrade("corrupt_records", f"checksum mismatch in {path}")
                continue
            digest = hashlib.sha256(blob[:klen]).digest()[:16]
            yield digest, (path, start, klen, vlen, crc)
        if pos != total:
            self._degrade("truncated_segments", f"torn tail in {path}")

    def _disk_lookup(self, fingerprint: object) -> object:
        try:
            key_bytes = encode_key(fingerprint)
        except Exception:
            self._bump("encode_errors")
            return _MISS
        if not self._scanned or self._dir_sig != self._dir_signature():
            self._scan()
            if self._disabled:
                return _MISS
        digest = hashlib.sha256(key_bytes).digest()[:16]
        if not self._bloom.might_contain(digest):
            self._bump("bloom_negatives")
            return _MISS
        entry = self._index.get(digest)
        if entry is None:
            self._bump("disk_misses")
            return _MISS
        path, start, klen, vlen, crc = entry
        try:
            blob = self._read_span(path, start, klen + vlen)
        except OSError:
            self._degrade("read_errors", f"unreadable record in {path}")
            return _MISS
        if len(blob) != klen + vlen or zlib.crc32(blob) & 0xFFFFFFFF != crc:
            self._degrade("corrupt_records", f"checksum mismatch in {path}")
            return _MISS
        if blob[:klen] != key_bytes:
            # 128-bit digest collision: astronomically unlikely, but the
            # exact key comparison makes it a miss, never a wrong hit.
            self._bump("disk_misses")
            return _MISS
        try:
            value = pickle.loads(blob[klen:])
        except Exception:
            self._degrade("decode_errors", f"undecodable value in {path}")
            return _MISS
        self._bump("disk_hits")
        _trace.event("verdict_cache.disk_hit", segment=os.path.basename(path))
        return value

    # -- persistence ---------------------------------------------------
    def flush(self) -> None:
        """Spill buffered verdicts as one new segment (batch boundary)."""
        if not self._pending:
            return
        if (
            self.persist_path is None
            or self._disabled
            or self._write_disabled
            or fcntl is None
        ):
            self._pending.clear()
            return
        with _trace.trace_span(
            "verdict_cache.flush", records=len(self._pending)
        ):
            self._flush_locked()

    def _flush_locked(self) -> None:
        try:
            os.makedirs(self.persist_path, exist_ok=True)  # type: ignore[arg-type]
        except OSError:
            self._degrade(
                "write_errors",
                f"cannot create {self.persist_path}",
                warn=(
                    f"verdict cache: cannot create {self.persist_path!r}; "
                    "persistence disabled"
                ),
            )
            self._write_disabled = True
            self._pending.clear()
            return
        lock_fd = self._acquire_lock()
        if lock_fd is None:
            self._degrade(
                "lock_timeouts",
                "flush skipped (lock busy)",
                warn=(
                    f"verdict cache: lock at {self.persist_path!r} busy for "
                    f">{self.lock_timeout_s}s; this batch stays compute-only"
                ),
            )
            self._pending.clear()
            return
        try:
            # Writers are serialised by the lock, so any leftover tmp
            # file belongs to a crashed writer and is dead.
            self._cleanup_tmp()
            self._write_segment()
            self._maybe_compact()
            self._dir_sig = self._dir_signature()
        finally:
            self._release_lock(lock_fd)

    def _write_segment(self) -> None:
        assert self.persist_path is not None
        seq = self._next_sequence()
        path = os.path.join(
            self.persist_path, f"verdicts-{seq:08d}-{os.getpid()}{_SEGMENT_SUFFIX}"
        )
        chunks = [_HEADER]
        offsets: List[Tuple[bytes, int, int, int, int]] = []
        pos = len(_HEADER)
        for key_bytes, value_bytes in self._pending:
            blob = key_bytes + value_bytes
            crc = zlib.crc32(blob) & 0xFFFFFFFF
            chunks.append(_RECORD.pack(len(key_bytes), len(value_bytes), crc))
            start = pos + _RECORD.size
            digest = hashlib.sha256(key_bytes).digest()[:16]
            offsets.append((digest, start, len(key_bytes), len(value_bytes), crc))
            chunks.append(blob)
            pos = start + len(blob)
        payload = b"".join(chunks)
        if faults.storage_fault("corrupt_record") is not None and offsets:
            # Flip one byte inside the first record's value region: the
            # framing stays intact, the checksum does not.
            corrupt = bytearray(payload)
            _, start, klen, _, _ = offsets[0]
            corrupt[start + klen] ^= 0xFF
            payload = bytes(corrupt)
        count = len(self._pending)
        self._pending.clear()
        try:
            atomic_write_bytes(path, payload)
        except OSError as exc:
            if exc.errno == errno.ENOSPC:
                self._write_disabled = True
                self._degrade(
                    "write_errors",
                    "ENOSPC",
                    warn=(
                        f"verdict cache: no space left at "
                        f"{self.persist_path!r}; persistence disabled"
                    ),
                )
            else:
                self._degrade("write_errors", f"segment write failed: {exc}")
            return
        self._bump("segments_written")
        self._bump("persisted_records", count)
        if self._scanned:
            for digest, start, klen, vlen, crc in offsets:
                self._index[digest] = (path, start, klen, vlen, crc)
                self._bloom.add(digest)

    def _next_sequence(self) -> int:
        highest = 0
        for path in self._segment_paths():
            name = os.path.basename(path)
            parts = name[: -len(_SEGMENT_SUFFIX)].split("-")
            try:
                highest = max(highest, int(parts[1]))
            except (IndexError, ValueError):
                continue
        return highest + 1

    def _maybe_compact(self) -> None:
        """Merge the append log into one segment (later-wins), under lock.

        Crash-safe by construction: the merged segment lands atomically
        with the highest sequence number before any old segment is
        unlinked, so a crash at any point leaves duplicates that the
        normal later-wins scan resolves to the same verdicts.
        """
        paths = self._segment_paths()
        if len(paths) <= self.compact_segments:
            return
        merged: "OrderedDict[bytes, Tuple[int, bytes]]" = OrderedDict()
        for path in paths:
            try:
                data = self._read_file(path)
            except OSError:
                self._degrade("read_errors", f"unreadable segment {path}")
                continue
            if len(data) < len(_HEADER) or data[:4] != MAGIC:
                continue
            if data[4] != FORMAT_VERSION:
                if data[4] > FORMAT_VERSION:
                    self._disabled = True
                    return
                continue
            for digest, (_, start, klen, vlen, _) in self._parse_records(
                path, data
            ):
                merged[digest] = (klen, data[start : start + klen + vlen])
                merged.move_to_end(digest)
        seq = self._next_sequence()
        assert self.persist_path is not None
        target = os.path.join(
            self.persist_path, f"verdicts-{seq:08d}-{os.getpid()}{_SEGMENT_SUFFIX}"
        )
        chunks = [_HEADER]
        for klen, blob in merged.values():
            crc = zlib.crc32(blob) & 0xFFFFFFFF
            chunks.append(_RECORD.pack(klen, len(blob) - klen, crc))
            chunks.append(blob)
        payload = b"".join(chunks)
        try:
            atomic_write_bytes(target, payload)
        except OSError as exc:
            self._degrade("write_errors", f"compaction write failed: {exc}")
            return
        for path in paths:
            try:
                os.unlink(path)
            except OSError:
                pass
        self._bump("compactions")
        self._scan()

    # -- locking -------------------------------------------------------
    def _acquire_lock(self) -> Optional[int]:
        assert self.persist_path is not None
        if faults.storage_fault("lock_timeout") is not None:
            return None
        lock_path = os.path.join(self.persist_path, _LOCK_NAME)
        try:
            fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        except OSError:
            return None
        # Lock-wait deadline: wall-time measurement is exactly what a
        # timeout is, and the obs clock indirection would add nothing.
        deadline = time.monotonic() + self.lock_timeout_s  # repro: noqa[TIME001]
        while True:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                return fd
            except OSError:
                if time.monotonic() >= deadline:  # repro: noqa[TIME001]
                    os.close(fd)
                    return None
                time.sleep(0.005)

    def _release_lock(self, fd: int) -> None:
        try:
            fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def _cleanup_tmp(self) -> None:
        assert self.persist_path is not None
        try:
            names = os.listdir(self.persist_path)
        except OSError:
            return
        for name in names:
            if name.endswith(".tmp"):
                try:
                    os.unlink(os.path.join(self.persist_path, name))
                except OSError:
                    pass


# ----------------------------------------------------------------------
# Store-level helpers (CLI surface)
# ----------------------------------------------------------------------
def store_stats(path: str) -> Dict[str, object]:
    """Segment/record/byte counts of the store at *path* (read-only)."""
    cache = VerdictCache(capacity=0, persist_path=path)
    segments = cache._segment_paths()
    total_bytes = 0
    for segment in segments:
        try:
            total_bytes += os.path.getsize(segment)
        except OSError:
            pass
    cache._scan()
    stats = cache.stats()
    return {
        "path": path,
        "segments": len(segments),
        "records": stats["indexed_records"],
        "bytes": total_bytes,
        "format_version": FORMAT_VERSION,
        "corrupt_records": stats["corrupt_records"],
        "truncated_segments": stats["truncated_segments"],
        "version_mismatches": stats["version_mismatches"],
    }


def verify_store(path: str) -> Dict[str, object]:
    """Re-checksum every record of every segment at *path*.

    Returns a report with per-problem detail; ``ok`` is true only when
    every record of every segment verified clean.
    """
    problems: List[str] = []
    segments = 0
    records = 0
    try:
        names = sorted(os.listdir(path))
    except OSError as exc:
        return {
            "path": path,
            "ok": False,
            "segments": 0,
            "records": 0,
            "problems": [f"cannot list {path!r}: {exc}"],
        }
    for name in names:
        if not name.endswith(_SEGMENT_SUFFIX):
            continue
        segments += 1
        segment = os.path.join(path, name)
        try:
            with open(segment, "rb") as handle:
                data = handle.read()
        except OSError as exc:
            problems.append(f"{name}: unreadable ({exc})")
            continue
        if len(data) < len(_HEADER) or data[:4] != MAGIC:
            problems.append(f"{name}: bad magic")
            continue
        if data[4] != FORMAT_VERSION:
            problems.append(
                f"{name}: format v{data[4]} (expected v{FORMAT_VERSION})"
            )
            continue
        pos = len(_HEADER)
        while pos + _RECORD.size <= len(data):
            klen, vlen, crc = _RECORD.unpack_from(data, pos)
            start = pos + _RECORD.size
            end = start + klen + vlen
            if end > len(data):
                problems.append(f"{name}: truncated record at offset {pos}")
                pos = len(data)
                break
            if zlib.crc32(data[start:end]) & 0xFFFFFFFF != crc:
                problems.append(f"{name}: checksum mismatch at offset {pos}")
            else:
                records += 1
            pos = end
        if pos != len(data):
            problems.append(f"{name}: trailing garbage at offset {pos}")
    return {
        "path": path,
        "ok": not problems,
        "segments": segments,
        "records": records,
        "problems": problems,
    }


def clear_store(
    path: str, lock_timeout_s: float = DEFAULT_MEMO_LOCK_TIMEOUT
) -> int:
    """Remove every segment (and stray tmp) at *path*; returns files removed."""
    cache = VerdictCache(
        capacity=0, persist_path=path, lock_timeout_s=lock_timeout_s
    )
    try:
        names = os.listdir(path)
    except OSError:
        return 0
    lock_fd = cache._acquire_lock() if fcntl is not None else None
    removed = 0
    try:
        for name in names:
            if name.endswith(_SEGMENT_SUFFIX) or name.endswith(".tmp"):
                try:
                    os.unlink(os.path.join(path, name))
                    removed += 1
                except OSError:
                    pass
    finally:
        if lock_fd is not None:
            cache._release_lock(lock_fd)
    return removed
