"""Shared-queue subtree execution for the emptiness witness search.

The Lemma 4.9 chain decomposition (:mod:`repro.store.parallel`) gives
whole-chain parallelism, which loses when one hard chain dominates: the
pool drains to a single busy worker while the stragglers' subtrees sit
inside it, unreachable.  This module parallelises *inside* a chain.
Snapshots are picklable by construction, so a DFS frontier node ships as
a self-contained :class:`~repro.automata.emptiness.SubtreeItem`
``(states, snapshot, known, budget)``; workers pull items from the
shared pool queue, run each to completion — or hand it back for
**re-splitting** when it exceeds the per-item work budget — and the
coordinator folds the outcomes deterministically.

Guarantees:

* **Deterministic results.**  :func:`run_decomposed_search` returns the
  same ``(witness, explored, exhausted)`` whether items run in worker
  processes, in-process (no pool), or any mix (individual worker
  failures fall back to in-process resolution).  The fold consumes
  outcomes in canonical DFS order — the first witness in that order
  wins — and reconstructs the sequential interleaving of exploration
  counts exactly, including the ``max_paths`` abort point: a witness a
  worker found beyond the budget horizon the sequential search would
  have aborted at is discarded, not reported.
* **Re-splitting is deterministic too.**  A worker abandons an item once
  its local explored-node count exceeds the *split budget*; whether that
  happens is a pure function of ``(item, budget)``, never of
  scheduling.  The coordinator then expands the overflowed node one
  level (counting that node's own candidates itself) and enqueues the
  children — adaptive granularity without nondeterminism, at the cost of
  discarding the overflowed attempt (at most one budget's worth of
  work).
* **Warm shared pool.**  One persistent process pool (shared with the
  chain-level fan-out) is reused across ``automaton_emptiness`` calls;
  each worker caches the unpickled search context per coordinator token,
  so after the first item of a context only the item itself is rebuilt
  per task.

Early cancellation: once the fold settles on a witness, not-yet-started
items are cancelled (running ones finish in the background and are
discarded), mirroring the chain-level early exit.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from typing import Dict, List, Optional, Tuple

# NOTE: repro.store is initialised very early (the query plan cache pulls
# in the snapshot store), so this module must not import the repro.core
# package at module level — the budget types are imported lazily inside
# the budgeted entry points instead.  :mod:`repro.obs` is safe: it is
# dependency-free within the library.
from repro.obs import env as envknobs
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.store import faults

#: Default explored-nodes budget a worker spends on one subtree item
#: before handing it back for re-splitting.  Override per call via
#: ``automaton_emptiness(split_budget=...)`` or globally via the
#: ``REPRO_SUBTREE_SPLIT_BUDGET`` environment variable.
DEFAULT_SPLIT_BUDGET = envknobs.DEFAULT_SPLIT_BUDGET

#: Environment override for :data:`DEFAULT_SPLIT_BUDGET`.
SPLIT_BUDGET_ENV = envknobs.SPLIT_BUDGET_ENV

#: Environment override for the transient-failure retry count of the
#: pool path (:func:`pool_retry_limit`).
POOL_RETRIES_ENV = envknobs.POOL_RETRIES_ENV

#: Default bounded retries for a transient worker failure before the
#: in-process fallback.  Two retries with exponential backoff cover the
#: common one-off worker death without stalling a genuinely broken pool.
DEFAULT_POOL_RETRIES = envknobs.DEFAULT_POOL_RETRIES

#: Environment override for the per-item pooled result timeout in
#: seconds (:func:`pool_item_timeout`).  Unset/empty means no timeout —
#: the default, because a healthy pool's items always terminate (the DFS
#: is budget-bounded) and a spurious timeout costs a full in-process
#: recomputation.
POOL_ITEM_TIMEOUT_ENV = envknobs.POOL_ITEM_TIMEOUT_ENV

#: Base of the exponential retry backoff (seconds): 0.05, 0.1, 0.2, ...
_RETRY_BACKOFF_S = 0.05


# ----------------------------------------------------------------------
# Environment parsing — the declarations and parsers live in the central
# knob registry (:mod:`repro.obs.env`); these wrappers keep the
# historical call sites and import paths working.
# ----------------------------------------------------------------------
warn_invalid_env = envknobs.warn_invalid_env
#: Back-compat alias; the live warned-once set is ``repro.obs.env._ENV_WARNED``.
_ENV_WARNED = envknobs._ENV_WARNED


def subtree_split_budget() -> int:
    """The configured per-item work budget (env override or default)."""
    return envknobs.positive_int(SPLIT_BUDGET_ENV, DEFAULT_SPLIT_BUDGET)


def pool_retry_limit() -> int:
    """Bounded retries for transient worker failures (env override or default)."""
    return envknobs.non_negative_int(POOL_RETRIES_ENV, DEFAULT_POOL_RETRIES)


def pool_item_timeout() -> Optional[float]:
    """Per-item pooled result timeout in seconds (``None`` = no timeout)."""
    return envknobs.positive_float(POOL_ITEM_TIMEOUT_ENV, None)


# ----------------------------------------------------------------------
# Worker-failure taxonomy
# ----------------------------------------------------------------------
def _is_payload_error(error: BaseException) -> bool:
    """Whether *error* means the payload itself cannot cross the pipe.

    Pickling/unpickling failures are deterministic properties of the
    payload: retrying the exact same bytes reproduces them, so the right
    response is to fail the pool path fast and resolve in-process.
    Everything else (a dead worker breaking the pool, an OS-level pipe
    error) is treated as transient and eligible for bounded retry.
    """
    return isinstance(error, (pickle.PicklingError, pickle.UnpicklingError, TypeError, AttributeError))


def _bump(stats: Dict[str, int], key: str, amount: int = 1) -> None:
    stats[key] = stats.get(key, 0) + amount


# ----------------------------------------------------------------------
# The shared persistent pool
# ----------------------------------------------------------------------
# A lazily created, reused pool: spawning workers costs hundreds of
# milliseconds (fork of a large parent, interpreter warm-up), which would
# otherwise be paid by every emptiness call.  The pool is replaced when a
# caller needs more workers than it has, and discarded on any failure
# (the next call recreates it).  Both the chain-level fan-out
# (:mod:`repro.store.parallel`) and the subtree executor draw from it,
# so chain tasks and subtree items interleave in one queue — which is
# exactly how a dominant chain's subtrees fill workers that drained
# their own chains.
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0


def shared_pool(workers: int) -> ProcessPoolExecutor:
    """The shared pool, grown to at least *workers* workers."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS >= workers:
        return _POOL
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    _POOL = ProcessPoolExecutor(max_workers=workers, mp_context=context)
    _POOL_WORKERS = workers
    return _POOL


def discard_shared_pool() -> None:
    """Tear the shared pool down (the next call recreates it)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        try:
            _POOL.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - best-effort cleanup
            _metrics.counter("pool.shutdown_errors")
    _POOL = None
    _POOL_WORKERS = 0


# ----------------------------------------------------------------------
# Worker side: per-process context cache
# ----------------------------------------------------------------------
#: Worker-process cache of unpickled search contexts, keyed by the
#: coordinator's context token.  Bounded: coordinators churn through
#: contexts (one per chain restriction), workers must not accumulate
#: them forever.
_CONTEXT_CACHE: Dict[Tuple[int, int], object] = {}
_CONTEXT_ORDER: List[Tuple[int, int]] = []
_CONTEXT_CACHE_LIMIT = 4

_TOKEN_COUNTER = 0


def _next_context_token() -> Tuple[int, int]:
    """A token unique per (coordinator process, executor instance)."""
    global _TOKEN_COUNTER
    _TOKEN_COUNTER += 1
    return (os.getpid(), _TOKEN_COUNTER)


def _cached_search(token: Tuple[int, int], blob: bytes):
    search = _CONTEXT_CACHE.get(token)
    if search is None:
        from repro.automata.emptiness import search_from_payload

        search = search_from_payload(pickle.loads(blob))
        _CONTEXT_CACHE[token] = search
        _CONTEXT_ORDER.append(token)
        while len(_CONTEXT_ORDER) > _CONTEXT_CACHE_LIMIT:
            evicted = _CONTEXT_ORDER.pop(0)
            _CONTEXT_CACHE.pop(evicted, None)
    return search


def _subtree_worker(
    token: Tuple[int, int],
    blob: bytes,
    item,
    node_budget: int,
    trace_on: bool = False,
):
    """Top-level worker entry point (must be picklable by name).

    *trace_on* travels with every submission: persistent workers inherit
    whatever tracing flag the coordinator had at fork time, so the entry
    reconfigures :mod:`repro.obs.trace` per item and ships the spans it
    recorded back on the outcome (``SubtreeOutcome.spans``), where the
    coordinator folds them into the parent trace.
    """
    import dataclasses

    _trace.configure_worker(trace_on)
    faults.fire("subtree")
    search = _cached_search(token, blob)
    before = dict(search.stats)
    with _trace.trace_span(
        "emptiness.subtree", states=len(item.states), budget=node_budget
    ):
        outcome = search.run_subtree(item, node_budget)
    delta = {
        key: value - before.get(key, 0)
        for key, value in search.stats.items()
        if value != before.get(key, 0)
    }
    spans = tuple(_trace.take_spans()) if trace_on else None
    return dataclasses.replace(outcome, stats=delta or None, spans=spans or None)


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
class SubtreeExecutor:
    """Submits one search context's subtree items to the shared pool.

    The context payload is pickled **once** (:meth:`bind`) and its bytes
    shipped with every item; workers unpickle it on first sight and cache
    the built search per context token, so steady-state per-item cost is
    the item itself plus a bytes copy over the pipe.  Any submission or
    result failure marks the executor dead — the fold then resolves the
    remaining items in-process, with identical results.
    """

    def __init__(self, pool: ProcessPoolExecutor) -> None:
        self._pool = pool
        self._workers = max(2, getattr(pool, "_max_workers", 2))
        self._token: Optional[Tuple[int, int]] = None
        self._blob: Optional[bytes] = None
        self._node_budget: Optional[int] = None
        self._dead = False
        #: Failure/retry/timeout occurrences, merged into the final
        #: search stats (and from there into ``EmptinessResult.stats``).
        self.counters: Dict[str, int] = {}

    def bind(self, context_payload, node_budget: int) -> None:
        """Attach the search context and the per-item work budget."""
        if self._blob is None:
            self._token = _next_context_token()
            try:
                self._blob = pickle.dumps(
                    context_payload, protocol=pickle.HIGHEST_PROTOCOL
                )
            except (pickle.PicklingError, TypeError, AttributeError, RecursionError):
                # Unpicklable context: a deterministic payload property,
                # so the pool path can never work for this search — fail
                # fast to in-process resolution, no retries.
                _bump(self.counters, "pool_payload_errors")
                self._dead = True
        self._node_budget = node_budget

    @property
    def usable(self) -> bool:
        return not self._dead and self._blob is not None

    def mark_dead(self) -> None:
        self._dead = True

    def submit(self, item):
        """A future for *item*, or ``None`` when the pool is unusable."""
        if not self.usable:
            return None
        try:
            return self._pool.submit(
                _subtree_worker,
                self._token,
                self._blob,
                item,
                self._node_budget,
                _trace.enabled(),
            )
        except Exception as error:
            _bump(
                self.counters,
                "pool_payload_errors" if _is_payload_error(error) else "pool_submit_errors",
            )
            self._dead = True
            return None

    def retry_submit(self, item):
        """Resubmit *item* on a freshly rebuilt shared pool (retry path).

        A dead worker breaks the whole ``ProcessPoolExecutor``, so a
        retry means replacing the shared pool.  Sibling futures from the
        old pool fail on their own ``result()`` calls and take their own
        recovery (retry or fallback) paths; new workers rebuild the
        context cache from the blob on first sight.
        """
        if self._blob is None:
            return None
        try:
            discard_shared_pool()
            self._pool = shared_pool(self._workers)
            self._dead = False
            return self._pool.submit(
                _subtree_worker,
                self._token,
                self._blob,
                item,
                self._node_budget,
                _trace.enabled(),
            )
        except Exception:
            _bump(self.counters, "pool_submit_errors")
            self._dead = True
            return None


def _merge_stats(into: Dict[str, int], stats: Optional[Dict[str, int]]) -> None:
    if stats:
        for key, value in stats.items():
            into[key] = into.get(key, 0) + value


def _pooled_outcome(future, item, executor, extra_stats):
    """The pooled outcome for *item*, or ``None`` when the pool gave up.

    Failure taxonomy (each occurrence counted into *extra_stats*):

    * **timeout** (``pool_timeouts``) — the per-item deadline
      (:func:`pool_item_timeout`) passed without a result.  No retry: the
      worker behind a stuck future is still busy, and queueing another
      copy behind it would stall the fold further.  The executor is
      marked dead and the item resolves in-process.
    * **payload error** (``pool_payload_errors``) — pickling/unpickling
      failed.  Deterministic, so retrying the same bytes is pointless:
      fail fast to in-process.
    * **transient worker failure** (``pool_worker_failures``) — a dead
      worker (``BrokenProcessPool``), a severed pipe, a cancelled
      sibling of a replaced pool.  Retried up to
      :func:`pool_retry_limit` times (``pool_retries`` counts attempts)
      with exponential backoff on a rebuilt pool, then in-process.

    The recovery is scoped to this executor where possible — the shared
    pool may be carrying sibling whole-chain tasks (the hybrid fan-out),
    and those fail on their own ``result()`` calls, where the
    chain-level fallback lives.
    """
    timeout = pool_item_timeout()
    attempt = 0
    while True:
        try:
            if timeout is None:
                return future.result()
            return future.result(timeout=timeout)
        except FuturesTimeout:
            _bump(extra_stats, "pool_timeouts")
            _trace.event("pool.timeout", point="subtree", timeout_s=timeout)
            future.cancel()
            if executor is not None:
                executor.mark_dead()
            return None
        except Exception as error:
            if _is_payload_error(error):
                _bump(extra_stats, "pool_payload_errors")
                _trace.event(
                    "pool.payload_error", point="subtree", error=type(error).__name__
                )
                if executor is not None:
                    executor.mark_dead()
                return None
            _bump(extra_stats, "pool_worker_failures")
            resubmit = getattr(executor, "retry_submit", None)
            if resubmit is None or attempt >= pool_retry_limit():
                if executor is not None:
                    executor.mark_dead()
                return None
            time.sleep(_RETRY_BACKOFF_S * (2 ** attempt))
            attempt += 1
            _bump(extra_stats, "pool_retries")
            _trace.event(
                "pool.retry",
                point="subtree",
                attempt=attempt,
                error=type(error).__name__,
            )
            future = resubmit(item)
            if future is None:
                return None


def _resolve_item(search, item, future, budget, executor, extra_stats, horizon):
    """Resolve one item to ``(status, steps, count)`` relative to its node.

    ``status`` is ``"witness"`` (``steps`` = path suffix from the item's
    node, ``count`` = local exploration count at which it was found),
    ``"aborted"`` (the remaining exploration budget *horizon* was hit
    inside the subtree — the sequential search would have aborted there)
    or ``"done"`` (``count`` = the subtree's total exploration count).
    Overflowed items are re-split via :meth:`expand_item` and folded
    recursively — a deterministic decision, see the module docstring.

    In-process runs receive *horizon* as a hard cap so they stop at the
    exact crossing point; pooled workers ran with the loose global cap
    (their entry offset was unknown at dispatch), so their results are
    re-checked against the horizon here — a witness located beyond it is
    rejected by the caller, making both placements land on the same
    result.
    """
    outcome = None
    if future is not None:
        outcome = _pooled_outcome(future, item, executor, extra_stats)
        if outcome is None:
            # A failed item must not change verdicts: resolve it
            # in-process (below) and record that the pool path lost it.
            _bump(extra_stats, "pool_inprocess_fallbacks")
            _trace.event("pool.fallback", point="subtree")
    if outcome is None:
        with _trace.trace_span("emptiness.subtree", inprocess=True, budget=budget):
            outcome = search.run_subtree(item, budget, hard_limit=horizon)
    else:
        _trace.attach_children(getattr(outcome, "spans", None))
        _merge_stats(extra_stats, outcome.stats)
        extra_stats["subtree_pooled_items"] = (
            extra_stats.get("subtree_pooled_items", 0) + 1
        )
    extra_stats["subtree_items"] = extra_stats.get("subtree_items", 0) + 1
    if outcome.status == "overflow":
        extra_stats["subtree_overflows"] = (
            extra_stats.get("subtree_overflows", 0) + 1
        )
        expansion = search.expand_item(item)
        return _fold_expansion(
            search, expansion, budget, executor, extra_stats, horizon
        )
    if outcome.status == "witness":
        if outcome.explored > horizon:
            # The sequential search crosses max_paths before reaching
            # this candidate (a loose-cap worker ran past the horizon).
            return ("aborted", None, outcome.explored)
        return ("witness", outcome.steps, outcome.explored)
    if outcome.status == "aborted" or outcome.explored > horizon:
        return ("aborted", None, outcome.explored)
    return ("done", None, outcome.explored)


def _fold_expansion(search, expansion, budget, executor, extra_stats, horizon):
    """Deterministically fold one expanded node level.

    Items are submitted to the pool eagerly (they are independent) but
    consumed strictly in canonical DFS order, reconstructing the exact
    sequential interleaving of the expansion's own candidate counts
    (``record.explored_at``) with the subtree totals.  *horizon* is the
    remaining global exploration budget relative to this node: the walk
    stops at the first count that crosses it, exactly where the
    sequential search aborts — items past that point are never resolved
    (their futures are cancelled).  Returns ``(status, steps, count)``
    relative to the expansion's root node: for a witness, ``count`` is
    the exploration count at which the sequential search would have
    found it; for ``done``, the level's total count.  An inline witness
    found by the expansion itself comes after every exported record,
    exactly as in the sequential candidate loop (the loop stops at the
    accepting candidate, so all exports precede it).
    """
    futures = {}
    if executor is not None and executor.usable:
        for index, record in enumerate(expansion.records):
            future = executor.submit(record.item)
            if future is None:
                break
            futures[index] = future
    total = 0
    try:
        for index, record in enumerate(expansion.records):
            entry = record.explored_at + total
            if entry > horizon:
                # The crossing happened in the expansion's own candidate
                # increments (or an earlier subtree): the sequential
                # search aborts before entering this item.
                return ("aborted", None, entry)
            status, steps, count = _resolve_item(
                search,
                record.item,
                futures.pop(index, None),
                budget,
                executor,
                extra_stats,
                horizon - entry,
            )
            if status == "witness":
                return ("witness", record.prefix + steps, entry + count)
            if status == "aborted":
                return ("aborted", None, entry + count)
            total += count
        if expansion.witness_steps is not None:
            return ("witness", expansion.witness_steps, expansion.witness_at + total)
        return ("done", None, expansion.explored + total)
    finally:
        for future in futures.values():
            future.cancel()


def run_decomposed_search(search, *, split_budget=None, executor=None, context=None):
    """Trunk + deterministic fold execution of a decomposed witness search.

    *search* exposes the trunk/worker protocol of
    :class:`repro.automata.emptiness._WitnessSearch`
    (``run_round_exporting`` / ``expand_item`` / ``run_subtree``, plus
    ``max_length`` / ``max_paths`` / ``stats``).  Each iterative-deepening
    round expands the root in the coordinator, exporting every viable
    depth-1 child as a work item; items resolve via *executor* (when
    bound and usable) or in-process, then fold in canonical order.

    Returns ``(witness steps or None, explored, exhausted, stats)`` —
    identical regardless of where items ran.  The ``max_paths`` horizon
    is enforced by the fold exactly as the sequential search enforces it:
    the first exploration count beyond the cap aborts the search with
    ``explored == max_paths + 1``, and witnesses located beyond the
    horizon are discarded.
    """
    budget = int(split_budget) if split_budget else subtree_split_budget()
    if executor is not None and context is not None:
        executor.bind(context, budget)
    bound_executor = executor
    if executor is not None and not executor.usable:
        executor = None
    extra_stats: Dict[str, int] = {}
    max_paths = search.max_paths
    base = 0
    for depth_limit in range(1, search.max_length + 1):
        expansion = search.run_round_exporting(depth_limit)
        status, steps, count = _fold_expansion(
            search, expansion, budget, executor, extra_stats, max_paths - base
        )
        if status == "witness":
            absolute = base + count
            if absolute <= max_paths:
                return steps, absolute, False, _final_stats(search, extra_stats, bound_executor)
            # The sequential search would have aborted before reaching
            # this candidate.
            return None, max_paths + 1, False, _final_stats(search, extra_stats, bound_executor)
        if status == "aborted" or base + count > max_paths:
            return None, max_paths + 1, False, _final_stats(search, extra_stats, bound_executor)
        base += count
    return None, base, True, _final_stats(search, extra_stats, bound_executor)


def _final_stats(
    search, extra_stats: Dict[str, int], executor=None
) -> Dict[str, int]:
    stats = dict(search.stats)
    _merge_stats(stats, extra_stats)
    counters = getattr(executor, "counters", None)
    if counters:
        _merge_stats(stats, counters)
    return stats


# ----------------------------------------------------------------------
# Budgeted (anytime) execution
# ----------------------------------------------------------------------
def _fold_expansion_budgeted(
    search, expansion, budget, executor, extra_stats, horizon, clock, initial_total=0
):
    """Budgeted fold of one round: interruptible at record boundaries.

    Identical to :func:`_fold_expansion` except that the walk consults
    *clock* before each top-level record (both budget axes) and charges
    each record's resolved count, and an ambient :class:`BudgetExpired`
    raised mid-item (the wall-clock hook inside the DFS) abandons that
    item — items are pure functions of ``(item, budget)``, so the
    abandoned record simply re-runs in full on resume.

    Returns ``(status, steps, count, interrupted_state)``; *status* gains
    the value ``"interrupted"``, in which case *interrupted_state* is
    ``(remaining_records, completed_total)`` — exactly what a
    checkpoint needs to restart this round where it stopped.  On a resumed
    round, pass the checkpoint's remaining records as *expansion.records*
    and its completed total as *initial_total*: ``record.explored_at``
    offsets are absolute within the round, so the entry arithmetic (and
    therefore every abort/witness decision) lands exactly where the
    uninterrupted fold would have landed.
    """
    from repro.core.budget import BudgetExpired

    futures = {}
    records = expansion.records
    if executor is not None and executor.usable:
        for index, record in enumerate(records):
            future = executor.submit(record.item)
            if future is None:
                break
            futures[index] = future
    total = initial_total
    try:
        for index, record in enumerate(records):
            entry = record.explored_at + total
            if entry > horizon:
                return ("aborted", None, entry, None)
            if clock.expired():
                return ("interrupted", None, total, (records[index:], total))
            try:
                status, steps, count = _resolve_item(
                    search,
                    record.item,
                    futures.pop(index, None),
                    budget,
                    executor,
                    extra_stats,
                    horizon - entry,
                )
            except BudgetExpired:
                return ("interrupted", None, total, (records[index:], total))
            clock.charge(count)
            if status == "witness":
                return ("witness", record.prefix + steps, entry + count, None)
            if status == "aborted":
                return ("aborted", None, entry + count, None)
            total += count
        if expansion.witness_steps is not None:
            return (
                "witness",
                expansion.witness_steps,
                expansion.witness_at + total,
                None,
            )
        return ("done", None, expansion.explored + total, None)
    finally:
        for future in futures.values():
            future.cancel()


def run_budgeted_search(
    search, clock, *, checkpoint=None, split_budget=None, executor=None, context=None
):
    """Anytime variant of :func:`run_decomposed_search`.

    Runs the same trunk + deterministic fold, but under a started
    :class:`~repro.core.budget.BudgetClock`: the walk stops at the first
    record boundary where the budget is spent (or mid-item, when the
    wall-clock hook fires inside the DFS — that item is abandoned and
    re-run in full on resume).  Returns
    ``(steps, explored, exhausted, stats, checkpoint)`` where a non-None
    *checkpoint* (:class:`repro.automata.emptiness.ChainCheckpoint`)
    means the search was interrupted; pass it back via ``checkpoint=`` —
    on a **fresh** search object built from the same payload — to
    continue exactly where it stopped.  Resume-to-completion is
    field-identical to the uninterrupted run: completed records were
    charged at their boundaries, the interrupted record re-runs in full,
    and a round whose trunk expansion had not finished restarts from its
    beginning (trunk memoization never prunes across rounds, so the
    re-run reproduces the original counts).
    """
    from repro.automata.emptiness import ChainCheckpoint, RoundExpansion
    from repro.core.budget import BudgetExpired

    budget = int(split_budget) if split_budget else subtree_split_budget()
    if executor is not None and context is not None:
        executor.bind(context, budget)
    bound_executor = executor
    if executor is not None and not executor.usable:
        executor = None
    extra_stats: Dict[str, int] = {}
    max_paths = search.max_paths
    base = checkpoint.base_explored if checkpoint is not None else 0
    start_depth = checkpoint.depth_limit if checkpoint is not None else 1

    def _interrupted(depth_limit, pending, total, expansion):
        return (
            None,
            base + total,
            False,
            _final_stats(search, extra_stats, bound_executor),
            ChainCheckpoint(
                depth_limit=depth_limit,
                pending=None if pending is None else tuple(pending),
                round_total=total,
                round_witness_steps=(
                    None if expansion is None else expansion.witness_steps
                ),
                round_witness_at=0 if expansion is None else expansion.witness_at,
                round_explored=0 if expansion is None else expansion.explored,
                base_explored=base,
            ),
        )

    search.interrupt = clock.interrupt_check
    try:
        for depth_limit in range(start_depth, search.max_length + 1):
            expansion = None
            initial_total = 0
            if (
                checkpoint is not None
                and depth_limit == checkpoint.depth_limit
                and checkpoint.pending is not None
            ):
                expansion = RoundExpansion(
                    records=checkpoint.pending,
                    witness_steps=checkpoint.round_witness_steps,
                    witness_at=checkpoint.round_witness_at,
                    explored=checkpoint.round_explored,
                )
                initial_total = checkpoint.round_total
            checkpoint = None
            if expansion is None:
                # ``pending=None`` marks a round whose trunk expansion has
                # not completed; resume re-expands it from the beginning.
                if clock.expired():
                    return _interrupted(depth_limit, None, 0, None)
                try:
                    expansion = search.run_round_exporting(depth_limit)
                except BudgetExpired:
                    return _interrupted(depth_limit, None, 0, None)
            status, steps, count, interrupted = _fold_expansion_budgeted(
                search,
                expansion,
                budget,
                executor,
                extra_stats,
                max_paths - base,
                clock,
                initial_total,
            )
            if status == "interrupted":
                pending, total = interrupted
                return _interrupted(depth_limit, pending, total, expansion)
            if status == "witness":
                absolute = base + count
                if absolute <= max_paths:
                    return (
                        steps,
                        absolute,
                        False,
                        _final_stats(search, extra_stats, bound_executor),
                        None,
                    )
                return (
                    None,
                    max_paths + 1,
                    False,
                    _final_stats(search, extra_stats, bound_executor),
                    None,
                )
            if status == "aborted" or base + count > max_paths:
                return (
                    None,
                    max_paths + 1,
                    False,
                    _final_stats(search, extra_stats, bound_executor),
                    None,
                )
            clock.charge(expansion.explored)
            base += count
        return (
            None,
            base,
            True,
            _final_stats(search, extra_stats, bound_executor),
            None,
        )
    finally:
        search.interrupt = None
