"""Shared-queue subtree execution for the emptiness witness search.

The Lemma 4.9 chain decomposition (:mod:`repro.store.parallel`) gives
whole-chain parallelism, which loses when one hard chain dominates: the
pool drains to a single busy worker while the stragglers' subtrees sit
inside it, unreachable.  This module parallelises *inside* a chain.
Snapshots are picklable by construction, so a DFS frontier node ships as
a self-contained :class:`~repro.automata.emptiness.SubtreeItem`
``(states, snapshot, known, budget)``; workers pull items from the
shared pool queue, run each to completion — or hand it back for
**re-splitting** when it exceeds the per-item work budget — and the
coordinator folds the outcomes deterministically.

Guarantees:

* **Deterministic results.**  :func:`run_decomposed_search` returns the
  same ``(witness, explored, exhausted)`` whether items run in worker
  processes, in-process (no pool), or any mix (individual worker
  failures fall back to in-process resolution).  The fold consumes
  outcomes in canonical DFS order — the first witness in that order
  wins — and reconstructs the sequential interleaving of exploration
  counts exactly, including the ``max_paths`` abort point: a witness a
  worker found beyond the budget horizon the sequential search would
  have aborted at is discarded, not reported.
* **Re-splitting is deterministic too.**  A worker abandons an item once
  its local explored-node count exceeds the *split budget*; whether that
  happens is a pure function of ``(item, budget)``, never of
  scheduling.  The coordinator then expands the overflowed node one
  level (counting that node's own candidates itself) and enqueues the
  children — adaptive granularity without nondeterminism, at the cost of
  discarding the overflowed attempt (at most one budget's worth of
  work).
* **Warm shared pool.**  One persistent process pool (shared with the
  chain-level fan-out) is reused across ``automaton_emptiness`` calls;
  each worker caches the unpickled search context per coordinator token,
  so after the first item of a context only the item itself is rebuilt
  per task.

Early cancellation: once the fold settles on a witness, not-yet-started
items are cancelled (running ones finish in the background and are
discarded), mirroring the chain-level early exit.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Tuple

#: Default explored-nodes budget a worker spends on one subtree item
#: before handing it back for re-splitting.  Override per call via
#: ``automaton_emptiness(split_budget=...)`` or globally via the
#: ``REPRO_SUBTREE_SPLIT_BUDGET`` environment variable.
DEFAULT_SPLIT_BUDGET = 20_000

#: Environment override for :data:`DEFAULT_SPLIT_BUDGET`.
SPLIT_BUDGET_ENV = "REPRO_SUBTREE_SPLIT_BUDGET"


def subtree_split_budget() -> int:
    """The configured per-item work budget (env override or default)."""
    raw = os.environ.get(SPLIT_BUDGET_ENV, "").strip()
    if raw:
        try:
            value = int(raw)
            if value > 0:
                return value
        except ValueError:
            pass
    return DEFAULT_SPLIT_BUDGET


# ----------------------------------------------------------------------
# The shared persistent pool
# ----------------------------------------------------------------------
# A lazily created, reused pool: spawning workers costs hundreds of
# milliseconds (fork of a large parent, interpreter warm-up), which would
# otherwise be paid by every emptiness call.  The pool is replaced when a
# caller needs more workers than it has, and discarded on any failure
# (the next call recreates it).  Both the chain-level fan-out
# (:mod:`repro.store.parallel`) and the subtree executor draw from it,
# so chain tasks and subtree items interleave in one queue — which is
# exactly how a dominant chain's subtrees fill workers that drained
# their own chains.
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0


def shared_pool(workers: int) -> ProcessPoolExecutor:
    """The shared pool, grown to at least *workers* workers."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS >= workers:
        return _POOL
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    _POOL = ProcessPoolExecutor(max_workers=workers, mp_context=context)
    _POOL_WORKERS = workers
    return _POOL


def discard_shared_pool() -> None:
    """Tear the shared pool down (the next call recreates it)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        try:
            _POOL.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
    _POOL = None
    _POOL_WORKERS = 0


# ----------------------------------------------------------------------
# Worker side: per-process context cache
# ----------------------------------------------------------------------
#: Worker-process cache of unpickled search contexts, keyed by the
#: coordinator's context token.  Bounded: coordinators churn through
#: contexts (one per chain restriction), workers must not accumulate
#: them forever.
_CONTEXT_CACHE: Dict[Tuple[int, int], object] = {}
_CONTEXT_ORDER: List[Tuple[int, int]] = []
_CONTEXT_CACHE_LIMIT = 4

_TOKEN_COUNTER = 0


def _next_context_token() -> Tuple[int, int]:
    """A token unique per (coordinator process, executor instance)."""
    global _TOKEN_COUNTER
    _TOKEN_COUNTER += 1
    return (os.getpid(), _TOKEN_COUNTER)


def _cached_search(token: Tuple[int, int], blob: bytes):
    search = _CONTEXT_CACHE.get(token)
    if search is None:
        from repro.automata.emptiness import search_from_payload

        search = search_from_payload(pickle.loads(blob))
        _CONTEXT_CACHE[token] = search
        _CONTEXT_ORDER.append(token)
        while len(_CONTEXT_ORDER) > _CONTEXT_CACHE_LIMIT:
            evicted = _CONTEXT_ORDER.pop(0)
            _CONTEXT_CACHE.pop(evicted, None)
    return search


def _subtree_worker(token: Tuple[int, int], blob: bytes, item, node_budget: int):
    """Top-level worker entry point (must be picklable by name)."""
    import dataclasses

    search = _cached_search(token, blob)
    before = dict(search.stats)
    outcome = search.run_subtree(item, node_budget)
    delta = {
        key: value - before.get(key, 0)
        for key, value in search.stats.items()
        if value != before.get(key, 0)
    }
    return dataclasses.replace(outcome, stats=delta or None)


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
class SubtreeExecutor:
    """Submits one search context's subtree items to the shared pool.

    The context payload is pickled **once** (:meth:`bind`) and its bytes
    shipped with every item; workers unpickle it on first sight and cache
    the built search per context token, so steady-state per-item cost is
    the item itself plus a bytes copy over the pipe.  Any submission or
    result failure marks the executor dead — the fold then resolves the
    remaining items in-process, with identical results.
    """

    def __init__(self, pool: ProcessPoolExecutor) -> None:
        self._pool = pool
        self._token: Optional[Tuple[int, int]] = None
        self._blob: Optional[bytes] = None
        self._node_budget: Optional[int] = None
        self._dead = False

    def bind(self, context_payload, node_budget: int) -> None:
        """Attach the search context and the per-item work budget."""
        if self._blob is None:
            self._token = _next_context_token()
            try:
                self._blob = pickle.dumps(
                    context_payload, protocol=pickle.HIGHEST_PROTOCOL
                )
            except Exception:
                self._dead = True
        self._node_budget = node_budget

    @property
    def usable(self) -> bool:
        return not self._dead and self._blob is not None

    def mark_dead(self) -> None:
        self._dead = True

    def submit(self, item):
        """A future for *item*, or ``None`` when the pool is unusable."""
        if not self.usable:
            return None
        try:
            return self._pool.submit(
                _subtree_worker, self._token, self._blob, item, self._node_budget
            )
        except Exception:
            self._dead = True
            return None


def _merge_stats(into: Dict[str, int], stats: Optional[Dict[str, int]]) -> None:
    if stats:
        for key, value in stats.items():
            into[key] = into.get(key, 0) + value


def _resolve_item(search, item, future, budget, executor, extra_stats, horizon):
    """Resolve one item to ``(status, steps, count)`` relative to its node.

    ``status`` is ``"witness"`` (``steps`` = path suffix from the item's
    node, ``count`` = local exploration count at which it was found),
    ``"aborted"`` (the remaining exploration budget *horizon* was hit
    inside the subtree — the sequential search would have aborted there)
    or ``"done"`` (``count`` = the subtree's total exploration count).
    Overflowed items are re-split via :meth:`expand_item` and folded
    recursively — a deterministic decision, see the module docstring.

    In-process runs receive *horizon* as a hard cap so they stop at the
    exact crossing point; pooled workers ran with the loose global cap
    (their entry offset was unknown at dispatch), so their results are
    re-checked against the horizon here — a witness located beyond it is
    rejected by the caller, making both placements land on the same
    result.
    """
    outcome = None
    if future is not None:
        try:
            outcome = future.result()
        except Exception:
            # A failed item must not change verdicts: resolve it
            # in-process and stop submitting new items.  The recovery is
            # scoped to this executor — the shared pool may be carrying
            # sibling whole-chain tasks (the hybrid fan-out), and
            # tearing it down here would cancel their completed-or-
            # running work for what might be a single bad item.  A
            # genuinely broken pool makes those siblings fail on their
            # own ``result()`` calls, where the chain-level fallback
            # (and pool teardown) lives.
            if executor is not None:
                executor.mark_dead()
            outcome = None
    if outcome is None:
        outcome = search.run_subtree(item, budget, hard_limit=horizon)
    else:
        _merge_stats(extra_stats, outcome.stats)
        extra_stats["subtree_pooled_items"] = (
            extra_stats.get("subtree_pooled_items", 0) + 1
        )
    extra_stats["subtree_items"] = extra_stats.get("subtree_items", 0) + 1
    if outcome.status == "overflow":
        extra_stats["subtree_overflows"] = (
            extra_stats.get("subtree_overflows", 0) + 1
        )
        expansion = search.expand_item(item)
        return _fold_expansion(
            search, expansion, budget, executor, extra_stats, horizon
        )
    if outcome.status == "witness":
        if outcome.explored > horizon:
            # The sequential search crosses max_paths before reaching
            # this candidate (a loose-cap worker ran past the horizon).
            return ("aborted", None, outcome.explored)
        return ("witness", outcome.steps, outcome.explored)
    if outcome.status == "aborted" or outcome.explored > horizon:
        return ("aborted", None, outcome.explored)
    return ("done", None, outcome.explored)


def _fold_expansion(search, expansion, budget, executor, extra_stats, horizon):
    """Deterministically fold one expanded node level.

    Items are submitted to the pool eagerly (they are independent) but
    consumed strictly in canonical DFS order, reconstructing the exact
    sequential interleaving of the expansion's own candidate counts
    (``record.explored_at``) with the subtree totals.  *horizon* is the
    remaining global exploration budget relative to this node: the walk
    stops at the first count that crosses it, exactly where the
    sequential search aborts — items past that point are never resolved
    (their futures are cancelled).  Returns ``(status, steps, count)``
    relative to the expansion's root node: for a witness, ``count`` is
    the exploration count at which the sequential search would have
    found it; for ``done``, the level's total count.  An inline witness
    found by the expansion itself comes after every exported record,
    exactly as in the sequential candidate loop (the loop stops at the
    accepting candidate, so all exports precede it).
    """
    futures = {}
    if executor is not None and executor.usable:
        for index, record in enumerate(expansion.records):
            future = executor.submit(record.item)
            if future is None:
                break
            futures[index] = future
    total = 0
    try:
        for index, record in enumerate(expansion.records):
            entry = record.explored_at + total
            if entry > horizon:
                # The crossing happened in the expansion's own candidate
                # increments (or an earlier subtree): the sequential
                # search aborts before entering this item.
                return ("aborted", None, entry)
            status, steps, count = _resolve_item(
                search,
                record.item,
                futures.pop(index, None),
                budget,
                executor,
                extra_stats,
                horizon - entry,
            )
            if status == "witness":
                return ("witness", record.prefix + steps, entry + count)
            if status == "aborted":
                return ("aborted", None, entry + count)
            total += count
        if expansion.witness_steps is not None:
            return ("witness", expansion.witness_steps, expansion.witness_at + total)
        return ("done", None, expansion.explored + total)
    finally:
        for future in futures.values():
            future.cancel()


def run_decomposed_search(search, *, split_budget=None, executor=None, context=None):
    """Trunk + deterministic fold execution of a decomposed witness search.

    *search* exposes the trunk/worker protocol of
    :class:`repro.automata.emptiness._WitnessSearch`
    (``run_round_exporting`` / ``expand_item`` / ``run_subtree``, plus
    ``max_length`` / ``max_paths`` / ``stats``).  Each iterative-deepening
    round expands the root in the coordinator, exporting every viable
    depth-1 child as a work item; items resolve via *executor* (when
    bound and usable) or in-process, then fold in canonical order.

    Returns ``(witness steps or None, explored, exhausted, stats)`` —
    identical regardless of where items ran.  The ``max_paths`` horizon
    is enforced by the fold exactly as the sequential search enforces it:
    the first exploration count beyond the cap aborts the search with
    ``explored == max_paths + 1``, and witnesses located beyond the
    horizon are discarded.
    """
    budget = int(split_budget) if split_budget else subtree_split_budget()
    if executor is not None and context is not None:
        executor.bind(context, budget)
    if executor is not None and not executor.usable:
        executor = None
    extra_stats: Dict[str, int] = {}
    max_paths = search.max_paths
    base = 0
    for depth_limit in range(1, search.max_length + 1):
        expansion = search.run_round_exporting(depth_limit)
        status, steps, count = _fold_expansion(
            search, expansion, budget, executor, extra_stats, max_paths - base
        )
        if status == "witness":
            absolute = base + count
            if absolute <= max_paths:
                return steps, absolute, False, _final_stats(search, extra_stats)
            # The sequential search would have aborted before reaching
            # this candidate.
            return None, max_paths + 1, False, _final_stats(search, extra_stats)
        if status == "aborted" or base + count > max_paths:
            return None, max_paths + 1, False, _final_stats(search, extra_stats)
        base += count
    return None, base, True, _final_stats(search, extra_stats)


def _final_stats(search, extra_stats: Dict[str, int]) -> Dict[str, int]:
    stats = dict(search.stats)
    _merge_stats(stats, extra_stats)
    return stats
