"""Workloads: the paper's running example and synthetic benchmark generators."""

from repro.workloads.directory import (
    directory_schema,
    directory_access_schema,
    directory_hidden_instance,
    directory_vocabulary,
    jones_address_query,
    smith_phone_query,
)
from repro.workloads.generators import WorkloadGenerator
from repro.workloads.matrices import (
    instance_prefixes,
    probe_accesses,
    query_workload,
)
from repro.workloads.scenarios import Scenario, standard_scenarios

__all__ = [
    "instance_prefixes",
    "probe_accesses",
    "query_workload",
    "directory_schema",
    "directory_access_schema",
    "directory_hidden_instance",
    "directory_vocabulary",
    "jones_address_query",
    "smith_phone_query",
    "WorkloadGenerator",
    "Scenario",
    "standard_scenarios",
]
