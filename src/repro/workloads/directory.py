"""The web telephone-directory example of the paper's introduction.

Relations (Section 1):

* ``Mobile#(name, postcode, street, phoneno)`` with access method ``AcM1``
  whose sole input position is the customer name;
* ``Address(street, postcode, name, houseno)`` with access method ``AcM2``
  whose inputs are the street name and postcode.

The module also provides the queries discussed in the introduction (the
unanswerable "address of Jones" query and an answerable variant), a small
hidden instance used to draw Figure 1's tree of possible paths, and the
corresponding access vocabulary.
"""

from __future__ import annotations

from typing import Optional

from repro.access.methods import AccessSchema
from repro.core.vocabulary import AccessVocabulary
from repro.queries.cq import ConjunctiveQuery
from repro.queries.parser import parse_cq
from repro.relational.instance import Instance
from repro.relational.schema import Relation, Schema
from repro.relational.types import STRING, INT, DataType

MOBILE = "Mobile"
ADDRESS = "Address"


def directory_schema() -> Schema:
    """The two-relation directory schema."""
    return Schema(
        [
            Relation(MOBILE, 4, (STRING, STRING, STRING, INT)),
            Relation(ADDRESS, 4, (STRING, STRING, STRING, INT)),
        ]
    )


def directory_access_schema(
    mobile_exact: bool = False, address_exact: bool = False
) -> AccessSchema:
    """The directory schema with the paper's two access methods.

    ``AcM1`` binds the name position of ``Mobile``; ``AcM2`` binds the
    street and postcode positions of ``Address``.  The exactness flags
    model "canonical" sources (e.g. a trusted government form).
    """
    access_schema = AccessSchema(directory_schema())
    access_schema.add("AcM1", MOBILE, (0,), exact=mobile_exact)
    access_schema.add("AcM2", ADDRESS, (0, 1), exact=address_exact)
    return access_schema


def directory_vocabulary(
    mobile_exact: bool = False, address_exact: bool = False
) -> AccessVocabulary:
    """The access vocabulary of the directory schema."""
    return AccessVocabulary.of(
        directory_access_schema(mobile_exact=mobile_exact, address_exact=address_exact)
    )


def directory_hidden_instance(size: str = "small") -> Instance:
    """A hidden directory instance.

    ``size`` is ``"small"`` (the handful of tuples behind Figure 1),
    ``"medium"`` or ``"large"`` (grown deterministically for benchmarks).
    """
    instance = Instance(directory_schema())
    base_mobile = [
        ("Smith", "OX13QD", "Parks Rd", 5551212),
        ("Jones", "OX26NN", "Banbury Rd", 5553434),
        ("Patel", "OX13QD", "Parks Rd", 5559876),
    ]
    base_address = [
        ("Parks Rd", "OX13QD", "Smith", 13),
        ("Parks Rd", "OX13QD", "Jones", 16),
        ("Banbury Rd", "OX26NN", "Jones", 101),
        ("Banbury Rd", "OX26NN", "Novak", 99),
        # A street no mobile customer lives on: unreachable through the
        # access methods unless its street/postcode are known up front, so
        # the Jones query of the introduction is not fully answerable.
        ("Hidden Lane", "OX99ZZ", "Jones", 7),
    ]
    instance.add_all(MOBILE, base_mobile)
    instance.add_all(ADDRESS, base_address)
    if size == "small":
        return instance
    scale = {"medium": 10, "large": 40}.get(size)
    if scale is None:
        raise ValueError(f"unknown size {size!r}")
    for index in range(scale):
        name = f"Person{index}"
        street = f"Street{index % 7}"
        postcode = f"OX{index % 5}AA"
        instance.add(MOBILE, (name, postcode, street, 5000000 + index))
        instance.add(ADDRESS, (street, postcode, name, index))
        if index % 3 == 0:
            instance.add(ADDRESS, (street, postcode, f"Resident{index}", 200 + index))
    return instance


def jones_address_query() -> ConjunctiveQuery:
    """``Address(X, Y, "Jones", Z)`` — not answerable under the access methods."""
    return parse_cq('Q(x, y, z) :- Address(x, y, "Jones", z)')


def smith_phone_query() -> ConjunctiveQuery:
    """The phone number of Smith — answerable, since AcM1 binds the name."""
    return parse_cq('Q(p) :- Mobile("Smith", pc, s, p)')


def join_query() -> ConjunctiveQuery:
    """Names whose mobile street/postcode also appears in the Address table."""
    return parse_cq("Q(n) :- Mobile(n, pc, s, p), Address(s, pc, n2, h)")


def resident_names_query() -> ConjunctiveQuery:
    """All resident names listed in the Address table."""
    return parse_cq("Q(n) :- Address(s, pc, n, h)")
