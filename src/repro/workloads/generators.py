"""Seeded random workload generation for tests and benchmarks.

The generator produces schemas with access methods, hidden instances,
conjunctive queries over them, access paths, and constraint sets.  All
generation is driven by a single :class:`random.Random` instance seeded at
construction, so every benchmark row is reproducible from its printed seed
and parameters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.access.methods import Access, AccessMethod, AccessSchema
from repro.access.path import AccessPath, PathStep
from repro.datalog.program import DatalogProgram, Rule
from repro.queries.atoms import Atom, Equality, Inequality
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Constant, Variable
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational.dependencies import (
    DisjointnessConstraint,
    FunctionalDependency,
    InclusionDependency,
)
from repro.relational.instance import Instance
from repro.relational.schema import Relation, Schema


@dataclass
class WorkloadGenerator:
    """A reproducible generator of schemas, instances, queries and paths."""

    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------
    # Schemas and access methods
    # ------------------------------------------------------------------
    def schema(
        self,
        num_relations: int = 3,
        min_arity: int = 2,
        max_arity: int = 4,
    ) -> Schema:
        """A random schema with the given number of relations."""
        relations = []
        for index in range(num_relations):
            arity = self._rng.randint(min_arity, max_arity)
            relations.append(Relation(f"R{index}", arity))
        return Schema(relations)

    def access_schema(
        self,
        schema: Optional[Schema] = None,
        methods_per_relation: int = 1,
        max_inputs: int = 2,
        input_free_probability: float = 0.2,
        **schema_kwargs,
    ) -> AccessSchema:
        """A random access schema: every relation gets at least one method."""
        if schema is None:
            schema = self.schema(**schema_kwargs)
        access_schema = AccessSchema(schema)
        counter = 0
        for relation in schema:
            for _ in range(methods_per_relation):
                if self._rng.random() < input_free_probability:
                    inputs: Tuple[int, ...] = ()
                else:
                    count = self._rng.randint(1, min(max_inputs, relation.arity))
                    inputs = tuple(
                        sorted(self._rng.sample(range(relation.arity), count))
                    )
                access_schema.add(f"M{counter}", relation.name, inputs)
                counter += 1
        return access_schema

    # ------------------------------------------------------------------
    # Instances
    # ------------------------------------------------------------------
    def instance(
        self,
        schema: Schema,
        tuples_per_relation: int = 5,
        domain_size: int = 8,
    ) -> Instance:
        """A random instance over *schema* with values ``v0 .. v{domain_size-1}``."""
        instance = Instance(schema)
        values = [f"v{i}" for i in range(domain_size)]
        for relation in schema:
            for _ in range(tuples_per_relation):
                instance.add(
                    relation.name,
                    tuple(self._rng.choice(values) for _ in range(relation.arity)),
                )
        return instance

    def chain_instance(
        self, schema: Schema, relation: str, length: int
    ) -> Instance:
        """A simple path ``c0 -> c1 -> ... -> c{length}`` in binary *relation*.

        The deep-recursion Datalog workload: transitive closure over this
        chain needs ``length - 1`` semi-naive rounds and derives a
        quadratic number of facts, which is exactly the shape where
        re-joining the whole instance every round dominates.
        """
        if schema.arity(relation) != 2:
            raise ValueError(f"chain_instance needs a binary relation, got {relation!r}")
        instance = Instance(schema)
        for index in range(length):
            instance.add(relation, (f"c{index}", f"c{index + 1}"))
        return instance

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def conjunctive_query(
        self,
        schema: Schema,
        num_atoms: int = 3,
        num_variables: int = 4,
        num_head_variables: int = 1,
        constant_probability: float = 0.1,
        domain: Sequence[object] = ("v0", "v1", "v2"),
    ) -> ConjunctiveQuery:
        """A random connected-ish conjunctive query over *schema*."""
        relations = list(schema)
        variables = [Variable(f"x{i}") for i in range(num_variables)]
        atoms: List[Atom] = []
        for _ in range(num_atoms):
            relation = self._rng.choice(relations)
            terms = []
            for _ in range(relation.arity):
                if self._rng.random() < constant_probability:
                    terms.append(Constant(self._rng.choice(list(domain))))
                else:
                    terms.append(self._rng.choice(variables))
            atoms.append(Atom(relation.name, tuple(terms)))
        used = set()
        for atom in atoms:
            used |= atom.variables()
        head_candidates = sorted(used, key=lambda v: v.name)
        head = tuple(head_candidates[: min(num_head_variables, len(head_candidates))])
        return ConjunctiveQuery(atoms=tuple(atoms), head=head)

    def ucq(
        self,
        schema: Schema,
        num_disjuncts: int = 2,
        **cq_kwargs,
    ) -> UnionOfConjunctiveQueries:
        """A random UCQ whose disjuncts share a head arity."""
        head_arity = cq_kwargs.pop("num_head_variables", 1)
        disjuncts = []
        while len(disjuncts) < num_disjuncts:
            candidate = self.conjunctive_query(
                schema, num_head_variables=head_arity, **cq_kwargs
            )
            if len(candidate.head) == head_arity or head_arity == 0:
                if head_arity == 0:
                    candidate = candidate.boolean_version()
                disjuncts.append(candidate)
        return UnionOfConjunctiveQueries(tuple(disjuncts))

    # ------------------------------------------------------------------
    # Datalog programs
    # ------------------------------------------------------------------
    def datalog_program(
        self,
        schema: Schema,
        num_idb: int = 2,
        rules_per_idb: int = 2,
        max_body_atoms: int = 3,
        idb_body_probability: float = 0.5,
        constant_probability: float = 0.1,
        comparison_probability: float = 0.25,
        domain: Sequence[object] = ("v0", "v1", "v2"),
    ) -> DatalogProgram:
        """A random (possibly recursive) Datalog program over EDB *schema*.

        IDB predicates ``P0 .. P{num_idb-1}`` get random small arities;
        rule bodies mix EDB and IDB atoms (so recursion arises naturally),
        sprinkle constants, and occasionally carry an equality or
        inequality between body variables.  Head variables are always
        drawn from the body, so every generated rule is safe, and heads
        never invent values, so every fixedpoint is finite.  The goal is
        ``P0``.  Used by the semi-naive/naive agreement property tests.
        """
        idb_relations = [
            Relation(f"P{index}", self._rng.randint(1, 2))
            for index in range(num_idb)
        ]
        edb_relations = list(schema)
        variables = [Variable(f"x{i}") for i in range(6)]
        values = list(domain)
        rules: List[Rule] = []
        for head_relation in idb_relations:
            for _ in range(rules_per_idb):
                body: List[Atom] = []
                for _ in range(self._rng.randint(1, max_body_atoms)):
                    if self._rng.random() < idb_body_probability:
                        relation = self._rng.choice(idb_relations)
                    else:
                        relation = self._rng.choice(edb_relations)
                    terms = tuple(
                        Constant(self._rng.choice(values))
                        if self._rng.random() < constant_probability
                        else self._rng.choice(variables)
                        for _ in range(relation.arity)
                    )
                    body.append(Atom(relation.name, terms))
                body_variables = sorted(
                    {v for atom in body for v in atom.variables()},
                    key=lambda v: v.name,
                )
                head_terms = tuple(
                    self._rng.choice(body_variables)
                    if body_variables
                    else Constant(self._rng.choice(values))
                    for _ in range(head_relation.arity)
                )
                equalities: List[Equality] = []
                inequalities: List[Inequality] = []
                if (
                    len(body_variables) >= 2
                    and self._rng.random() < comparison_probability
                ):
                    left, right = self._rng.sample(body_variables, 2)
                    if self._rng.random() < 0.5:
                        equalities.append(Equality(left, right))
                    else:
                        inequalities.append(Inequality(left, right))
                rules.append(
                    Rule(
                        head=Atom(head_relation.name, head_terms),
                        body=tuple(body),
                        equalities=tuple(equalities),
                        inequalities=tuple(inequalities),
                    )
                )
        return DatalogProgram(
            rules=rules, edb_schema=schema, goal=idb_relations[0].name
        )

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def access_path(
        self,
        access_schema: AccessSchema,
        hidden_instance: Instance,
        length: int = 4,
        grounded: bool = False,
        initial_values: Sequence[object] = (),
    ) -> AccessPath:
        """A random access path against a hidden instance (exact responses)."""
        steps: List[PathStep] = []
        known: List[object] = list(initial_values) or ["v0"]
        for _ in range(length):
            method = self._rng.choice(list(access_schema))
            if grounded:
                pool = list(known)
            else:
                pool = list(hidden_instance.active_domain()) or ["v0"]
            binding = tuple(self._rng.choice(pool) for _ in range(method.num_inputs))
            access = Access(method, binding)
            matching = [
                tup
                for tup in hidden_instance.tuples(method.relation)
                if access.matches(tup)
            ]
            response = frozenset(matching)
            steps.append(PathStep(access, response))
            for tup in response:
                known.extend(tup)
            known.extend(binding)
        return AccessPath(tuple(steps))

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------
    def functional_dependency(self, schema: Schema) -> FunctionalDependency:
        """A random FD over a random relation of *schema*."""
        relation = self._rng.choice(list(schema))
        positions = list(range(relation.arity))
        lhs_size = self._rng.randint(1, max(1, relation.arity - 1))
        lhs = tuple(sorted(self._rng.sample(positions, lhs_size)))
        remaining = [p for p in positions if p not in lhs] or positions
        rhs = self._rng.choice(remaining)
        return FunctionalDependency(relation.name, lhs, rhs)

    def inclusion_dependency(self, schema: Schema) -> InclusionDependency:
        """A random unary inclusion dependency between two relations."""
        relations = list(schema)
        source = self._rng.choice(relations)
        target = self._rng.choice(relations)
        return InclusionDependency(
            source.name,
            (self._rng.randrange(source.arity),),
            target.name,
            (self._rng.randrange(target.arity),),
        )

    def disjointness_constraint(self, schema: Schema) -> DisjointnessConstraint:
        """A random disjointness constraint between two relation columns."""
        relations = list(schema)
        first = self._rng.choice(relations)
        second = self._rng.choice(relations)
        return DisjointnessConstraint(
            first.name,
            self._rng.randrange(first.arity),
            second.name,
            self._rng.randrange(second.arity),
        )
