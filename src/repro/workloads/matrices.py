"""Matrix-style decision workloads for the batched reduction engine.

The batch entry points of :class:`repro.engine.DecisionEngine`
(``relevance_matrix`` / ``containment_matrix`` / ``answerability_sweep``)
amortise pool startup, the plan cache and the cross-request memo across a
whole workload of decisions.  This module builds the workloads themselves:

* :func:`probe_accesses` — the relevance matrix's candidate list: every
  access method applied to the projection of every observed tuple.  This
  is the query-processor loop from the paper's introduction (inspect each
  candidate access, skip the irrelevant ones), and it is naturally
  duplicate-heavy — distinct tuples frequently project to the same
  binding — which is exactly what the engine's fingerprint dedup exploits;
* :func:`query_workload` — a containment matrix's query set, optionally
  with re-submitted (structurally equal, differently named) duplicates,
  modelling the same query arriving from many clients;
* :func:`instance_prefixes` — an answerability sweep's growing hidden
  instances (how much of the database must be revealed before a query
  becomes exactly answerable).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.access.methods import Access, AccessSchema
from repro.queries.cq import ConjunctiveQuery
from repro.relational.instance import Instance


def probe_accesses(
    access_schema: AccessSchema,
    observed: Instance,
    limit: Optional[int] = None,
) -> List[Access]:
    """Candidate accesses projected from observed tuples, in canonical order.

    For every access method (schema registration order) and every tuple of
    its relation in *observed* (repr-sorted), the access binding the
    method's input positions to the tuple's values.  Duplicates are kept
    deliberately: they model repeated probe requests, and deduplicating
    them is the engine's job (the seq-vs-batched benchmark measures
    exactly that).
    """
    accesses: List[Access] = []
    for method in access_schema:
        for tup in sorted(observed.tuples_view(method.relation), key=repr):
            if limit is not None and len(accesses) >= limit:
                return accesses
            accesses.append(
                Access(method, tuple(tup[i] for i in method.input_positions))
            )
    return accesses


def query_workload(
    queries: Sequence[ConjunctiveQuery],
    resubmissions: int = 1,
) -> List[ConjunctiveQuery]:
    """A query set with *resubmissions* structurally-equal copies of each.

    The copies carry distinct cosmetic names, so only a canonical
    (name-insensitive) fingerprint — not object identity — deduplicates
    them, which is what the engine's ``query_key`` provides.
    """
    workload: List[ConjunctiveQuery] = []
    for round_index in range(resubmissions):
        for index, query in enumerate(queries):
            if round_index == 0:
                workload.append(query)
            else:
                workload.append(
                    ConjunctiveQuery(
                        atoms=query.atoms,
                        head=query.head,
                        equalities=query.equalities,
                        inequalities=query.inequalities,
                        name=f"resubmit{round_index}_{index}",
                    )
                )
    return workload


def instance_prefixes(hidden: Instance, steps: int = 4) -> List[Instance]:
    """Growing prefixes of *hidden* (canonical fact order), ending at full size.

    The sweep shape of an answerability analysis: how much of the hidden
    database must exist before the maximal answers coincide with the true
    answers.  Always includes the full instance as the last element.
    """
    facts = list(hidden.facts())
    if steps < 1:
        raise ValueError("instance_prefixes needs at least one step")
    prefixes: List[Instance] = []
    for step in range(1, steps + 1):
        cutoff = (len(facts) * step) // steps
        prefix = Instance(hidden.schema)
        for name, tup in facts[:cutoff]:
            prefix.add_unchecked(name, tup)
        prefixes.append(prefix)
    return prefixes
