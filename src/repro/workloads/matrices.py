"""Matrix-style decision workloads for the batched reduction engine.

The batch entry points of :class:`repro.engine.DecisionEngine`
(``relevance_matrix`` / ``containment_matrix`` / ``answerability_sweep``)
amortise pool startup, the plan cache and the cross-request memo across a
whole workload of decisions.  This module builds the workloads themselves:

* :func:`probe_accesses` — the relevance matrix's candidate list: every
  access method applied to the projection of every observed tuple.  This
  is the query-processor loop from the paper's introduction (inspect each
  candidate access, skip the irrelevant ones), and it is naturally
  duplicate-heavy — distinct tuples frequently project to the same
  binding — which is exactly what the engine's fingerprint dedup exploits;
* :func:`query_workload` — a containment matrix's query set, optionally
  with re-submitted (structurally equal, differently named) duplicates,
  modelling the same query arriving from many clients;
* :func:`instance_prefixes` — an answerability sweep's growing hidden
  instances (how much of the database must be revealed before a query
  becomes exactly answerable);
* :func:`stream_relevance_matrix` — the relevance matrix consumed through
  the engine's streaming interface, measuring first-verdict latency
  alongside total batch time (the anytime serving shape: cached verdicts
  arrive before any solver runs, and a batch
  :class:`~repro.core.budget.Budget` bounds the whole sweep).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.access.methods import Access, AccessSchema
from repro.queries.cq import ConjunctiveQuery
from repro.relational.instance import Instance


def probe_accesses(
    access_schema: AccessSchema,
    observed: Instance,
    limit: Optional[int] = None,
) -> List[Access]:
    """Candidate accesses projected from observed tuples, in canonical order.

    For every access method (schema registration order) and every tuple of
    its relation in *observed* (repr-sorted), the access binding the
    method's input positions to the tuple's values.  Duplicates are kept
    deliberately: they model repeated probe requests, and deduplicating
    them is the engine's job (the seq-vs-batched benchmark measures
    exactly that).
    """
    accesses: List[Access] = []
    for method in access_schema:
        for tup in sorted(observed.tuples_view(method.relation), key=repr):
            if limit is not None and len(accesses) >= limit:
                return accesses
            accesses.append(
                Access(method, tuple(tup[i] for i in method.input_positions))
            )
    return accesses


def query_workload(
    queries: Sequence[ConjunctiveQuery],
    resubmissions: int = 1,
) -> List[ConjunctiveQuery]:
    """A query set with *resubmissions* structurally-equal copies of each.

    The copies carry distinct cosmetic names, so only a canonical
    (name-insensitive) fingerprint — not object identity — deduplicates
    them, which is what the engine's ``query_key`` provides.
    """
    workload: List[ConjunctiveQuery] = []
    for round_index in range(resubmissions):
        for index, query in enumerate(queries):
            if round_index == 0:
                workload.append(query)
            else:
                workload.append(
                    ConjunctiveQuery(
                        atoms=query.atoms,
                        head=query.head,
                        equalities=query.equalities,
                        inequalities=query.inequalities,
                        name=f"resubmit{round_index}_{index}",
                    )
                )
    return workload


@dataclass(frozen=True)
class StreamedMatrix:
    """A streamed batch's values plus its latency profile.

    ``values`` is input-ordered (``None`` for tasks the batch budget
    expired before — provenance ``"deadline"``); ``first_verdict_s`` is
    the wall-clock delay until the *first* result was yielded (memo hits
    make this near-zero on warm engines) and ``total_s`` the full batch
    time.  ``by_provenance`` counts the consumed results per provenance
    tag (``memo``/``dedup``/``computed``/``pooled``/...), the per-request
    summary the engine records for every batch.
    """

    values: List[object]
    first_verdict_s: float
    total_s: float
    by_provenance: Optional[Dict[str, int]] = None


def stream_relevance_matrix(
    engine,
    access_schema: AccessSchema,
    accesses: Sequence[Access],
    query: ConjunctiveQuery,
    initial: Optional[Instance] = None,
    grounded: bool = False,
    require_boolean_access: bool = True,
    budget=None,
    clock=time.perf_counter,  # repro: noqa[TIME001] latency reporting only; injectable for tests
) -> StreamedMatrix:
    """Run a relevance matrix through ``engine.iter_results``.

    Task construction mirrors :meth:`DecisionEngine.relevance_matrix`
    (one shared schema/query fingerprint, per-access key concatenation),
    but results are consumed as they land: the first-verdict latency is
    the serving metric the anytime layer optimises, and *budget* bounds
    the whole sweep (budget-aware back-ends receive the unspent portion,
    everything after expiry comes back ``None``).
    """
    from repro.engine.engine import _query_size, relevance_shared_key, relevance_task
    from repro.engine.reduction import instance_key

    snap = instance_key(initial)
    shared = relevance_shared_key(
        access_schema, query, snap, grounded, require_boolean_access
    )
    size = snap.size() if snap is not None else 0
    cost = (1 + size) * (1 + _query_size(query))
    tasks = [
        relevance_task(
            access_schema,
            access,
            query,
            initial=snap,
            grounded=grounded,
            require_boolean_access=require_boolean_access,
            shared_key=shared,
            cost_hint=cost,
        )
        for access in accesses
    ]
    values: List[object] = [None] * len(tasks)
    start = clock()
    first_verdict_s: Optional[float] = None
    by_provenance: Dict[str, int] = {}
    for index, result in engine.iter_results(tasks, budget=budget):
        if first_verdict_s is None:
            first_verdict_s = clock() - start
        values[index] = result.value
        by_provenance[result.provenance] = by_provenance.get(result.provenance, 0) + 1
    total_s = clock() - start
    return StreamedMatrix(
        values=values,
        first_verdict_s=first_verdict_s if first_verdict_s is not None else 0.0,
        total_s=total_s,
        by_provenance=by_provenance,
    )


def instance_prefixes(hidden: Instance, steps: int = 4) -> List[Instance]:
    """Growing prefixes of *hidden* (canonical fact order), ending at full size.

    The sweep shape of an answerability analysis: how much of the hidden
    database must exist before the maximal answers coincide with the true
    answers.  Always includes the full instance as the last element.
    """
    facts = list(hidden.facts())
    if steps < 1:
        raise ValueError("instance_prefixes needs at least one step")
    prefixes: List[Instance] = []
    for step in range(1, steps + 1):
        cutoff = (len(facts) * step) // steps
        prefix = Instance(hidden.schema)
        for name, tup in facts[:cutoff]:
            prefix.add_unchecked(name, tup)
        prefixes.append(prefix)
    return prefixes
