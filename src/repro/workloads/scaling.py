"""Parameterised workload families for scaling studies.

The paper's own evaluation is analytical (complexity bounds), and the
reproduction-band notes flag "performance eval on larger schemas" as the
weak spot of a Python reproduction.  This module provides deterministic
schema families whose size can be dialled up, so the benchmark harness can
chart how each decision procedure scales with the schema:

* **chain workloads** — relations ``R0, ..., R{n-1}`` where ``R0`` has an
  input-free access method and every later relation can only be accessed by
  binding its first position.  The hidden instance links the relations into
  chains, so answering the chain join query requires following the
  dataflow — the canonical "web form cascade" from the introduction.
* **star workloads** — a central ``Hub`` relation joined to ``k`` satellite
  relations, each with its own bound-first-position access method.
* **wide-directory workloads** — copies of the paper's Mobile/Address pair,
  modelling a federation of many similar web sources.

Every generator is deterministic in its parameters (no random state), so
benchmark rows are reproducible from the printed parameters alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.access.methods import AccessSchema
from repro.queries.atoms import Atom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Variable
from repro.relational.instance import Instance
from repro.relational.schema import Relation, Schema


@dataclass(frozen=True)
class ScalingWorkload:
    """A schema-with-access-methods plus a hidden instance and a target query.

    Attributes
    ----------
    name:
        Identifies the family and parameters (printed by the benchmarks).
    access_schema:
        The schema with access methods.
    hidden_instance:
        The simulated hidden data source.
    query:
        The conjunctive query the workload is about (the chain/star join).
    initial_values:
        Values assumed known up front (seeds for grounded access paths).
    """

    name: str
    access_schema: AccessSchema
    hidden_instance: Instance
    query: ConjunctiveQuery
    initial_values: Tuple[object, ...] = ()

    def describe(self) -> str:
        """One-line description used in benchmark output."""
        return (
            f"{self.name}: |relations|={len(self.access_schema.schema)}, "
            f"|methods|={len(self.access_schema)}, "
            f"|hidden facts|={self.hidden_instance.size()}, "
            f"|query atoms|={len(self.query.atoms)}"
        )


# ----------------------------------------------------------------------
# Chain workloads
# ----------------------------------------------------------------------
def chain_access_schema(length: int) -> AccessSchema:
    """A chain of binary relations ``R0 ... R{length-1}``.

    ``R0`` has an input-free method (a full scan — e.g. a public index
    page); every later ``Ri`` has a single method binding position 0 (a web
    form requiring the value discovered in the previous relation).
    """
    if length < 1:
        raise ValueError("chain length must be at least 1")
    schema = Schema([Relation(f"R{i}", 2) for i in range(length)])
    access_schema = AccessSchema(schema)
    access_schema.add("Scan0", "R0", ())
    for index in range(1, length):
        access_schema.add(f"Lookup{index}", f"R{index}", (0,))
    return access_schema


def chain_hidden_instance(
    length: int, chains: int = 3, broken_chains: int = 1
) -> Instance:
    """A hidden instance linking the chain relations.

    ``chains`` complete chains run through all relations; ``broken_chains``
    additional chains are missing their first link, so their tuples are
    unreachable through grounded accesses (they exercise the "maximal
    answers ≠ true answers" case).
    """
    schema = chain_access_schema(length).schema
    instance = Instance(schema)
    for chain_index in range(chains):
        for relation_index in range(length):
            instance.add(
                f"R{relation_index}",
                (f"c{chain_index}_{relation_index}", f"c{chain_index}_{relation_index + 1}"),
            )
    for broken_index in range(broken_chains):
        # Tuples in later relations with values never exposed by R0.
        for relation_index in range(1, length):
            instance.add(
                f"R{relation_index}",
                (f"x{broken_index}_{relation_index}", f"x{broken_index}_{relation_index + 1}"),
            )
    return instance


def chain_query(length: int) -> ConjunctiveQuery:
    """The chain join ``Q(x0, xn) :- R0(x0, x1), ..., R{n-1}(x{n-1}, xn)``."""
    variables = [Variable(f"x{i}") for i in range(length + 1)]
    atoms = [
        Atom(f"R{i}", (variables[i], variables[i + 1])) for i in range(length)
    ]
    return ConjunctiveQuery(
        atoms=tuple(atoms), head=(variables[0], variables[length]), name="ChainQ"
    )


def chain_workload(
    length: int, chains: int = 3, broken_chains: int = 1
) -> ScalingWorkload:
    """A complete chain workload of the given length."""
    return ScalingWorkload(
        name=f"chain[length={length},chains={chains},broken={broken_chains}]",
        access_schema=chain_access_schema(length),
        hidden_instance=chain_hidden_instance(length, chains, broken_chains),
        query=chain_query(length),
    )


# ----------------------------------------------------------------------
# Star workloads
# ----------------------------------------------------------------------
def star_access_schema(satellites: int) -> AccessSchema:
    """A hub relation plus *satellites* satellite relations.

    The hub ``Hub(key, s1_key, ..., sk_key)`` has an input-free scan; each
    satellite ``S{i}(key, payload)`` has a method binding its key.
    """
    if satellites < 1:
        raise ValueError("a star needs at least one satellite")
    relations = [Relation("Hub", satellites + 1)]
    relations.extend(Relation(f"S{i}", 2) for i in range(satellites))
    schema = Schema(relations)
    access_schema = AccessSchema(schema)
    access_schema.add("HubScan", "Hub", ())
    for index in range(satellites):
        access_schema.add(f"SatLookup{index}", f"S{index}", (0,))
    return access_schema


def star_hidden_instance(satellites: int, hubs: int = 3) -> Instance:
    """A hidden instance with *hubs* hub tuples, each joined to every satellite."""
    schema = star_access_schema(satellites).schema
    instance = Instance(schema)
    for hub_index in range(hubs):
        hub_tuple = [f"h{hub_index}"] + [
            f"k{hub_index}_{sat}" for sat in range(satellites)
        ]
        instance.add("Hub", tuple(hub_tuple))
        for sat in range(satellites):
            instance.add(f"S{sat}", (f"k{hub_index}_{sat}", f"payload{hub_index}_{sat}"))
    return instance


def star_query(satellites: int) -> ConjunctiveQuery:
    """The star join collecting every satellite payload of a hub."""
    hub_key = Variable("h")
    sat_keys = [Variable(f"k{i}") for i in range(satellites)]
    payloads = [Variable(f"p{i}") for i in range(satellites)]
    atoms = [Atom("Hub", tuple([hub_key] + sat_keys))]
    atoms.extend(
        Atom(f"S{i}", (sat_keys[i], payloads[i])) for i in range(satellites)
    )
    return ConjunctiveQuery(
        atoms=tuple(atoms), head=(hub_key,) + tuple(payloads), name="StarQ"
    )


def star_workload(satellites: int, hubs: int = 3) -> ScalingWorkload:
    """A complete star workload with the given number of satellites."""
    return ScalingWorkload(
        name=f"star[satellites={satellites},hubs={hubs}]",
        access_schema=star_access_schema(satellites),
        hidden_instance=star_hidden_instance(satellites, hubs),
        query=star_query(satellites),
    )


# ----------------------------------------------------------------------
# Wide-directory workloads (many Mobile/Address-style source pairs)
# ----------------------------------------------------------------------
def wide_directory_access_schema(pairs: int) -> AccessSchema:
    """*pairs* copies of the paper's Mobile/Address schema side by side."""
    if pairs < 1:
        raise ValueError("need at least one source pair")
    relations: List[Relation] = []
    for index in range(pairs):
        relations.append(Relation(f"Mobile{index}", 4))
        relations.append(Relation(f"Address{index}", 4))
    schema = Schema(relations)
    access_schema = AccessSchema(schema)
    for index in range(pairs):
        access_schema.add(f"ByName{index}", f"Mobile{index}", (0,))
        access_schema.add(f"ByStreet{index}", f"Address{index}", (0, 1))
    return access_schema


def wide_directory_hidden_instance(pairs: int, people: int = 4) -> Instance:
    """A hidden instance populating every source pair with *people* residents."""
    schema = wide_directory_access_schema(pairs).schema
    instance = Instance(schema)
    for index in range(pairs):
        for person in range(people):
            name = f"Person{index}_{person}"
            street = f"Street{index}_{person % 2}"
            postcode = f"PC{index}_{person % 2}"
            instance.add(f"Mobile{index}", (name, postcode, street, 1000 * index + person))
            instance.add(f"Address{index}", (street, postcode, name, person))
    return instance


def wide_directory_query(pairs: int, pair_index: int = 0) -> ConjunctiveQuery:
    """The Mobile/Address join of one source pair of the federation."""
    if not 0 <= pair_index < pairs:
        raise ValueError("pair_index out of range")
    n, pc, s, ph, h = (Variable(v) for v in ("n", "pc", "s", "ph", "h"))
    return ConjunctiveQuery(
        atoms=(
            Atom(f"Mobile{pair_index}", (n, pc, s, ph)),
            Atom(f"Address{pair_index}", (s, pc, n, h)),
        ),
        head=(n,),
        name=f"DirectoryQ{pair_index}",
    )


def wide_directory_workload(pairs: int, people: int = 4) -> ScalingWorkload:
    """A federation of *pairs* directory sources."""
    return ScalingWorkload(
        name=f"wide-directory[pairs={pairs},people={people}]",
        access_schema=wide_directory_access_schema(pairs),
        hidden_instance=wide_directory_hidden_instance(pairs, people),
        query=wide_directory_query(pairs, 0),
        initial_values=(f"Person0_0",),
    )


# ----------------------------------------------------------------------
# Streaming fact generators (100k–10M facts; nothing materialised)
# ----------------------------------------------------------------------
# The bigger-than-RAM studies of the SQL store backend
# (:mod:`repro.store.sqlstore`) need instances whose *facts* scale to
# millions while the generator itself stays O(1) memory: each function
# below yields ``(relation, tuple)`` facts deterministically from its
# parameters (no random state — benchmark rows reproduce from the
# printed parameters alone, and the contract linter's TIME001/DEF001
# rules stay trivially satisfied).

#: Chain length of the grid-reach family: bounds the fixedpoint at
#: ``length + 1`` rounds and keeps each round's delta near
#: ``facts / length`` — the shape that makes 1M–10M-fact fixedpoints
#: feasible (a single long chain would need 1M rounds; a clique would
#: explode quadratically).
GRID_REACH_CHAIN_LENGTH = 100


def grid_reach_schema() -> Schema:
    """The EDB of the grid-reach family: ``Init(1)``, ``Edge(2)``."""
    return Schema([Relation("Init", 1), Relation("Edge", 2)])


def grid_reach_facts(
    total_facts: int, length: int = GRID_REACH_CHAIN_LENGTH
):
    """Yield ``total_facts`` EDB facts: parallel chains of *length* edges.

    The universe is a grid of ``ceil(total_facts / (length + 1))`` chains,
    each contributing one ``Init`` seed and *length* ``Edge`` links (node
    ids are ints, globally unique across chains).  Streaming and
    deterministic: O(1) memory, reproducible from the parameters.
    """
    if total_facts < 1:
        raise ValueError("total_facts must be at least 1")
    if length < 1:
        raise ValueError("chain length must be at least 1")
    emitted = 0
    chain = 0
    while emitted < total_facts:
        base = chain * (length + 1)
        yield ("Init", (base,))
        emitted += 1
        for step in range(length):
            if emitted >= total_facts:
                return
            yield ("Edge", (base + step, base + step + 1))
            emitted += 1
        chain += 1


def grid_reach_program() -> "DatalogProgram":
    """``Reach(x) :- Init(x);  Reach(y) :- Reach(x), Edge(x, y)``.

    On the grid-reach facts the fixedpoint derives one ``Reach`` fact per
    node (so ``|P(D)| ≈ 2 · total_facts``) in ``length + 1`` semi-naive
    rounds — the scaling fixedpoint workload of the SQL-backend bench
    family.
    """
    from repro.datalog.program import DatalogProgram, Rule

    x, y = Variable("x"), Variable("y")
    return DatalogProgram(
        rules=(
            Rule(head=Atom("Reach", (x,)), body=(Atom("Init", (x,)),)),
            Rule(
                head=Atom("Reach", (y,)),
                body=(Atom("Reach", (x,)), Atom("Edge", (x, y))),
            ),
        ),
        edb_schema=grid_reach_schema(),
        goal="Reach",
    )


def chain_join_schema() -> Schema:
    """The schema of the streaming 1:1 chain-join family: ``R(2)``, ``S(2)``."""
    return Schema([Relation("R", 2), Relation("S", 2)])


def chain_join_facts(total_facts: int):
    """Yield ``total_facts`` facts forming a 1:1 ``R ⋈ S`` chain join.

    ``R(a_i, b_i)`` and ``S(b_i, c_i)`` alternate, so the join
    ``R(x, y), S(y, z)`` has exactly ``⌊total_facts / 2⌋`` answers —
    linear output, no explosion, which makes the join bench measure the
    engines rather than the result size.  Streaming and deterministic.
    """
    if total_facts < 1:
        raise ValueError("total_facts must be at least 1")
    for i in range(total_facts // 2):
        yield ("R", (i, total_facts + i))
        yield ("S", (total_facts + i, 2 * total_facts + i))
    if total_facts % 2:
        yield ("R", (total_facts // 2, 3 * total_facts))


def chain_join_query() -> ConjunctiveQuery:
    """The join ``Q(x, z) :- R(x, y), S(y, z)`` of the chain-join family."""
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    return ConjunctiveQuery(
        atoms=(Atom("R", (x, y)), Atom("S", (y, z))),
        head=(x, z),
        name="ChainJoinQ",
    )


# ----------------------------------------------------------------------
# Suites
# ----------------------------------------------------------------------
def chain_suite(lengths: Tuple[int, ...] = (2, 4, 6, 8)) -> List[ScalingWorkload]:
    """Chain workloads of increasing length."""
    return [chain_workload(length) for length in lengths]


def star_suite(satellite_counts: Tuple[int, ...] = (2, 4, 6)) -> List[ScalingWorkload]:
    """Star workloads of increasing width."""
    return [star_workload(count) for count in satellite_counts]


def wide_directory_suite(pair_counts: Tuple[int, ...] = (1, 2, 4)) -> List[ScalingWorkload]:
    """Wide-directory workloads of increasing federation size."""
    return [wide_directory_workload(pairs) for pairs in pair_counts]
