"""Named scenarios shared by the examples, tests and benchmark harness.

A :class:`Scenario` bundles an access schema, a hidden instance, a pair of
queries, an initial instance and the constraint sets relevant to the
paper's applications (containment, long-term relevance, constraint-aware
variants).  ``standard_scenarios()`` returns the fixed list the benchmark
tables iterate over, so every reported row names the scenario it came from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.access.methods import Access, AccessSchema
from repro.queries.cq import ConjunctiveQuery
from repro.queries.parser import parse_cq
from repro.relational.dependencies import DisjointnessConstraint, FunctionalDependency
from repro.relational.instance import Instance
from repro.workloads.directory import (
    directory_access_schema,
    directory_hidden_instance,
    jones_address_query,
    join_query,
    resident_names_query,
    smith_phone_query,
)
from repro.workloads.generators import WorkloadGenerator


@dataclass
class Scenario:
    """A named workload for the benchmark harness."""

    name: str
    access_schema: AccessSchema
    hidden_instance: Instance
    query_one: ConjunctiveQuery
    query_two: ConjunctiveQuery
    probe_access: Access
    initial_values: Tuple[object, ...] = ()
    disjointness: Tuple[DisjointnessConstraint, ...] = ()
    fds: Tuple[FunctionalDependency, ...] = ()

    def describe(self) -> str:
        """One-line description used in benchmark output."""
        return (
            f"{self.name}: |schema|={len(self.access_schema.schema)} relations, "
            f"|methods|={len(self.access_schema)}, "
            f"|hidden|={self.hidden_instance.size()} facts"
        )


def _directory_scenario() -> Scenario:
    access_schema = directory_access_schema()
    mobile = access_schema.schema.relation("Mobile")
    probe_method = AccessSchema(access_schema.schema)
    # A boolean probe access used by the relevance experiments: a full-tuple
    # membership test on Mobile (added as an extra method).
    access_schema.add("MobileProbe", "Mobile", (0, 1, 2, 3))
    probe = access_schema.access(
        "MobileProbe", ("Jones", "OX26NN", "Banbury Rd", 5553434)
    )
    return Scenario(
        name="directory",
        access_schema=access_schema,
        hidden_instance=directory_hidden_instance("small"),
        query_one=join_query(),
        query_two=resident_names_query(),
        probe_access=probe,
        initial_values=("Smith",),
        disjointness=(DisjointnessConstraint("Mobile", 0, "Address", 0),),
        fds=(FunctionalDependency("Mobile", (0,), 3),),
    )


def _directory_unanswerable_scenario() -> Scenario:
    access_schema = directory_access_schema()
    access_schema.add("AddressProbe", "Address", (0, 1, 2, 3))
    probe = access_schema.access(
        "AddressProbe", ("Banbury Rd", "OX26NN", "Jones", 101)
    )
    return Scenario(
        name="directory-jones",
        access_schema=access_schema,
        hidden_instance=directory_hidden_instance("small"),
        query_one=jones_address_query(),
        query_two=resident_names_query(),
        probe_access=probe,
        initial_values=("Jones",),
        disjointness=(DisjointnessConstraint("Mobile", 0, "Address", 2),),
        fds=(FunctionalDependency("Address", (0, 1, 3), 2),),
    )


def _synthetic_scenario(seed: int, num_relations: int, name: str) -> Scenario:
    generator = WorkloadGenerator(seed=seed)
    access_schema = generator.access_schema(
        num_relations=num_relations, methods_per_relation=1, max_inputs=1,
        input_free_probability=0.34,
    )
    schema = access_schema.schema
    hidden = generator.instance(schema, tuples_per_relation=4, domain_size=6)
    query_one = generator.conjunctive_query(schema, num_atoms=2, num_variables=3)
    query_two = generator.conjunctive_query(schema, num_atoms=1, num_variables=3)
    # Boolean probe method on the first relation.
    first = list(schema)[0]
    access_schema.add("Probe", first.name, tuple(range(first.arity)))
    # Deterministic pick: ``next(iter(frozenset))`` depends on the process
    # hash seed, which silently made the synthetic scenarios (and therefore
    # every benchmark row derived from them) vary between runs.
    probe_tuple = min(hidden.tuples(first.name), key=repr)
    probe = access_schema.access("Probe", probe_tuple)
    return Scenario(
        name=name,
        access_schema=access_schema,
        hidden_instance=hidden,
        query_one=query_one,
        query_two=query_two,
        probe_access=probe,
        initial_values=("v0",),
        disjointness=(generator.disjointness_constraint(schema),),
        fds=(generator.functional_dependency(schema),),
    )


def standard_scenarios() -> List[Scenario]:
    """The fixed scenario list used by the benchmark harness."""
    return [
        _directory_scenario(),
        _directory_unanswerable_scenario(),
        _synthetic_scenario(seed=7, num_relations=2, name="synthetic-2rel"),
        _synthetic_scenario(seed=11, num_relations=3, name="synthetic-3rel"),
    ]
