"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.access.methods import AccessSchema
from repro.core.vocabulary import AccessVocabulary
from repro.relational.instance import Instance
from repro.relational.schema import Relation, Schema
from repro.workloads.directory import (
    directory_access_schema,
    directory_hidden_instance,
    directory_schema,
    jones_address_query,
    join_query,
    resident_names_query,
    smith_phone_query,
)


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "regression_guard: runs the benchmark suite (smoke) through "
        "benchmarks/check_regression.py against the committed baseline; "
        "deselect with -m 'not regression_guard' for fast local loops",
    )


@pytest.fixture
def simple_schema() -> Schema:
    """A small untyped schema used by the relational/query tests."""
    return Schema([Relation("R", 2), Relation("S", 2), Relation("T", 1)])


@pytest.fixture
def simple_instance(simple_schema: Schema) -> Instance:
    """A small instance over ``simple_schema``."""
    instance = Instance(simple_schema)
    instance.add_all("R", [("a", "b"), ("b", "c"), ("c", "d")])
    instance.add_all("S", [("b", "c"), ("d", "e")])
    instance.add_all("T", [("a",)])
    return instance


@pytest.fixture
def directory() -> AccessSchema:
    """The paper's web-directory access schema."""
    return directory_access_schema()


@pytest.fixture
def directory_vocab(directory: AccessSchema) -> AccessVocabulary:
    """The access vocabulary of the directory schema."""
    return AccessVocabulary.of(directory)


@pytest.fixture
def hidden_directory() -> Instance:
    """The small hidden directory instance."""
    return directory_hidden_instance("small")


@pytest.fixture
def directory_queries():
    """The queries of the introduction, as a dictionary."""
    return {
        "jones": jones_address_query(),
        "smith": smith_phone_query(),
        "join": join_query(),
        "residents": resident_names_query(),
    }
