"""Tests for the LTS exploration and maximal answers under access patterns."""

import pytest

from repro.access.answerability import (
    accessible_fraction,
    accessible_part,
    accessible_part_program,
    is_answerable_exactly,
    maximal_answers,
    true_answers,
)
from repro.access.lts import LabelledTransitionSystem, explore
from repro.access.methods import AccessSchema
from repro.datalog.evaluation import evaluate_program
from repro.relational.instance import Instance
from repro.relational.schema import make_schema
from repro.workloads.directory import (
    jones_address_query,
    resident_names_query,
    smith_phone_query,
)


class TestExplore:
    def test_exploration_from_hidden_instance(self, directory, hidden_directory):
        lts = explore(
            directory,
            hidden_instance=hidden_directory,
            value_pool=["Smith", "Parks Rd", "OX13QD"],
            max_depth=2,
        )
        nodes, transitions = lts.size()
        assert nodes > 1
        assert transitions >= nodes - 1
        assert lts.initial in lts.nodes

    def test_grounded_exploration_restricts_bindings(self, directory, hidden_directory):
        free = explore(
            directory,
            hidden_instance=hidden_directory,
            value_pool=["Smith", "Parks Rd", "OX13QD"],
            max_depth=1,
        )
        grounded = explore(
            directory,
            hidden_instance=hidden_directory,
            value_pool=["Smith", "Parks Rd", "OX13QD"],
            max_depth=1,
            grounded_only=True,
        )
        # The empty initial instance knows no values, so only input-free
        # accesses (none here) are grounded.
        assert grounded.size()[1] == 0
        assert free.size()[1] > 0

    def test_paths_enumeration(self, directory, hidden_directory):
        lts = explore(
            directory,
            hidden_instance=hidden_directory,
            value_pool=["Smith"],
            max_depth=2,
        )
        paths = list(lts.paths(max_length=2))
        assert any(len(p) == 2 for p in paths)
        assert any(len(p) == 0 for p in paths)

    def test_render_tree_mentions_known_facts(self, directory, hidden_directory):
        lts = explore(
            directory,
            hidden_instance=hidden_directory,
            value_pool=["Smith", "Parks Rd", "OX13QD"],
            max_depth=2,
        )
        rendering = lts.render_tree(max_depth=2)
        assert "Known Facts" in rendering
        assert "AcM1" in rendering or "AcM2" in rendering

    def test_transition_filter(self, directory, hidden_directory):
        lts = explore(
            directory,
            hidden_instance=hidden_directory,
            value_pool=["Smith"],
            max_depth=2,
            transition_filter=lambda t: t.access.method.name == "AcM1",
        )
        assert all(t.access.method.name == "AcM1" for t in lts.transitions)

    def test_synthetic_responses_without_hidden_instance(self, directory):
        lts = explore(
            directory,
            value_pool=["a"],
            max_depth=1,
            max_response_size=1,
        )
        assert lts.size()[1] > 0


class TestAccessiblePart:
    def test_nothing_accessible_without_seed(self, directory, hidden_directory):
        part = accessible_part(directory, hidden_directory, initial_values=[])
        assert part.is_empty()

    def test_seeded_accessible_part_grows_transitively(
        self, directory, hidden_directory
    ):
        part = accessible_part(directory, hidden_directory, initial_values=["Smith"])
        # Smith's mobile tuple is accessible, revealing Parks Rd/OX13QD,
        # which unlocks the Address tuples on Parks Rd.
        assert part.contains("Mobile", ("Smith", "OX13QD", "Parks Rd", 5551212))
        assert part.contains("Address", ("Parks Rd", "OX13QD", "Jones", 16))
        # "Jones" becomes known through the Address table, unlocking Jones'
        # mobile tuple too; Patel's name is never revealed, and the Hidden
        # Lane address needs a street/postcode nobody's mobile record has.
        assert part.contains("Mobile", ("Jones", "OX26NN", "Banbury Rd", 5553434))
        assert not part.contains("Mobile", ("Patel", "OX13QD", "Parks Rd", 5559876))
        assert not part.contains("Address", ("Hidden Lane", "OX99ZZ", "Jones", 7))

    def test_input_free_method_reveals_everything(self, hidden_directory):
        schema = AccessSchema(hidden_directory.schema)
        schema.add("ScanMobile", "Mobile", ())
        schema.add("ScanAddress", "Address", ())
        part = accessible_part(schema, hidden_directory)
        assert part.size() == hidden_directory.size()
        assert accessible_fraction(schema, hidden_directory) == 1.0

    def test_accessible_fraction_of_empty_instance(self, directory):
        assert accessible_fraction(directory, directory.empty_instance()) == 1.0


class TestMaximalAnswers:
    def test_jones_query_not_answerable(self, directory, hidden_directory):
        query = jones_address_query()
        maximal = maximal_answers(
            directory, query, hidden_directory, initial_values=["Smith"]
        )
        truth = true_answers(query, hidden_directory)
        assert maximal < truth
        assert not is_answerable_exactly(
            directory, query, hidden_directory, initial_values=["Smith"]
        )

    def test_smith_query_answerable(self, directory, hidden_directory):
        query = smith_phone_query()
        assert is_answerable_exactly(
            directory, query, hidden_directory, initial_values=["Smith"]
        )

    def test_program_agrees_with_direct_fixedpoint(self, directory, hidden_directory):
        query = resident_names_query()
        program = accessible_part_program(directory, query)
        database = Instance(program.edb_schema)
        for name, tup in hidden_directory.facts():
            database.add(name, tup)
        database.add("Init", ("Smith",))
        fixedpoint = evaluate_program(program, database)
        program_answers = fixedpoint.tuples("Goal")
        direct = maximal_answers(
            directory, query, hidden_directory, initial_values=["Smith"]
        )
        assert program_answers == direct

    def test_program_goal_empty_without_seed(self, directory, hidden_directory):
        query = resident_names_query()
        program = accessible_part_program(directory, query)
        database = Instance(program.edb_schema)
        for name, tup in hidden_directory.facts():
            database.add(name, tup)
        fixedpoint = evaluate_program(program, database)
        assert not fixedpoint.tuples("Goal")

    def test_program_linear_size(self, directory):
        query = resident_names_query()
        program = accessible_part_program(directory, query)
        # One Known rule for Init, one per relation position, one Acc rule
        # per method, plus the goal rules.
        expected_max = 1 + sum(r.arity for r in directory.schema) + len(directory) + 1
        assert len(program.rules) <= expected_max
