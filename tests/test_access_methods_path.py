"""Tests for access methods, accesses, paths and sanity conditions."""

import pytest

from repro.access.methods import Access, AccessMethod, AccessSchema, respond
from repro.access.path import (
    AccessPath,
    PathStep,
    conf,
    configurations,
    grounded_prefix_length,
    is_exact,
    is_exact_for,
    is_grounded,
    is_idempotent,
    path_from_pairs,
    satisfies_sanity_conditions,
    values_revealed,
    well_formed_response,
)
from repro.relational.instance import Instance
from repro.relational.schema import SchemaError, make_schema


class TestAccessMethods:
    def test_method_normalises_input_positions(self):
        method = AccessMethod("M", "R", (2, 0, 2))
        assert method.input_positions == (0, 2)
        assert method.num_inputs == 2

    def test_exact_implies_idempotent(self):
        method = AccessMethod("M", "R", (0,), exact=True)
        assert method.idempotent

    def test_boolean_and_input_free(self, directory):
        acm1 = directory.method("AcM1")
        assert not acm1.is_boolean(directory.schema)
        assert not acm1.is_input_free()
        assert acm1.output_positions(directory.schema) == (1, 2, 3)

    def test_access_schema_validates_positions(self):
        schema = AccessSchema(make_schema({"R": 2}))
        with pytest.raises(SchemaError):
            schema.add("M", "R", (5,))

    def test_duplicate_method_names_rejected(self, directory):
        with pytest.raises(SchemaError):
            directory.add("AcM1", "Address", (0,))

    def test_methods_for_and_flags(self, directory):
        assert [m.name for m in directory.methods_for("Mobile")] == ["AcM1"]
        assert directory.exact_methods() == frozenset()
        exact = AccessSchema(make_schema({"R": 2}))
        exact.add("E", "R", (0,), exact=True)
        assert exact.exact_methods() == frozenset({"E"})
        assert exact.idempotent_methods() == frozenset({"E"})

    def test_access_binding_validation(self, directory):
        with pytest.raises(SchemaError):
            directory.access("AcM2", ("only-one",))

    def test_access_matches(self, directory):
        access = directory.access("AcM2", ("Parks Rd", "OX13QD"))
        assert access.matches(("Parks Rd", "OX13QD", "Smith", 13))
        assert not access.matches(("Banbury Rd", "OX13QD", "Smith", 13))

    def test_respond_returns_matching_tuples(self, directory, hidden_directory):
        access = directory.access("AcM1", ("Smith",))
        response = respond(access, hidden_directory)
        assert response == frozenset(
            {("Smith", "OX13QD", "Parks Rd", 5551212)}
        )

    def test_str_representations(self, directory):
        access = directory.access("AcM1", ("Smith",))
        assert "AcM1" in str(access)
        assert "Mobile" in str(directory.method("AcM1"))
        assert "AcM1" in str(directory)


class TestPaths:
    def test_response_must_match_binding(self, directory):
        access = directory.access("AcM1", ("Smith",))
        with pytest.raises(SchemaError):
            PathStep(access, frozenset({("Jones", "OX1", "X", 1)}))

    def test_well_formed_response(self, directory):
        access = directory.access("AcM1", ("Smith",))
        assert well_formed_response(access, [("Smith", "a", "b", 1)])
        assert not well_formed_response(access, [("Jones", "a", "b", 1)])

    def test_conf_accumulates_responses(self, directory):
        path = path_from_pairs(
            directory,
            [
                ("AcM1", ("Smith",), [("Smith", "OX13QD", "Parks Rd", 5551212)]),
                ("AcM2", ("Parks Rd", "OX13QD"), [("Parks Rd", "OX13QD", "Jones", 16)]),
            ],
        )
        final = conf(path, directory.empty_instance())
        assert final.size() == 2
        configs = configurations(path, directory.empty_instance())
        assert [c.size() for c in configs] == [0, 1, 2]

    def test_path_helpers(self, directory):
        path = path_from_pairs(
            directory,
            [
                ("AcM1", ("Smith",), []),
                ("AcM2", ("Parks Rd", "OX13QD"), []),
            ],
        )
        assert len(path) == 2
        assert path.methods_used() == frozenset({"AcM1", "AcM2"})
        assert len(path.prefix(1)) == 1
        assert len(path.drop_first()) == 1
        assert not path.is_empty
        assert len(path.accesses()) == 2

    def test_idempotence(self, directory):
        response_one = [("Smith", "OX13QD", "Parks Rd", 5551212)]
        same = path_from_pairs(
            directory,
            [("AcM1", ("Smith",), response_one), ("AcM1", ("Smith",), response_one)],
        )
        assert is_idempotent(same)
        different = path_from_pairs(
            directory,
            [("AcM1", ("Smith",), response_one), ("AcM1", ("Smith",), [])],
        )
        assert not is_idempotent(different)

    def test_groundedness(self, directory):
        initial = directory.empty_instance()
        ungrounded = path_from_pairs(directory, [("AcM1", ("Smith",), [])])
        assert not is_grounded(ungrounded, initial)
        assert grounded_prefix_length(ungrounded, initial) == 0

        seeded = Instance(directory.schema)
        seeded.add("Address", ("Parks Rd", "OX13QD", "Smith", 13))
        grounded_path = path_from_pairs(
            directory,
            [
                ("AcM1", ("Smith",), [("Smith", "OX13QD", "Banbury Rd", 1)]),
                ("AcM2", ("Banbury Rd", "OX13QD"), []),
            ],
        )
        assert is_grounded(grounded_path, seeded)
        assert grounded_prefix_length(grounded_path, seeded) == 2

    def test_exactness(self, directory):
        path = path_from_pairs(
            directory,
            [
                ("AcM1", ("Smith",), [("Smith", "OX13QD", "Parks Rd", 5551212)]),
                ("AcM1", ("Smith",), [("Smith", "OX13QD", "Parks Rd", 5551212)]),
            ],
        )
        assert is_exact(path, schema=directory)
        # A later access revealing a matching tuple the earlier one missed
        # breaks exactness.
        broken = path_from_pairs(
            directory,
            [
                ("AcM1", ("Smith",), []),
                ("AcM1", ("Smith",), [("Smith", "OX13QD", "Parks Rd", 5551212)]),
            ],
        )
        assert not is_exact_for(broken, {"AcM1"}, schema=directory)

    def test_exactness_requires_context(self, directory):
        path = path_from_pairs(directory, [("AcM1", ("Smith",), [])])
        with pytest.raises(ValueError):
            is_exact_for(path, {"AcM1"})

    def test_sanity_conditions(self):
        schema = AccessSchema(make_schema({"R": 1}))
        schema.add("Exact", "R", (0,), exact=True)
        ok = path_from_pairs(schema, [("Exact", ("a",), [("a",)])])
        assert satisfies_sanity_conditions(ok, schema)
        broken = path_from_pairs(
            schema, [("Exact", ("a",), []), ("Exact", ("a",), [("a",)])]
        )
        assert not satisfies_sanity_conditions(broken, schema)

    def test_values_revealed(self, directory):
        path = path_from_pairs(
            directory, [("AcM1", ("Smith",), [("Smith", "OX13QD", "Parks Rd", 1)])]
        )
        revealed = values_revealed(path, directory.empty_instance())
        assert "OX13QD" in revealed
