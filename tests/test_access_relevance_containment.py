"""Tests for long-term relevance and containment under access patterns."""

import pytest

from repro.access.containment_ap import (
    contained_under_access_patterns,
    equivalent_under_access_patterns,
    grounded_reachable,
)
from repro.access.methods import AccessSchema
from repro.access.path import conf, is_grounded
from repro.access.relevance import long_term_relevant, relevant_accesses
from repro.queries.evaluation import holds
from repro.queries.parser import parse_cq
from repro.queries.ucq import as_ucq
from repro.relational.instance import Instance
from repro.relational.schema import make_schema
from repro.workloads.directory import join_query, resident_names_query


@pytest.fixture
def probe_schema(directory):
    """Directory schema extended with boolean probe methods."""
    directory.add("MobileProbe", "Mobile", (0, 1, 2, 3))
    directory.add("AddressProbe", "Address", (0, 1, 2, 3))
    return directory


class TestLongTermRelevance:
    def test_relevant_access_found_with_witness(self, probe_schema):
        access = probe_schema.access(
            "MobileProbe", ("Smith", "OX13QD", "Parks Rd", 5551212)
        )
        result = long_term_relevant(probe_schema, access, join_query())
        assert result.relevant
        witness = result.witness_path
        assert witness is not None
        assert witness[0].access == access
        # Re-validate the definition: Q holds after the path, fails without
        # the first access.
        initial = probe_schema.empty_instance()
        assert holds(as_ucq(join_query()).boolean_version(), conf(witness, initial))
        assert not holds(
            as_ucq(join_query()).boolean_version(),
            conf(witness.drop_first(), initial),
        )

    def test_irrelevant_access(self, probe_schema):
        # An Address probe cannot be relevant to a query that only needs
        # Mobile facts.
        query = parse_cq("Q(n) :- Mobile(n, pc, s, p)")
        access = probe_schema.access(
            "AddressProbe", ("Parks Rd", "OX13QD", "Smith", 13)
        )
        result = long_term_relevant(probe_schema, access, query)
        assert not result.relevant

    def test_relevance_respects_existing_knowledge(self, probe_schema):
        # Relevance is about *new* query results (the definition in [3]).
        # With a non-boolean query, a probe that reveals a new answer stays
        # relevant even if other answers are already known; the boolean
        # version of the same query is already satisfied, so nothing can
        # reveal it anew.
        query = parse_cq("Q(n) :- Mobile(n, pc, s, p)")
        initial = Instance(probe_schema.schema)
        initial.add("Mobile", ("Jones", "OX26NN", "Banbury Rd", 5553434))
        access = probe_schema.access(
            "MobileProbe", ("Smith", "OX13QD", "Parks Rd", 5551212)
        )
        per_answer = long_term_relevant(probe_schema, access, query, initial=initial)
        assert per_answer.relevant
        boolean = long_term_relevant(
            probe_schema, access, query.boolean_version(), initial=initial
        )
        assert not boolean.relevant
        # The already-known answer itself cannot be revealed anew either.
        known_probe = probe_schema.access(
            "MobileProbe", ("Jones", "OX26NN", "Banbury Rd", 5553434)
        )
        assert not long_term_relevant(
            probe_schema, known_probe, query, initial=initial
        ).relevant

    def test_grounded_relevance_requires_reachable_support(self, probe_schema):
        access = probe_schema.access(
            "MobileProbe", ("Smith", "OX13QD", "Parks Rd", 5551212)
        )
        grounded_result = long_term_relevant(
            probe_schema, access, join_query(), grounded=True
        )
        assert grounded_result.relevant
        assert grounded_result.grounded
        # The tail of the witness is grounded once the probed access's own
        # values are known: seed an initial instance with them and check.
        seeded = Instance(probe_schema.schema)
        seeded.add("Mobile", ("Smith", "OX13QD", "Parks Rd", 5551212))
        assert is_grounded(grounded_result.witness_path.drop_first(), seeded)

    def test_non_boolean_access_requires_flag(self, probe_schema):
        access = probe_schema.access("AcM1", ("Smith",))
        with pytest.raises(ValueError):
            long_term_relevant(probe_schema, access, join_query())
        result = long_term_relevant(
            probe_schema, access, join_query(), require_boolean_access=False
        )
        assert result.relevant

    def test_relevant_accesses_filter(self, probe_schema):
        accesses = [
            probe_schema.access("MobileProbe", ("Smith", "OX13QD", "Parks Rd", 5551212)),
            probe_schema.access("AddressProbe", ("Parks Rd", "OX13QD", "Smith", 13)),
        ]
        query = parse_cq("Q(n) :- Mobile(n, pc, s, p)")
        relevant = relevant_accesses(probe_schema, query, accesses)
        assert len(relevant) == 1
        assert relevant[0].relation == "Mobile"


class TestGroundedReachability:
    def test_reachable_ordering_found(self, directory):
        facts = [
            ("Mobile", ("Smith", "OX1", "Parks Rd", 1)),
            ("Address", ("Parks Rd", "OX1", "Jones", 2)),
        ]
        assert grounded_reachable(facts, ["Smith"], directory)

    def test_unreachable_without_seed(self, directory):
        facts = [("Mobile", ("Smith", "OX1", "Parks Rd", 1))]
        assert not grounded_reachable(facts, [], directory)

    def test_order_matters_but_fixedpoint_finds_it(self, directory):
        # The Address fact unlocks nothing; the Mobile fact must come first.
        facts = [
            ("Address", ("Parks Rd", "OX1", "Jones", 2)),
            ("Mobile", ("Smith", "OX1", "Parks Rd", 1)),
        ]
        assert grounded_reachable(facts, ["Smith"], directory)


class TestContainmentUnderAccessPatterns:
    def test_classical_containment_implies_ap_containment(self, directory):
        result = contained_under_access_patterns(
            directory, join_query(), resident_names_query()
        )
        assert result.contained

    def test_non_containment_with_counterexample(self, directory):
        # Make the Address table reachable from nothing (an input-free scan
        # method), so residents can be revealed while the join cannot.
        directory.add("AddrScan", "Address", ())
        result = contained_under_access_patterns(
            directory, resident_names_query(), join_query()
        )
        assert not result.contained
        assert result.counterexample is not None
        # The counterexample satisfies Q1 and not Q2.
        assert holds(
            as_ucq(resident_names_query()).boolean_version(), result.counterexample
        )
        assert not holds(as_ucq(join_query()).boolean_version(), result.counterexample)

    def test_access_restrictions_can_make_containment_hold(self):
        # Without access restrictions Q1 ⊄ Q2, but if R is unreachable by
        # any grounded path then Q1 can never fire, so containment holds.
        schema = AccessSchema(make_schema({"R": 1, "S": 1}))
        schema.add("MS", "S", ())  # S is freely scannable
        schema.add("MR", "R", (0,))  # R needs its value as input
        q1 = parse_cq("Q :- R(x)")
        q2 = parse_cq("Q :- S(x)")
        unrestricted = contained_under_access_patterns(
            AccessSchema(make_schema({"R": 1, "S": 1}), []), q1, q2
        )
        # With no access methods at all, nothing is reachable, so containment
        # holds vacuously.
        assert unrestricted.contained
        restricted = contained_under_access_patterns(schema, q1, q2)
        # R tuples can only be revealed by guessing... which grounded paths
        # forbid, so Q1 never holds on a reachable configuration.
        assert restricted.contained

    def test_containment_fails_when_source_scannable(self):
        schema = AccessSchema(make_schema({"R": 1, "S": 1}))
        schema.add("MR", "R", ())
        schema.add("MS", "S", (0,))
        q1 = parse_cq("Q :- R(x)")
        q2 = parse_cq("Q :- S(x)")
        result = contained_under_access_patterns(schema, q1, q2)
        assert not result.contained

    def test_equivalence_under_access_patterns(self, directory):
        directory.add("AddrScan", "Address", ())
        q = join_query()
        assert equivalent_under_access_patterns(directory, q, q)
        assert not equivalent_under_access_patterns(
            directory, resident_names_query(), join_query()
        )
