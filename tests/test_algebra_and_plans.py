"""Tests for the relational-algebra evaluator and the access-plan language."""

import pytest
from hypothesis import HealthCheck, given, settings
import hypothesis.strategies as st

from repro.access.plans import (
    AccessStep,
    Plan,
    canonical_plan,
    plans_equivalent_on,
    relevance_pruned_plan,
    verify_canonical_plan,
)
from repro.access.answerability import maximal_answers
from repro.queries.algebra import (
    NamedRelation,
    NaturalJoin,
    Projection,
    Rename,
    Scan,
    Selection,
    Union,
    compile_cq,
    evaluate_cq_via_algebra,
)
from repro.queries.atoms import Atom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.evaluation import evaluate_cq
from repro.queries.parser import parse_cq
from repro.queries.terms import Constant, Variable
from repro.relational.instance import Instance
from repro.relational.schema import Relation, Schema
from repro.workloads.directory import (
    directory_access_schema,
    directory_hidden_instance,
    join_query,
    resident_names_query,
    smith_phone_query,
)


class TestNamedRelation:
    def test_projection(self):
        relation = NamedRelation(("a", "b"), {(1, 2), (3, 4)})
        assert relation.project(("b",)).rows == frozenset({(2,), (4,)})

    def test_row_width_validated(self):
        with pytest.raises(ValueError):
            NamedRelation(("a",), {(1, 2)})


class TestAlgebraOperators:
    @pytest.fixture
    def instance(self, simple_schema):
        data = Instance(simple_schema)
        data.add_all("R", [("a", "b"), ("b", "c"), ("c", "d")])
        data.add_all("S", [("b", "c"), ("d", "e")])
        data.add_all("T", [("a",)])
        return data

    def test_scan_and_selection(self, instance):
        plan = Selection(Scan("R", ("x", "y")), "x", value="a")
        assert plan.evaluate(instance).rows == frozenset({("a", "b")})

    def test_column_equality_selection(self, instance):
        instance.add("R", ("e", "e"))
        plan = Selection(Scan("R", ("x", "y")), "x", other_column="y")
        assert plan.evaluate(instance).rows == frozenset({("e", "e")})

    def test_natural_join(self, instance):
        plan = NaturalJoin(Scan("R", ("x", "y")), Scan("S", ("y", "z")))
        result = plan.evaluate(instance)
        assert result.columns == ("x", "y", "z")
        assert result.rows == frozenset({("a", "b", "c"), ("c", "d", "e")})

    def test_projection_and_rename(self, instance):
        plan = Rename(Projection(Scan("R", ("x", "y")), ("y",)), ("value",))
        result = plan.evaluate(instance)
        assert result.columns == ("value",)
        assert ("b",) in result.rows

    def test_union(self, instance):
        plan = Union(
            Projection(Scan("R", ("x", "y")), ("x",)),
            Projection(Scan("S", ("x", "z")), ("x",)),
        )
        assert plan.evaluate(instance).rows == frozenset(
            {("a",), ("b",), ("c",), ("d",)}
        )

    def test_scan_of_missing_relation_is_empty(self, instance):
        assert len(Scan("Missing", ("x",)).evaluate(instance)) == 0

    def test_plan_size(self, instance):
        plan = NaturalJoin(Scan("R", ("x", "y")), Scan("S", ("y", "z")))
        assert plan.size() == 3
        assert "⋈" in str(plan)


class TestCQCompilation:
    def test_join_query_matches_backtracking_evaluator(self, simple_instance):
        query = parse_cq("Q(x, z) :- R(x, y), S(y, z)")
        assert evaluate_cq_via_algebra(query, simple_instance) == evaluate_cq(
            query, simple_instance
        )

    def test_constants_become_selections(self, simple_instance):
        query = parse_cq('Q(y) :- R("a", y)')
        assert evaluate_cq_via_algebra(query, simple_instance) == frozenset({("b",)})

    def test_repeated_variables(self, simple_instance):
        simple_instance.add("R", ("e", "e"))
        query = parse_cq("Q(x) :- R(x, x)")
        assert evaluate_cq_via_algebra(query, simple_instance) == frozenset({("e",)})

    def test_boolean_query(self, simple_instance):
        query = parse_cq("Q :- R(x, y), S(y, z)")
        assert evaluate_cq_via_algebra(query, simple_instance) == frozenset({()})

    def test_inequalities_rejected(self):
        query = parse_cq("Q(x) :- R(x, y), x != y")
        with pytest.raises(ValueError):
            compile_cq(query)

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            compile_cq(ConjunctiveQuery(atoms=(), head=()))

    def test_directory_queries_agree(self):
        hidden = directory_hidden_instance("small")
        for query in (smith_phone_query(), resident_names_query(), join_query()):
            assert evaluate_cq_via_algebra(query, hidden) == evaluate_cq(query, hidden)

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_algebra_agrees_with_backtracking_on_random_queries(self, data):
        schema = Schema([Relation("R", 2), Relation("S", 1)])
        instance = Instance(schema)
        values = ["a", "b", "c"]
        for _ in range(data.draw(st.integers(min_value=0, max_value=5))):
            instance.add("R", (data.draw(st.sampled_from(values)),
                               data.draw(st.sampled_from(values))))
        for _ in range(data.draw(st.integers(min_value=0, max_value=3))):
            instance.add("S", (data.draw(st.sampled_from(values)),))
        variables = [Variable("x"), Variable("y"), Variable("z")]
        atoms = []
        for _ in range(data.draw(st.integers(min_value=1, max_value=3))):
            if data.draw(st.booleans()):
                atoms.append(Atom("R", (data.draw(st.sampled_from(variables)),
                                        data.draw(st.sampled_from(variables)))))
            else:
                atoms.append(Atom("S", (data.draw(st.sampled_from(variables)),)))
        body_vars = sorted({v for a in atoms for v in a.variables()},
                           key=lambda v: v.name)
        head = tuple(body_vars[: data.draw(st.integers(min_value=0, max_value=len(body_vars)))])
        query = ConjunctiveQuery(atoms=tuple(atoms), head=head)
        assert evaluate_cq_via_algebra(query, instance) == evaluate_cq(query, instance)


class TestAccessPlans:
    @pytest.fixture
    def schema(self):
        return directory_access_schema()

    @pytest.fixture
    def hidden(self):
        return directory_hidden_instance("small")

    def test_canonical_plan_computes_accessible_part(self, schema, hidden):
        assert verify_canonical_plan(schema, join_query(), hidden, ["Smith"])

    def test_canonical_plan_answers_are_maximal_answers(self, schema, hidden):
        plan = canonical_plan(schema, join_query())
        trace = plan.execute(hidden, ["Smith"])
        assert trace.answers == maximal_answers(
            schema, join_query(), hidden, ["Smith"]
        )
        assert trace.num_accesses > 0
        assert trace.rounds >= 2

    def test_plan_trace_reconstructs_path(self, schema, hidden):
        plan = canonical_plan(schema, smith_phone_query())
        trace = plan.execute(hidden, ["Smith"])
        path = trace.as_path(schema, hidden)
        assert len(path) == trace.num_accesses

    def test_dataflow_annotated_step_restricts_bindings(self, schema, hidden):
        # AcM1's name input may only come from the Address resident column.
        plan = Plan(
            schema=schema,
            steps=(
                AccessStep("AcM2"),
                AccessStep("AcM1", (("Address", 2),)),
            ),
            query=smith_phone_query(),
        )
        trace = plan.execute(hidden, ["Parks Rd", "OX13QD"])
        for access in trace.accesses:
            if access.method.name == "AcM1":
                seen_names = {
                    tup[2] for tup in trace.revealed.tuples("Address")
                }
                assert access.binding[0] in seen_names

    def test_relevance_pruned_plan_drops_useless_methods(self, schema, hidden):
        query = smith_phone_query()  # only needs the Mobile relation
        pruned, dropped = relevance_pruned_plan(schema, query)
        assert "AcM2" in dropped
        assert all(step.method_name != "AcM2" for step in pruned.steps)
        # Pruning does not change the answers on this query.
        assert plans_equivalent_on(
            canonical_plan(schema, query), pruned, hidden, ["Smith"]
        )

    def test_pruned_plan_keeps_needed_methods(self, schema, hidden):
        pruned, dropped = relevance_pruned_plan(schema, join_query())
        assert not dropped  # both relations occur in the join query
        assert plans_equivalent_on(
            canonical_plan(schema, join_query()), pruned, hidden, ["Smith"]
        )

    def test_describe_mentions_steps(self, schema):
        plan = canonical_plan(schema, join_query())
        description = plan.describe()
        assert "AcM1" in description and "AcM2" in description
