"""Tests for the contract linter (:mod:`repro.analysis`).

Three layers:

* **tier-1 pass** — the full rule set over the real ``src/`` tree must
  be clean against the committed ``LINT_BASELINE.json`` (and the
  baseline itself must be valid and honest: no stale entries);
* **fixture suites per rule** — each rule has at least one positive
  snippet, one clean negative, and a ``# repro: noqa[ID]`` suppression
  case, exercised through :func:`repro.analysis.lint_source` with fake
  module paths so path-scoped rules engage;
* **framework mechanics** — suppression parsing, baseline
  add/match/stale behaviour, and the driver's 0/1/2 exit-code contract.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    RULES,
    BaselineEntry,
    BaselineError,
    compare,
    default_baseline_path,
    lint_source,
    lint_tree,
    load_baseline,
    write_baseline,
)
from repro.analysis.driver import run as lint_run

REPO_ROOT = Path(__file__).resolve().parent.parent

EXPECTED_RULE_IDS = {
    "ENV001",
    "EXC001",
    "ITER001",
    "TIME001",
    "PKL001",
    "DEF001",
    "FPR001",
    "PRN001",
    "IO001",
    "SQL002",
}


def findings_of(text: str, path: str):
    return lint_source(textwrap.dedent(text), path)


def rule_ids(report) -> list:
    return [finding.rule for finding in report.findings]


# ----------------------------------------------------------------------
# Tier-1: the real tree against the committed baseline
# ----------------------------------------------------------------------
class TestTierOnePass:
    def test_registry_is_the_documented_rule_set(self):
        assert set(RULES) == EXPECTED_RULE_IDS

    def test_src_tree_clean_against_committed_baseline(self):
        report = lint_tree()
        entries = load_baseline(default_baseline_path())
        comparison = compare(report.findings, entries)
        assert not comparison.new_findings, (
            "contract findings in src/ not covered by LINT_BASELINE.json "
            "(fix them, or baseline them with a justification):\n"
            + "\n".join(f.render() for f in comparison.new_findings)
        )
        assert not comparison.stale_entries, (
            "stale LINT_BASELINE.json entries (the finding was fixed — "
            "remove the tolerance):\n"
            + "\n".join(e.rule + " " + e.path for e in comparison.stale_entries)
        )

    def test_committed_baseline_is_valid(self):
        # Must parse under the strict loader (justifications mandatory).
        load_baseline(default_baseline_path())

    def test_grandfathered_noqa_sites_are_load_bearing(self):
        """Stripping any committed noqa marker must surface a finding.

        This is the acceptance property: a grandfathered site is only
        grandfathered *because* of its marker.  We re-lint every file
        that has suppressed findings with the markers removed and check
        each suppressed finding comes back live.
        """
        report = lint_tree()
        assert report.suppressed, (
            "expected at least one justified noqa site in src/ "
            "(the latency-measurement clocks)"
        )
        by_file = {}
        for finding in report.suppressed:
            by_file.setdefault(finding.path, []).append(finding)
        src_root = REPO_ROOT / "src"
        for rel_path, suppressed in by_file.items():
            text = (src_root / rel_path).read_text(encoding="utf-8")
            stripped = "\n".join(
                line.split("# repro: noqa")[0].rstrip()
                if "# repro: noqa" in line
                else line
                for line in text.splitlines()
            )
            live = lint_source(stripped, rel_path)
            live_keys = {(f.rule, f.line) for f in live.findings}
            for finding in suppressed:
                assert (finding.rule, finding.line) in live_keys, (
                    f"noqa at {finding.location()} suppresses nothing "
                    "(stale marker?)"
                )


# ----------------------------------------------------------------------
# ENV001 — env access outside the knob registry
# ----------------------------------------------------------------------
class TestEnvRegistryRule:
    def test_environ_read_flagged(self):
        report = findings_of(
            """
            import os
            FLAG = os.environ.get("REPRO_TRACE")
            """,
            "repro/store/workqueue.py",
        )
        assert rule_ids(report) == ["ENV001"]
        assert "os.environ" in report.findings[0].message

    def test_getenv_flagged_once_per_site(self):
        report = findings_of(
            """
            import os
            A = os.getenv("REPRO_TRACE")
            B = os.environ["REPRO_TRACE"]
            """,
            "repro/engine/engine.py",
        )
        assert rule_ids(report) == ["ENV001", "ENV001"]

    def test_from_import_alias_flagged(self):
        report = findings_of(
            """
            from os import environ as env_table
            VALUE = env_table.get("REPRO_POOL_RETRIES")
            """,
            "repro/core/solver.py",
        )
        assert rule_ids(report) == ["ENV001"]

    def test_registry_and_faults_modules_are_allowed(self):
        snippet = """
            import os
            RAW = os.environ.get("REPRO_FAULT_INJECT", "")
            """
        for allowed in ("repro/obs/env.py", "repro/store/faults.py"):
            assert findings_of(snippet, allowed).findings == []

    def test_unrelated_os_usage_clean(self):
        report = findings_of(
            """
            import os
            HERE = os.path.dirname(__file__)
            CPUS = os.sched_getaffinity(0)
            """,
            "repro/store/parallel.py",
        )
        assert report.findings == []

    def test_noqa_suppression_honoured(self):
        report = findings_of(
            """
            import os
            RAW = os.environ.get("HOME")  # repro: noqa[ENV001]
            """,
            "repro/io/reports.py",
        )
        assert report.findings == []
        assert rule_ids_suppressed(report) == ["ENV001"]


def rule_ids_suppressed(report) -> list:
    return [finding.rule for finding in report.suppressed]


# ----------------------------------------------------------------------
# EXC001 — silent broad-except swallows
# ----------------------------------------------------------------------
class TestSilentSwallowRule:
    @pytest.mark.parametrize(
        "body, kind",
        [("pass", "pass"), ("...", "..."), ("continue", "continue")],
    )
    def test_trivial_bodies_flagged(self, body, kind):
        loop_wrap = body == "continue"
        inner = f"""
            try:
                risky()
            except Exception:
                {body}
        """
        code = (
            "def f():\n    for _ in range(3):\n" + textwrap.indent(textwrap.dedent(inner), "        ")
            if loop_wrap
            else "def f():\n" + textwrap.indent(textwrap.dedent(inner), "    ")
        )
        report = lint_source(code, "repro/datalog/evaluation.py")
        assert rule_ids(report) == ["EXC001"]
        assert report.findings[0].detail["body_kind"] == kind

    def test_bare_except_flagged(self):
        report = findings_of(
            """
            def f():
                try:
                    risky()
                except:
                    pass
            """,
            "repro/core/solver.py",
        )
        assert rule_ids(report) == ["EXC001"]

    def test_tuple_containing_exception_flagged(self):
        report = findings_of(
            """
            def f():
                try:
                    risky()
                except (ValueError, Exception):
                    pass
            """,
            "repro/core/solver.py",
        )
        assert rule_ids(report) == ["EXC001"]

    def test_recording_handler_clean(self):
        report = findings_of(
            """
            def f(stats):
                try:
                    risky()
                except Exception:
                    stats["swallowed"] += 1
            """,
            "repro/core/solver.py",
        )
        assert report.findings == []

    def test_narrowed_type_clean(self):
        report = findings_of(
            """
            def f():
                try:
                    risky()
                except ValueError:
                    pass
            """,
            "repro/core/solver.py",
        )
        assert report.findings == []

    def test_noqa_suppression_honoured(self):
        report = findings_of(
            """
            def f():
                try:
                    risky()
                except Exception:  # repro: noqa[EXC001]
                    ...
            """,
            "repro/core/solver.py",
        )
        assert report.findings == []
        assert rule_ids_suppressed(report) == ["EXC001"]


# ----------------------------------------------------------------------
# ITER001 — unordered iteration in the deterministic fold paths
# ----------------------------------------------------------------------
class TestNondeterministicIterationRule:
    FOLD_PATH = "repro/store/workqueue.py"

    def test_for_over_set_call_flagged(self):
        report = findings_of(
            """
            def fold(items):
                out = []
                for item in set(items):
                    out.append(item)
                return out
            """,
            self.FOLD_PATH,
        )
        assert rule_ids(report) == ["ITER001"]

    def test_for_over_set_literal_flagged(self):
        report = findings_of(
            """
            def fold(a, b):
                for item in {a, b}:
                    handle(item)
            """,
            self.FOLD_PATH,
        )
        assert rule_ids(report) == ["ITER001"]

    def test_list_of_set_method_flagged(self):
        report = findings_of(
            """
            def fold(seen, new):
                return list(seen.intersection(new))
            """,
            self.FOLD_PATH,
        )
        assert rule_ids(report) == ["ITER001"]

    def test_ordered_comprehension_over_setcomp_flagged(self):
        report = findings_of(
            """
            def fold(items):
                return [x for x in {i.key for i in items}]
            """,
            self.FOLD_PATH,
        )
        assert rule_ids(report) == ["ITER001"]

    def test_keyed_min_over_set_flagged(self):
        report = findings_of(
            """
            def pick(candidates):
                return min(set(candidates), key=lambda c: c.cost)
            """,
            self.FOLD_PATH,
        )
        assert rule_ids(report) == ["ITER001"]

    def test_sorted_wrapping_clean(self):
        report = findings_of(
            """
            def fold(items, seen, new):
                out = []
                for item in sorted(set(items)):
                    out.append(item)
                out.extend(sorted(seen.intersection(new)))
                return min(sorted(set(items)), key=lambda c: c.cost)
            """,
            self.FOLD_PATH,
        )
        assert report.findings == []

    def test_unkeyed_min_over_set_clean(self):
        # min() of a value set is order-insensitive without a key.
        report = findings_of(
            """
            def pick(candidates):
                return min(set(candidates))
            """,
            self.FOLD_PATH,
        )
        assert report.findings == []

    def test_outside_fold_paths_not_scoped(self):
        report = findings_of(
            """
            def helper(items):
                return [x for x in set(items)]
            """,
            "repro/workloads/generators.py",
        )
        assert report.findings == []

    def test_noqa_suppression_honoured(self):
        report = findings_of(
            """
            def fold(counters):
                total = 0
                for value in set(counters):  # repro: noqa[ITER001] sum is commutative
                    total += value
                return total
            """,
            self.FOLD_PATH,
        )
        assert report.findings == []
        assert rule_ids_suppressed(report) == ["ITER001"]


# ----------------------------------------------------------------------
# TIME001 — wall-clock / entropy isolation
# ----------------------------------------------------------------------
class TestWallClockRule:
    def test_time_time_flagged(self):
        report = findings_of(
            """
            import time
            def stamp():
                return time.time()
            """,
            "repro/engine/engine.py",
        )
        assert rule_ids(report) == ["TIME001"]
        assert "time.time" in report.findings[0].message

    def test_from_import_flagged(self):
        report = findings_of(
            """
            from time import perf_counter
            def stamp():
                return perf_counter()
            """,
            "repro/automata/emptiness.py",
        )
        assert rule_ids(report) == ["TIME001"]

    def test_bare_reference_as_default_flagged(self):
        # Passing the clock function itself pins wall-clock behaviour.
        report = findings_of(
            """
            import time
            def run(clock=time.monotonic):
                return clock()
            """,
            "repro/core/solver.py",
        )
        assert rule_ids(report) == ["TIME001"]

    def test_datetime_now_flagged(self):
        report = findings_of(
            """
            from datetime import datetime
            def stamp():
                return datetime.now()
            """,
            "repro/io/reports.py",
        )
        assert rule_ids(report) == ["TIME001"]

    def test_module_level_random_flagged(self):
        report = findings_of(
            """
            import random
            def jitter():
                return random.random()
            """,
            "repro/store/workqueue.py",
        )
        assert rule_ids(report) == ["TIME001"]

    def test_seeded_random_instance_clean(self):
        report = findings_of(
            """
            import random
            def make_rng(seed):
                return random.Random(seed)
            """,
            "repro/workloads/generators.py",
        )
        assert report.findings == []

    def test_allowed_modules_clean(self):
        snippet = """
            import time
            def now():
                return time.monotonic()
            """
        for allowed in (
            "repro/core/budget.py",
            "repro/store/faults.py",
            "repro/obs/trace.py",
        ):
            assert findings_of(snippet, allowed).findings == []

    def test_time_sleep_clean(self):
        # Backoff sleeps change latency, never verdicts.
        report = findings_of(
            """
            import time
            def backoff(attempt):
                time.sleep(0.01 * attempt)
            """,
            "repro/store/workqueue.py",
        )
        assert report.findings == []

    def test_noqa_suppression_honoured(self):
        report = findings_of(
            """
            import time
            def profile():
                return time.perf_counter()  # repro: noqa[TIME001] latency only
            """,
            "repro/engine/engine.py",
        )
        assert report.findings == []
        assert rule_ids_suppressed(report) == ["TIME001"]


# ----------------------------------------------------------------------
# PKL001 — payload picklability
# ----------------------------------------------------------------------
class TestPayloadPicklabilityRule:
    PAYLOAD_PATH = "repro/automata/emptiness.py"

    def test_lambda_field_default_flagged(self):
        report = findings_of(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class SubtreeItem:
                states: tuple
                scorer = lambda self: 0
            """,
            self.PAYLOAD_PATH,
        )
        assert rule_ids(report) == ["PKL001"]
        assert "lambda" in report.findings[0].message

    def test_lock_field_flagged(self):
        report = findings_of(
            """
            import threading
            from dataclasses import dataclass

            @dataclass
            class ResumeFrontier:
                guard = threading.Lock()
            """,
            self.PAYLOAD_PATH,
        )
        assert rule_ids(report) == ["PKL001"]
        assert "lock" in report.findings[0].message

    def test_generator_assigned_in_init_flagged(self):
        report = findings_of(
            """
            class ChainOutcome:
                def __init__(self, items):
                    self.pending = (item for item in items)
            """,
            self.PAYLOAD_PATH,
        )
        assert rule_ids(report) == ["PKL001"]

    def test_open_handle_via_field_default_factory_flagged(self):
        report = findings_of(
            """
            from dataclasses import dataclass, field

            @dataclass
            class SubtreeOutcome:
                log = field(default_factory=lambda: open("/tmp/x", "w"))
            """,
            self.PAYLOAD_PATH,
        )
        assert rule_ids(report) == ["PKL001"]
        assert "file handle" in report.findings[0].message

    def test_plain_data_fields_clean(self):
        report = findings_of(
            """
            from dataclasses import dataclass, field
            from typing import Dict, Tuple

            @dataclass(frozen=True)
            class SubtreeItem:
                states: Tuple[str, ...]
                budget: int = 0
                stats: Dict[str, int] = field(default_factory=dict)
            """,
            self.PAYLOAD_PATH,
        )
        assert report.findings == []

    def test_non_payload_class_not_scoped(self):
        report = findings_of(
            """
            class ScratchHelper:
                fn = lambda self: 0
            """,
            self.PAYLOAD_PATH,
        )
        assert report.findings == []

    def test_other_module_not_scoped(self):
        report = findings_of(
            """
            class SubtreeItem:
                fn = lambda self: 0
            """,
            "repro/workloads/generators.py",
        )
        assert report.findings == []

    def test_noqa_suppression_honoured(self):
        report = findings_of(
            """
            class SpanRecord:
                def __init__(self):
                    self.finalizer = lambda: None  # repro: noqa[PKL001]
            """,
            "repro/obs/trace.py",
        )
        assert report.findings == []
        assert rule_ids_suppressed(report) == ["PKL001"]


# ----------------------------------------------------------------------
# DEF001 — mutable default arguments
# ----------------------------------------------------------------------
class TestMutableDefaultRule:
    @pytest.mark.parametrize(
        "default", ["[]", "{}", "set()", "dict()", "list()", "[x for x in ()]"]
    )
    def test_mutable_defaults_flagged(self, default):
        report = findings_of(
            f"""
            def f(a, b={default}):
                return a, b
            """,
            "repro/core/solver.py",
        )
        assert rule_ids(report) == ["DEF001"]

    def test_keyword_only_default_flagged(self):
        report = findings_of(
            """
            def f(a, *, registry={}):
                return registry
            """,
            "repro/core/solver.py",
        )
        assert rule_ids(report) == ["DEF001"]

    def test_immutable_defaults_clean(self):
        report = findings_of(
            """
            def f(a=(), b=frozenset(), c=None, d="x", e=0):
                return a, b, c, d, e
            """,
            "repro/core/solver.py",
        )
        assert report.findings == []

    def test_noqa_suppression_honoured(self):
        report = findings_of(
            """
            def f(a, cache={}):  # repro: noqa[DEF001]
                return cache
            """,
            "repro/core/solver.py",
        )
        assert report.findings == []
        assert rule_ids_suppressed(report) == ["DEF001"]


# ----------------------------------------------------------------------
# FPR001 — fingerprint purity
# ----------------------------------------------------------------------
class TestFingerprintPurityRule:
    def test_id_in_fingerprint_function_flagged(self):
        report = findings_of(
            """
            class Snapshot:
                def fingerprint(self):
                    return (id(self), self.generation)
            """,
            "repro/store/snapshot.py",
        )
        assert rule_ids(report) == ["FPR001"]

    def test_id_in_key_helper_flagged(self):
        report = findings_of(
            """
            def try_key(payload):
                return ("task", id(payload))
            """,
            "repro/engine/reduction.py",
        )
        assert rule_ids(report) == ["FPR001"]

    def test_id_outside_key_functions_clean(self):
        # Scope-local caches keyed on id() are legal.
        report = findings_of(
            """
            def memo_lookup(cache, rule):
                return cache.get(id(rule))
            """,
            "repro/engine/engine.py",
        )
        assert report.findings == []

    def test_other_modules_not_scoped(self):
        report = findings_of(
            """
            def cache_key(sentence):
                return id(sentence)
            """,
            "repro/automata/emptiness.py",
        )
        assert report.findings == []

    def test_content_keys_clean(self):
        report = findings_of(
            """
            def fingerprint(snapshot):
                return ("snap", snapshot.content_hash())
            """,
            "repro/store/snapshot.py",
        )
        assert report.findings == []

    def test_noqa_suppression_honoured(self):
        report = findings_of(
            """
            def fingerprint(snapshot):
                return id(snapshot)  # repro: noqa[FPR001]
            """,
            "repro/store/snapshot.py",
        )
        assert report.findings == []
        assert rule_ids_suppressed(report) == ["FPR001"]


# ----------------------------------------------------------------------
# PRN001 — bare prints
# ----------------------------------------------------------------------
class TestBarePrintRule:
    def test_print_flagged(self):
        report = findings_of(
            """
            def debug(value):
                print("got", value)
            """,
            "repro/store/workqueue.py",
        )
        assert rule_ids(report) == ["PRN001"]

    def test_cli_and_lint_driver_allowed(self):
        snippet = """
            def emit(value):
                print(value)
            """
        for allowed in ("repro/cli.py", "repro/analysis/driver.py"):
            assert findings_of(snippet, allowed).findings == []

    def test_docstring_mention_clean(self):
        report = findings_of(
            '''
            def f():
                """Example::

                    print(f())
                """
                return 1
            ''',
            "repro/core/solver.py",
        )
        assert report.findings == []

    def test_noqa_suppression_honoured(self):
        report = findings_of(
            """
            def emit(value):
                print(value)  # repro: noqa[PRN001]
            """,
            "repro/io/reports.py",
        )
        assert report.findings == []
        assert rule_ids_suppressed(report) == ["PRN001"]


# ----------------------------------------------------------------------
# SQL002 — SQL text outside the codegen chokepoint / interpolated SQL
# ----------------------------------------------------------------------
class TestSqlChokepointRule:
    CODEGEN = "repro/store/sqlcodegen.py"

    def test_sql_text_outside_codegen_flagged(self):
        report = findings_of(
            """
            def fetch(conn, name):
                return conn.execute("SELECT c0 FROM t WHERE c0 = ?", (name,))
            """,
            "repro/store/sqlstore.py",
        )
        assert rule_ids(report) == ["SQL002"]

    def test_fstring_sql_outside_codegen_flagged(self):
        report = findings_of(
            """
            def drop(conn, table):
                conn.execute(f"DROP TABLE {table}")
            """,
            "repro/engine/engine.py",
        )
        assert rule_ids(report) == ["SQL002"]

    def test_docstring_sql_clean(self):
        report = findings_of(
            '''
            def layout():
                """SELECT statements are compiled in sqlcodegen; see there."""
                return None
            ''',
            "repro/store/sqlstore.py",
        )
        assert report.findings == []

    def test_lowercase_prose_clean(self):
        report = findings_of(
            """
            MESSAGE = "select a backend with REPRO_STORE_BACKEND"
            HINT = "update the baseline before committing"
            """,
            "repro/obs/env.py",
        )
        assert report.findings == []

    def test_join_assembly_inside_codegen_clean(self):
        report = findings_of(
            """
            def select_sql(table):
                return " ".join(["SELECT c0 FROM", table, "WHERE c0 = ?"])
            """,
            self.CODEGEN,
        )
        assert report.findings == []

    def test_fstring_sql_inside_codegen_flagged(self):
        report = findings_of(
            """
            def select_sql(table):
                return f"SELECT c0 FROM {table}"
            """,
            self.CODEGEN,
        )
        assert rule_ids(report) == ["SQL002"]

    def test_concat_and_format_sql_inside_codegen_flagged(self):
        report = findings_of(
            """
            def bad(table, value):
                a = "SELECT c0 FROM " + table
                b = "DELETE FROM %s" % table
                c = "UPDATE {} SET c0 = 1".format(table)
                return a, b, c
            """,
            self.CODEGEN,
        )
        assert rule_ids(report) == ["SQL002", "SQL002", "SQL002"]

    def test_non_sql_concat_inside_codegen_clean(self):
        report = findings_of(
            """
            def quote_ident(name):
                return '"' + name.replace('"', '""') + '"'
            """,
            self.CODEGEN,
        )
        assert report.findings == []

    def test_noqa_suppression_honoured(self):
        report = findings_of(
            """
            def fetch(conn):
                return conn.execute("SELECT 1")  # repro: noqa[SQL002]
            """,
            "repro/store/verdict_cache.py",
        )
        assert report.findings == []
        assert rule_ids_suppressed(report) == ["SQL002"]


# ----------------------------------------------------------------------
# Suppression semantics
# ----------------------------------------------------------------------
class TestSuppressions:
    SNIPPET = """
        import os
        RAW = os.environ.get("HOME"){marker}
        """

    def _with(self, marker: str):
        return findings_of(self.SNIPPET.format(marker=marker), "repro/io/reports.py")

    def test_wrong_rule_id_does_not_suppress(self):
        report = self._with("  # repro: noqa[TIME001]")
        assert rule_ids(report) == ["ENV001"]

    def test_bare_marker_suppresses_everything(self):
        report = self._with("  # repro: noqa")
        assert report.findings == []

    def test_multiple_ids_parse(self):
        report = self._with("  # repro: noqa[TIME001, ENV001]")
        assert report.findings == []

    def test_plain_flake8_noqa_is_ignored(self):
        report = self._with("  # noqa")
        assert rule_ids(report) == ["ENV001"]


# ----------------------------------------------------------------------
# Baseline mechanics
# ----------------------------------------------------------------------
class TestBaseline:
    def _finding_report(self):
        return findings_of(
            """
            import os
            A = os.environ.get("X")
            B = os.environ.get("Y")
            """,
            "repro/io/reports.py",
        )

    def test_matching_entries_absorb_findings(self):
        report = self._finding_report()
        entries = [
            BaselineEntry(f.rule, f.path, f.message, "grandfathered in test")
            for f in report.findings
        ]
        comparison = compare(report.findings, entries)
        assert comparison.clean
        assert len(comparison.matched) == 2

    def test_unbaselined_finding_is_new(self):
        report = self._finding_report()
        entries = [
            BaselineEntry(
                report.findings[0].rule,
                report.findings[0].path,
                report.findings[0].message,
                "one of two",
            )
        ]
        comparison = compare(report.findings, entries)
        # Same (rule, path, message) twice: one entry absorbs one finding.
        assert len(comparison.matched) == 1
        assert len(comparison.new_findings) == 1
        assert not comparison.stale_entries

    def test_stale_entry_detected(self):
        entries = [
            BaselineEntry("ENV001", "repro/gone.py", "direct environment access", "old")
        ]
        comparison = compare([], entries)
        assert not comparison.clean
        assert comparison.stale_entries == tuple(entries)

    def test_loader_requires_justification(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                [{"rule": "ENV001", "path": "repro/x.py", "message": "m"}]
            )
        )
        with pytest.raises(BaselineError, match="justification"):
            load_baseline(path)

    def test_loader_rejects_non_list(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"rule": "ENV001"}')
        with pytest.raises(BaselineError, match="JSON list"):
            load_baseline(path)

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == []

    def test_write_then_load_round_trip(self, tmp_path):
        report = self._finding_report()
        path = tmp_path / "baseline.json"
        write_baseline(report.findings, path)
        entries = load_baseline(path)
        assert compare(report.findings, entries).clean


# ----------------------------------------------------------------------
# Driver exit-code contract (0 clean / 1 findings / 2 internal error)
# ----------------------------------------------------------------------
class TestDriverContract:
    def _make_tree(self, tmp_path: Path, source: str) -> Path:
        package = tmp_path / "srcroot" / "repro"
        package.mkdir(parents=True)
        (package / "__init__.py").write_text("")
        (package / "module.py").write_text(textwrap.dedent(source))
        return tmp_path / "srcroot"

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        root = self._make_tree(tmp_path, "VALUE = 1\n")
        code = lint_run(
            ["--root", str(root), "--baseline", str(tmp_path / "none.json")]
        )
        assert code == 0
        assert "OK:" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        root = self._make_tree(
            tmp_path,
            """
            import os
            RAW = os.environ.get("X")
            """,
        )
        code = lint_run(
            ["--root", str(root), "--baseline", str(tmp_path / "none.json")]
        )
        assert code == 1
        assert "ENV001" in capsys.readouterr().out

    def test_exit_one_on_stale_baseline(self, tmp_path, capsys):
        root = self._make_tree(tmp_path, "VALUE = 1\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                [
                    {
                        "rule": "ENV001",
                        "path": "repro/module.py",
                        "message": "gone",
                        "justification": "was fixed",
                    }
                ]
            )
        )
        code = lint_run(["--root", str(root), "--baseline", str(baseline)])
        assert code == 1
        assert "stale" in capsys.readouterr().out

    def test_exit_two_on_unparsable_source(self, tmp_path, capsys):
        root = self._make_tree(tmp_path, "def broken(:\n")
        code = lint_run(
            ["--root", str(root), "--baseline", str(tmp_path / "none.json")]
        )
        assert code == 2
        assert "internal error" in capsys.readouterr().out

    def test_exit_two_on_malformed_baseline(self, tmp_path, capsys):
        root = self._make_tree(tmp_path, "VALUE = 1\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text("not json at all {")
        code = lint_run(["--root", str(root), "--baseline", str(baseline)])
        assert code == 2

    def test_exit_two_on_unknown_explain(self, capsys):
        assert lint_run(["--explain", "NOPE999"]) == 2

    def test_explain_prints_catalogue_entry(self, capsys):
        assert lint_run(["--explain", "ENV001"]) == 0
        out = capsys.readouterr().out
        assert "ENV001" in out
        assert "invariant" in out
        assert "motivation" in out

    def test_explain_all_covers_every_rule(self, capsys):
        assert lint_run(["--explain", "all"]) == 0
        out = capsys.readouterr().out
        for rule_id in EXPECTED_RULE_IDS:
            assert rule_id in out

    def test_update_baseline_writes_skeleton(self, tmp_path, capsys):
        root = self._make_tree(
            tmp_path,
            """
            import os
            RAW = os.environ.get("X")
            """,
        )
        baseline = tmp_path / "baseline.json"
        code = lint_run(
            ["--root", str(root), "--baseline", str(baseline), "--update-baseline"]
        )
        assert code == 0
        entries = load_baseline(baseline)
        assert len(entries) == 1
        assert entries[0].rule == "ENV001"
        # The skeleton is accepted and the follow-up run is clean.
        assert lint_run(["--root", str(root), "--baseline", str(baseline)]) == 0
