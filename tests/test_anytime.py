"""Tests for the anytime decision layer (PR 6).

Three load-bearing properties:

* **soundness** — a budget never changes a completed verdict; on expiry
  the procedures return *tagged* partial results (``unknown`` emptiness
  verdicts with a resume frontier, ``interrupted`` bounded checks), never
  a silently wrong answer;
* **resumability** — ``automaton_emptiness(resume_from=frontier)``
  continues exactly where the interrupted call stopped: the resumed
  result is field-identical to the uninterrupted run, including across
  pickle round-trips of the frontier and across chains of many
  interrupt/resume hops;
* **determinism** — node-cap expiry happens at exact work-item
  boundaries, so interruption points are reproducible (which is what
  makes the resume property testable at all).

The engine-level tests pin the batch semantics: budget-aware kinds
(emptiness, bounded check) always run — even on an expired clock — and
come back tagged; other kinds are skipped with provenance ``"deadline"``;
partial values are never memoized; an explicit per-task budget is part of
the fingerprint so capped and uncapped requests never collide.
"""

from __future__ import annotations

import pickle

import pytest

from repro.automata.emptiness import (
    EmptinessResult,
    ResumeFrontier,
    automaton_emptiness,
)
from repro.automata.library import containment_automaton, ltr_automaton
from repro.core import properties
from repro.core.bounded_check import (
    Bounds,
    bounded_satisfiability,
    bounded_satisfiability_legacy,
)
from repro.core.budget import INTERRUPT_STRIDE, Budget, BudgetExpired
from repro.core.solver import AccLTLSolver
from repro.engine import DecisionEngine, bounded_check_task, emptiness_task
from repro.engine.engine import relevance_task
from repro.workloads.directory import (
    directory_access_schema,
    join_query,
    resident_names_query,
)
from repro.workloads.scenarios import standard_scenarios


class FakeClock:
    """A manually advanced wall clock for deterministic deadline tests."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# Budget / BudgetClock unit behaviour
# ---------------------------------------------------------------------------
class TestBudget:
    def test_default_budget_is_unbounded_and_never_expires(self):
        clock = Budget().start(FakeClock())
        clock.charge(10**9)
        assert Budget().unbounded
        assert not clock.expired()
        assert clock.remaining_s() is None

    def test_node_cap_expires_at_exact_boundary(self):
        clock = Budget(node_cap=5).start(FakeClock())
        clock.charge(4)
        assert not clock.expired()
        clock.charge(1)
        assert clock.node_cap_hit()
        assert clock.expired()
        assert clock.charged == 5

    def test_deadline_uses_injected_clock(self):
        fake = FakeClock()
        clock = Budget(deadline_s=2.0).start(fake)
        assert not clock.deadline_hit()
        assert clock.remaining_s() == pytest.approx(2.0)
        fake.advance(1.5)
        assert clock.remaining_s() == pytest.approx(0.5)
        fake.advance(1.0)
        assert clock.deadline_hit()
        assert clock.remaining_s() == 0.0

    def test_remaining_budget_subtracts_charged_work(self):
        fake = FakeClock()
        clock = Budget(deadline_s=4.0, node_cap=10).start(fake)
        fake.advance(1.0)
        clock.charge(3)
        remaining = clock.remaining_budget()
        assert remaining == Budget(deadline_s=pytest.approx(3.0), node_cap=7)
        clock.charge(100)
        assert clock.remaining_budget().node_cap == 0

    def test_interrupt_check_raises_on_stride_boundary_only(self):
        fake = FakeClock()
        clock = Budget(deadline_s=0.0).start(fake)
        fake.advance(1.0)  # deadline already past
        for _ in range(INTERRUPT_STRIDE - 1):
            clock.interrupt_check()  # off-stride calls never raise
        with pytest.raises(BudgetExpired):
            clock.interrupt_check()

    def test_budget_is_hashable_and_picklable(self):
        budget = Budget(deadline_s=1.5, node_cap=7)
        assert hash(budget) == hash(Budget(deadline_s=1.5, node_cap=7))
        assert pickle.loads(pickle.dumps(budget)) == budget


# ---------------------------------------------------------------------------
# Budgeted bounded satisfiability
# ---------------------------------------------------------------------------
def _bounded_check_workload():
    scenario = next(s for s in standard_scenarios() if s.name == "directory")
    vocabulary = AccLTLSolver(scenario.access_schema).vocabulary
    formula = properties.ltr_formula(
        vocabulary, scenario.probe_access, scenario.query_one
    )
    return vocabulary, formula, Bounds(max_path_length=3, max_paths=2000)


class TestBoundedCheckBudget:
    def test_node_cap_interrupts_at_exactly_cap_paths(self):
        vocabulary, formula, bounds = _bounded_check_workload()
        result = bounded_satisfiability_legacy(
            vocabulary, formula, bounds, budget=Budget(node_cap=5)
        )
        assert result.interrupted
        assert not result.satisfiable
        assert result.witness is None
        assert not result.exhausted
        assert result.paths_explored == 5

    def test_zero_deadline_interrupts_before_any_path(self):
        vocabulary, formula, bounds = _bounded_check_workload()
        result = bounded_satisfiability_legacy(
            vocabulary, formula, bounds, budget=Budget(deadline_s=0.0)
        )
        assert result.interrupted
        assert result.paths_explored == 0

    def test_huge_budget_is_field_identical_to_unbudgeted(self):
        vocabulary, formula, bounds = _bounded_check_workload()
        plain = bounded_satisfiability_legacy(vocabulary, formula, bounds)
        budgeted = bounded_satisfiability_legacy(
            vocabulary, formula, bounds, budget=Budget(deadline_s=3600, node_cap=10**9)
        )
        assert budgeted == plain
        assert not budgeted.interrupted

    def test_wrapper_threads_budget_through_engine(self):
        vocabulary, formula, bounds = _bounded_check_workload()
        result = bounded_satisfiability(
            vocabulary, formula, bounds, budget=Budget(node_cap=3)
        )
        assert result.interrupted
        assert result.paths_explored == 3


# ---------------------------------------------------------------------------
# Anytime emptiness: UNKNOWN verdicts and resumable frontiers
# ---------------------------------------------------------------------------
NONEMPTY = "nonempty_ltr"
EMPTY = "empty_containment"


def _emptiness_workload(name):
    directory = directory_access_schema()
    vocab = AccLTLSolver(directory).vocabulary
    if name == NONEMPTY:
        probe = directory.access("AcM1", ("Smith",))
        automaton = ltr_automaton(vocab, probe, join_query())
    else:
        automaton = containment_automaton(
            vocab, join_query(), resident_names_query(), grounded=False
        )
    return automaton, vocab


class TestAnytimeEmptiness:
    def test_node_cap_returns_tagged_unknown_with_frontier(self):
        automaton, vocab = _emptiness_workload(NONEMPTY)
        result = automaton_emptiness(automaton, vocab, budget=Budget(node_cap=1))
        assert isinstance(result, EmptinessResult)
        assert result.unknown
        assert result.verdict == "UNKNOWN"
        assert result.frontier is not None
        assert not result.exhausted
        assert result.witness is None

    def test_completed_budgeted_run_is_not_unknown(self):
        automaton, vocab = _emptiness_workload(NONEMPTY)
        result = automaton_emptiness(
            automaton, vocab, budget=Budget(node_cap=10**9)
        )
        assert not result.unknown
        assert result.frontier is None

    def test_frontier_pickle_round_trip_resumes_identically(self):
        automaton, vocab = _emptiness_workload(NONEMPTY)
        kwargs = dict(memoize=False)
        oracle = automaton_emptiness(automaton, vocab, **kwargs)
        unknown = automaton_emptiness(
            automaton, vocab, budget=Budget(node_cap=1), **kwargs
        )
        assert unknown.unknown
        frontier = pickle.loads(pickle.dumps(unknown.frontier))
        assert isinstance(frontier, ResumeFrontier)
        resumed = automaton_emptiness(
            automaton, vocab, resume_from=frontier, **kwargs
        )
        assert resumed == oracle
        assert not resumed.unknown

    @pytest.mark.parametrize("workload", [NONEMPTY, EMPTY])
    @pytest.mark.parametrize("memoize", [False, True])
    def test_resume_matches_uninterrupted_run(self, workload, memoize):
        """The tentpole property: interrupt anywhere, resume, get the
        field-identical uninterrupted result."""
        automaton, vocab = _emptiness_workload(workload)
        kwargs = dict(memoize=memoize)
        oracle = automaton_emptiness(automaton, vocab, **kwargs)
        caps = sorted({1, 2, 3, max(1, oracle.paths_explored // 2)})
        for cap in caps:
            partial = automaton_emptiness(
                automaton, vocab, budget=Budget(node_cap=cap), **kwargs
            )
            if not partial.unknown:
                # cap exceeded the whole search: must equal the oracle
                assert partial == oracle
                continue
            resumed = automaton_emptiness(
                automaton, vocab, resume_from=partial.frontier, **kwargs
            )
            assert resumed == oracle, (workload, memoize, cap)
            assert resumed.verdict == oracle.verdict

    @pytest.mark.parametrize("workload", [NONEMPTY, EMPTY])
    def test_chained_resume_hops_reach_the_oracle(self, workload):
        """Resuming with another tiny budget, repeatedly, still converges
        to the uninterrupted result — no work is lost or repeated across
        an arbitrary number of interruptions."""
        automaton, vocab = _emptiness_workload(workload)
        # The Datalog precheck can settle the EMPTY workload before the
        # search charges a single node; disable it so every hop does work.
        kwargs = dict(memoize=False, use_datalog_precheck=False)
        oracle = automaton_emptiness(automaton, vocab, **kwargs)
        result = automaton_emptiness(
            automaton, vocab, budget=Budget(node_cap=1), **kwargs
        )
        hops = 0
        while result.unknown:
            hops += 1
            assert hops <= 4 * oracle.paths_explored + 200
            result = automaton_emptiness(
                automaton,
                vocab,
                resume_from=result.frontier,
                budget=Budget(node_cap=1),
                **kwargs,
            )
        assert result == oracle
        assert hops >= 1

    def test_frontier_rejects_mismatched_call(self):
        automaton, vocab = _emptiness_workload(NONEMPTY)
        other, _ = _emptiness_workload(EMPTY)
        unknown = automaton_emptiness(
            automaton, vocab, budget=Budget(node_cap=1), memoize=False
        )
        assert unknown.unknown
        with pytest.raises(ValueError, match="does not match"):
            automaton_emptiness(
                other, vocab, resume_from=unknown.frontier, memoize=False
            )
        with pytest.raises(ValueError, match="does not match"):
            # same automaton, different search parameters
            automaton_emptiness(
                automaton,
                vocab,
                resume_from=unknown.frontier,
                memoize=False,
                max_paths=123,
            )

    def test_zero_deadline_returns_unknown(self):
        automaton, vocab = _emptiness_workload(NONEMPTY)
        result = automaton_emptiness(
            automaton, vocab, budget=Budget(deadline_s=0.0)
        )
        assert result.unknown
        assert result.frontier is not None


# ---------------------------------------------------------------------------
# Engine batch semantics under a budget
# ---------------------------------------------------------------------------
class TestEngineBatchBudget:
    def _bounded_task(self, budget=None):
        vocabulary, formula, bounds = _bounded_check_workload()
        return bounded_check_task(vocabulary, formula, bounds, budget=budget)

    def test_budget_aware_kinds_run_even_on_expired_clock(self):
        engine = DecisionEngine(parallel=False)
        automaton, vocab = _emptiness_workload(NONEMPTY)
        tasks = [
            self._bounded_task(),
            emptiness_task(automaton, vocab, memoize=False),
        ]
        results = engine.run_batch(tasks, budget=Budget(deadline_s=0.0))
        assert results[0].value.interrupted
        assert results[0].provenance == "computed"
        assert results[1].value.unknown
        assert results[1].value.frontier is not None
        assert engine.stats()["deadline_tasks"] == 0

    def test_non_aware_kinds_skip_with_deadline_provenance(self):
        engine = DecisionEngine(parallel=False)
        schema = directory_access_schema()
        access = schema.access("AcM1", ("Smith",))
        task = relevance_task(
            schema, access, join_query(), require_boolean_access=False
        )
        (result,) = engine.run_batch([task], budget=Budget(deadline_s=0.0))
        assert result.value is None
        assert result.provenance == "deadline"
        assert engine.stats()["deadline_tasks"] == 1

    def test_partial_values_are_never_memoized(self):
        engine = DecisionEngine(parallel=False)
        (partial,) = engine.run_batch(
            [self._bounded_task()], budget=Budget(deadline_s=0.0)
        )
        assert partial.value.interrupted
        assert engine.stats()["memo_entries"] == 0
        # the same task re-run without a budget computes the full answer
        (full,) = engine.run_batch([self._bounded_task()])
        assert not full.value.interrupted
        assert full.provenance == "computed"
        assert engine.stats()["memo_entries"] == 1

    def test_explicit_budget_is_part_of_the_fingerprint(self):
        engine = DecisionEngine(parallel=False)
        capped = self._bounded_task(budget=Budget(node_cap=2))
        uncapped = self._bounded_task()
        assert capped.key != uncapped.key
        results = engine.run_batch([capped, uncapped])
        assert engine.stats()["batch_dedup_hits"] == 0
        assert results[0].value.interrupted
        assert not results[1].value.interrupted

    def test_iter_results_yields_memo_hits_first(self):
        engine = DecisionEngine(parallel=False)
        automaton, vocab = _emptiness_workload(NONEMPTY)
        warm = emptiness_task(automaton, vocab, memoize=False)
        engine.run_batch([warm])
        cold = self._bounded_task()
        order = list(engine.iter_results([cold, warm]))
        assert [index for index, _ in order] == [1, 0]
        assert order[0][1].provenance == "memo"
        assert order[1][1].provenance == "computed"

    def test_streaming_dedup_follows_its_leader(self):
        engine = DecisionEngine(parallel=False)
        tasks = [self._bounded_task() for _ in range(3)]
        order = list(engine.iter_results(tasks))
        assert [r.provenance for _, r in order] == ["computed", "dedup", "dedup"]
        assert order[0][1].value == order[1][1].value == order[2][1].value

    def test_generous_batch_budget_changes_nothing(self):
        automaton, vocab = _emptiness_workload(NONEMPTY)
        plain_engine = DecisionEngine(parallel=False)
        budget_engine = DecisionEngine(parallel=False)
        tasks = lambda: [
            self._bounded_task(),
            emptiness_task(automaton, vocab, memoize=False),
        ]
        plain = plain_engine.run_batch(tasks())
        budgeted = budget_engine.run_batch(
            tasks(), budget=Budget(deadline_s=3600.0)
        )
        assert [r.value for r in plain] == [r.value for r in budgeted]
        assert not budgeted[0].value.interrupted
        assert not budgeted[1].value.unknown
