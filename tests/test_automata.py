"""Tests for A-automata: construction, runs, compilation, progressivity, emptiness."""

import pytest

from repro.access.path import path_from_pairs
from repro.automata.aautomaton import AAutomaton, ATransition, AutomatonError, Guard
from repro.automata.compile import compile_accltl_plus
from repro.automata.emptiness import (
    automaton_emptiness,
    datalog_emptiness_precheck,
    guard_to_datalog,
    guard_unsatisfiable_via_datalog,
    prune_unsatisfiable_guards,
)
from repro.automata.library import containment_automaton, ltr_automaton
from repro.automata.progressive import (
    chain_restrictions,
    is_progressive,
    scc_chain,
    strongly_connected_components,
)
from repro.automata.run import accepting_runs, accepts_path, language_subset_on_samples
from repro.core import properties
from repro.core.formulas import EmbeddedSentence, eventually, globally, land, lnot
from repro.core.sat_zeroary import FragmentError
from repro.core.semantics import path_satisfies
from repro.core.transition import path_structures
from repro.core.vocabulary import AccessVocabulary
from repro.queries.parser import parse_cq
from repro.relational.dependencies import DisjointnessConstraint
from repro.workloads.directory import join_query, resident_names_query


@pytest.fixture
def vocab(directory_vocab):
    return directory_vocab


@pytest.fixture
def revealing_path(directory):
    """Address tuple first, then the joining Mobile tuple via AcM1('Smith')."""
    return path_from_pairs(
        directory,
        [
            ("AcM2", ("Parks Rd", "OX13QD"), [("Parks Rd", "OX13QD", "Jones", 16)]),
            ("AcM1", ("Smith",), [("Smith", "OX13QD", "Parks Rd", 5551212)]),
        ],
    )


def _sentence(text):
    return EmbeddedSentence(parse_cq(text))


class TestGuardsAndAutomata:
    def test_negated_guard_must_not_mention_binding(self):
        with pytest.raises(AutomatonError):
            Guard(negated=(_sentence("Q :- IsBind__AcM1(x)"),))

    def test_guard_satisfaction(self, vocab, revealing_path):
        structures = path_structures(vocab, revealing_path)
        guard = Guard(
            positives=(_sentence('Q :- IsBind__AcM1("Smith")'),),
            negated=(_sentence("Q :- Address__post(a, b, c, d), Mobile__pre(a, x, y, z)"),),
        )
        assert not guard.satisfied_by(structures[0])
        assert guard.satisfied_by(structures[1])

    def test_guard_helpers(self):
        guard = Guard(positives=(_sentence("Q :- Mobile__post(a, b, c, d)"),))
        assert not guard.is_trivially_true()
        assert not guard.mentions_binding()
        assert Guard().is_trivially_true()
        assert "Mobile" in str(guard)

    def test_automaton_validation(self):
        with pytest.raises(AutomatonError):
            AAutomaton(states=["a"], initial="missing", accepting=[], transitions=[])
        with pytest.raises(AutomatonError):
            AAutomaton(states=["a"], initial="a", accepting=["b"], transitions=[])
        with pytest.raises(AutomatonError):
            AAutomaton(
                states=["a"],
                initial="a",
                accepting=[],
                transitions=[ATransition("a", Guard(), "b")],
            )

    def test_trim_removes_useless_states(self):
        automaton = AAutomaton(
            states=["i", "useful", "dead"],
            initial="i",
            accepting=["useful"],
            transitions=[
                ATransition("i", Guard(), "useful"),
                ATransition("dead", Guard(), "useful"),
            ],
        )
        trimmed = automaton.trim()
        assert "dead" not in trimmed.states
        assert trimmed.size() == (2, 1)

    def test_trim_of_empty_language(self):
        automaton = AAutomaton(
            states=["i", "x"],
            initial="i",
            accepting=[],
            transitions=[ATransition("i", Guard(), "x")],
        )
        trimmed = automaton.trim()
        assert not trimmed.accepting
        assert trimmed.states == ["i"]


class TestRuns:
    def test_simple_two_state_automaton(self, vocab, revealing_path):
        reveal = Guard(positives=(_sentence("Q :- Mobile__post(a, b, c, d)"),))
        anything = Guard()
        automaton = AAutomaton(
            states=["s0", "s1"],
            initial="s0",
            accepting=["s1"],
            transitions=[
                ATransition("s0", anything, "s0"),
                ATransition("s0", reveal, "s1"),
                ATransition("s1", anything, "s1"),
            ],
        )
        assert accepts_path(automaton, vocab, revealing_path)
        assert not accepts_path(automaton, vocab, revealing_path.prefix(1))
        runs = list(
            accepting_runs(automaton, path_structures(vocab, revealing_path))
        )
        assert runs
        assert all(run[-1].target == "s1" for run in runs)

    def test_empty_path_not_accepted(self, vocab):
        automaton = AAutomaton(
            states=["s0"], initial="s0", accepting=["s0"], transitions=[]
        )
        from repro.access.path import AccessPath

        assert not accepts_path(automaton, vocab, AccessPath(()))


class TestCompilation:
    def test_compiled_automaton_agrees_with_semantics(self, vocab, directory, revealing_path):
        probe = directory.access("AcM1", ("Smith",))
        formula = properties.ltr_formula(vocab, probe, join_query())
        automaton = compile_accltl_plus(formula)
        paths = [
            revealing_path,
            revealing_path.prefix(1),
            path_from_pairs(directory, [("AcM1", ("Smith",), [])]),
            path_from_pairs(
                directory,
                [("AcM1", ("Smith",), [("Smith", "OX13QD", "Parks Rd", 5551212)])],
            ),
        ]
        for path in paths:
            assert accepts_path(automaton, vocab, path) == path_satisfies(
                vocab, path, formula
            )

    def test_compiled_zeroary_formula_agrees(self, vocab, directory):
        formula = properties.access_order_formula(vocab, "AcM2", "AcM1")
        automaton = compile_accltl_plus(formula)
        ok = path_from_pairs(
            directory,
            [("AcM2", ("Parks Rd", "OX13QD"), []), ("AcM1", ("Smith",), [])],
        )
        bad = path_from_pairs(
            directory,
            [("AcM1", ("Smith",), []), ("AcM2", ("Parks Rd", "OX13QD"), [])],
        )
        assert accepts_path(automaton, vocab, ok)
        assert not accepts_path(automaton, vocab, bad)

    def test_compile_rejects_non_binding_positive(self, vocab):
        negative = globally(
            lnot(
                properties.nary_binding_atom(
                    vocab.access_schema.method("AcM1"), ("Smith",)
                )
            )
        )
        with pytest.raises(FragmentError):
            compile_accltl_plus(negative)

    def test_compile_size_is_exponential_in_atoms_at_most(self, vocab, directory):
        probe = directory.access("AcM1", ("Smith",))
        formula = properties.ltr_formula(vocab, probe, join_query())
        automaton = compile_accltl_plus(formula)
        states, transitions = automaton.size()
        atoms = len(formula.atoms())
        assert states <= 2 ** (atoms + 4)
        assert transitions <= states * states


class TestProgressive:
    def test_scc_of_compiled_automaton(self, vocab, directory):
        probe = directory.access("AcM1", ("Smith",))
        automaton = compile_accltl_plus(
            properties.ltr_formula(vocab, probe, join_query())
        )
        components = strongly_connected_components(automaton)
        assert sum(len(c) for c in components) == len(automaton.states)
        condensation = scc_chain(automaton)
        assert len(condensation.components) == len(components)

    def test_chain_restrictions_cover_acceptance(self, vocab, directory):
        probe = directory.access("AcM1", ("Smith",))
        automaton = compile_accltl_plus(
            properties.ltr_formula(vocab, probe, join_query())
        ).trim()
        restrictions = chain_restrictions(automaton)
        assert restrictions
        for restriction in restrictions:
            assert restriction.initial == automaton.initial
            assert set(restriction.accepting) <= set(automaton.accepting)

    def test_hand_built_progressive_automaton(self):
        guard = Guard(positives=(_sentence("Q :- Mobile__post(a, b, c, d)"),))
        automaton = AAutomaton(
            states=["s0", "s1"],
            initial="s0",
            accepting=["s1"],
            transitions=[
                ATransition("s0", Guard(), "s0"),
                ATransition("s0", guard, "s1"),
                ATransition("s1", guard, "s1"),
            ],
        )
        report = is_progressive(automaton)
        assert report.chain_shaped
        assert report.initial_in_first
        assert report.accepting_in_last
        assert report.height == 2
        assert report.progressive

    def test_non_progressive_when_accepting_not_last(self):
        guard = Guard()
        automaton = AAutomaton(
            states=["s0", "s1"],
            initial="s0",
            accepting=["s0"],
            transitions=[ATransition("s0", guard, "s1")],
        )
        report = is_progressive(automaton)
        assert not report.accepting_in_last or report.height == 1


class TestEmptiness:
    def test_nonempty_ltr_automaton(self, vocab, directory):
        probe = directory.access("AcM1", ("Smith",))
        automaton = ltr_automaton(vocab, probe, join_query())
        result = automaton_emptiness(automaton, vocab)
        assert not result.empty
        assert result.witness is not None
        assert accepts_path(automaton, vocab, result.witness)

    def test_empty_containment_automaton_when_contained(self, vocab):
        automaton = containment_automaton(
            vocab, join_query(), resident_names_query(), grounded=False
        )
        result = automaton_emptiness(automaton, vocab)
        assert result.empty

    def test_nonempty_containment_automaton_when_not_contained(self, vocab):
        automaton = containment_automaton(
            vocab, resident_names_query(), join_query(), grounded=False
        )
        result = automaton_emptiness(automaton, vocab)
        assert not result.empty

    def test_disjointness_constraint_can_empty_the_language(self, vocab, directory):
        # Relevance of an Address probe to a query joining Mobile names with
        # Address resident names, under the constraint that the two name
        # columns are disjoint: the join can never be completed.
        query = parse_cq("Q :- Mobile(n, pc, s, p), Address(s2, pc2, n, h)")
        probe = directory.access("AcM1", ("Smith",))
        constrained = ltr_automaton(
            vocab,
            probe,
            query,
            disjointness=[DisjointnessConstraint("Mobile", 0, "Address", 2)],
        )
        unconstrained = ltr_automaton(vocab, probe, query)
        assert not automaton_emptiness(unconstrained, vocab).empty
        assert automaton_emptiness(constrained, vocab, max_paths=20000).empty

    def test_no_accepting_state_is_empty(self, vocab):
        automaton = AAutomaton(
            states=["s0"], initial="s0", accepting=[], transitions=[]
        )
        result = automaton_emptiness(automaton, vocab)
        assert result.empty
        assert result.exhausted


class TestDatalogConnection:
    def test_guard_to_datalog_program_structure(self, vocab):
        guard = Guard(
            positives=(
                _sentence("Q :- Mobile__post(a, b, c, d)"),
                _sentence("Q :- Address__pre(a, b, c, d)"),
            )
        )
        program = guard_to_datalog(guard, vocab)
        assert program is not None
        assert program.goal == "GuardHolds"
        assert program.is_nonrecursive()
        assert len(program.rules) == 3

    def test_guard_unsatisfiable_by_containment(self, vocab):
        # Positive part asks for a Mobile__pre tuple; negated part forbids
        # any Mobile__pre tuple: the guard is unsatisfiable.
        guard = Guard(
            positives=(_sentence('Q :- Mobile__pre("Smith", b, c, d)'),),
            negated=(_sentence("Q :- Mobile__pre(a, b, c, d)"),),
        )
        assert guard_unsatisfiable_via_datalog(guard, vocab)

    def test_satisfiable_guard_not_pruned(self, vocab):
        guard = Guard(
            positives=(_sentence("Q :- Mobile__post(a, b, c, d)"),),
            negated=(_sentence("Q :- Address__pre(a, b, c, d)"),),
        )
        assert not guard_unsatisfiable_via_datalog(guard, vocab)

    def test_precheck_proves_emptiness_for_contained_queries(self, vocab):
        automaton = containment_automaton(
            vocab, join_query(), resident_names_query(), grounded=False
        )
        assert datalog_emptiness_precheck(automaton, vocab) is True

    def test_precheck_silent_on_nonempty(self, vocab, directory):
        probe = directory.access("AcM1", ("Smith",))
        automaton = ltr_automaton(vocab, probe, join_query())
        assert datalog_emptiness_precheck(automaton, vocab) is None

    def test_pruning_keeps_language(self, vocab, directory, revealing_path):
        probe = directory.access("AcM1", ("Smith",))
        automaton = ltr_automaton(vocab, probe, join_query())
        pruned = prune_unsatisfiable_guards(automaton, vocab)
        assert accepts_path(pruned, vocab, revealing_path) == accepts_path(
            automaton, vocab, revealing_path
        )


class TestLanguageInclusionSampling:
    def test_compiled_formula_language_included_in_weaker_formula(
        self, vocab, directory, revealing_path
    ):
        stronger = compile_accltl_plus(
            land(
                eventually(properties.relation_nonempty_post(vocab, "Mobile")),
                eventually(properties.relation_nonempty_post(vocab, "Address")),
            )
        )
        weaker = compile_accltl_plus(
            eventually(properties.relation_nonempty_post(vocab, "Mobile"))
        )
        samples = [
            revealing_path,
            revealing_path.prefix(1),
            path_from_pairs(directory, [("AcM1", ("Smith",), [])]),
            path_from_pairs(
                directory,
                [("AcM1", ("Smith",), [("Smith", "OX13QD", "Parks Rd", 5551212)])],
            ),
        ]
        assert language_subset_on_samples(stronger, weaker, vocab, samples)
        assert not language_subset_on_samples(weaker, stronger, vocab, samples)
