"""Tests for closure operations on A-automata (:mod:`repro.automata.operations`)."""

from __future__ import annotations

import pytest

from repro.automata.aautomaton import AAutomaton, ATransition, AutomatonError, Guard
from repro.automata.operations import (
    concatenation_automaton,
    intersection_automaton,
    length_modulo_automaton,
    method_sequence_automaton,
    relabel,
    union_automaton,
)
from repro.automata.run import accepts_path
from repro.core.formulas import EmbeddedSentence
from repro.core.properties import zeroary_binding_atom
from repro.core.vocabulary import AccessVocabulary
from repro.workloads.directory import (
    directory_access_schema,
    directory_hidden_instance,
    directory_vocabulary,
)
from repro.workloads.generators import WorkloadGenerator


@pytest.fixture
def vocab() -> AccessVocabulary:
    return directory_vocabulary()


@pytest.fixture
def sample_paths():
    """A deterministic batch of sample access paths over the directory schema."""
    schema = directory_access_schema()
    hidden = directory_hidden_instance("small")
    generator = WorkloadGenerator(seed=42)
    paths = []
    for length in (1, 1, 2, 2, 3, 3, 4, 5):
        paths.append(generator.access_path(schema, hidden, length=length))
    return paths


def _single_method_automaton(method_name: str) -> AAutomaton:
    """Accepts exactly the length-1 paths using *method_name*."""
    sentence = zeroary_binding_atom(method_name).sentence
    return AAutomaton(
        states=["s0", "s1"],
        initial="s0",
        accepting=["s1"],
        transitions=[ATransition("s0", Guard(positives=(sentence,)), "s1")],
        name=f"one-{method_name}",
    )


def _any_path_automaton() -> AAutomaton:
    """Accepts every non-empty path."""
    return length_modulo_automaton(1, 0, name="any")


# ----------------------------------------------------------------------
# Relabelling
# ----------------------------------------------------------------------
class TestRelabel:
    def test_structure_preserved(self):
        automaton = _single_method_automaton("AcM1")
        renamed = relabel(automaton, "X_")
        assert set(renamed.states) == {"X_s0", "X_s1"}
        assert renamed.initial == "X_s0"
        assert renamed.accepting == frozenset({"X_s1"})
        assert len(renamed.transitions) == 1

    def test_language_preserved(self, vocab, sample_paths):
        automaton = _single_method_automaton("AcM1")
        renamed = relabel(automaton, "Y_")
        for path in sample_paths:
            assert accepts_path(automaton, vocab, path) == accepts_path(
                renamed, vocab, path
            )


# ----------------------------------------------------------------------
# Union
# ----------------------------------------------------------------------
class TestUnion:
    def test_union_is_disjunction_of_languages(self, vocab, sample_paths):
        a1 = _single_method_automaton("AcM1")
        a2 = _single_method_automaton("AcM2")
        union = union_automaton(a1, a2)
        for path in sample_paths:
            expected = accepts_path(a1, vocab, path) or accepts_path(a2, vocab, path)
            assert accepts_path(union, vocab, path) == expected

    def test_union_accepts_either_method_length_one(self, vocab):
        schema = directory_access_schema()
        hidden = directory_hidden_instance("small")
        generator = WorkloadGenerator(seed=1)
        union = union_automaton(
            _single_method_automaton("AcM1"), _single_method_automaton("AcM2")
        )
        found_methods = set()
        for _ in range(20):
            path = generator.access_path(schema, hidden, length=1)
            if accepts_path(union, vocab, path):
                found_methods.add(path.steps[0].method.name)
        assert found_methods == {"AcM1", "AcM2"}

    def test_empty_path_never_accepted(self, vocab):
        from repro.access.path import AccessPath

        union = union_automaton(
            _single_method_automaton("AcM1"), _single_method_automaton("AcM2")
        )
        assert not accepts_path(union, vocab, AccessPath(()))


# ----------------------------------------------------------------------
# Intersection
# ----------------------------------------------------------------------
class TestIntersection:
    def test_intersection_is_conjunction_of_languages(self, vocab, sample_paths):
        even = length_modulo_automaton(2, 0)
        any_auto = _any_path_automaton()
        product = intersection_automaton(even, any_auto)
        for path in sample_paths:
            expected = accepts_path(even, vocab, path) and accepts_path(
                any_auto, vocab, path
            )
            assert accepts_path(product, vocab, path) == expected

    def test_disjoint_intersection_is_empty_on_samples(self, vocab, sample_paths):
        even = length_modulo_automaton(2, 0)
        odd = length_modulo_automaton(2, 1)
        product = intersection_automaton(even, odd)
        for path in sample_paths:
            assert not accepts_path(product, vocab, path)

    def test_guards_are_conjoined(self, vocab, sample_paths):
        a1 = _single_method_automaton("AcM1")
        a2 = _single_method_automaton("AcM2")
        product = intersection_automaton(a1, a2)
        # A single transition cannot use both methods at once.
        for path in sample_paths:
            assert not accepts_path(product, vocab, path)

    def test_product_with_itself_preserves_language(self, vocab, sample_paths):
        a1 = _single_method_automaton("AcM1")
        product = intersection_automaton(a1, a1)
        for path in sample_paths:
            assert accepts_path(product, vocab, path) == accepts_path(a1, vocab, path)


# ----------------------------------------------------------------------
# Concatenation
# ----------------------------------------------------------------------
class TestConcatenation:
    def test_method_pair_concatenation(self, vocab):
        schema = directory_access_schema()
        hidden = directory_hidden_instance("small")
        generator = WorkloadGenerator(seed=5)
        concat = concatenation_automaton(
            _single_method_automaton("AcM1"), _single_method_automaton("AcM2")
        )
        reference = method_sequence_automaton(vocab, ["AcM1", "AcM2"])
        for _ in range(30):
            path = generator.access_path(schema, hidden, length=2)
            assert accepts_path(concat, vocab, path) == accepts_path(
                reference, vocab, path
            )

    def test_concatenation_requires_both_parts(self, vocab, sample_paths):
        concat = concatenation_automaton(
            _single_method_automaton("AcM1"), _single_method_automaton("AcM2")
        )
        for path in sample_paths:
            if len(path) != 2:
                assert not accepts_path(concat, vocab, path)

    def test_concatenation_with_any(self, vocab, sample_paths):
        """AcM1-first followed by anything == paths starting with AcM1 of length ≥ 2."""
        concat = concatenation_automaton(
            _single_method_automaton("AcM1"), _any_path_automaton()
        )
        for path in sample_paths:
            expected = len(path) >= 2 and path.steps[0].method.name == "AcM1"
            assert accepts_path(concat, vocab, path) == expected


# ----------------------------------------------------------------------
# Length-modulo automata (the Figure 2 separation witness)
# ----------------------------------------------------------------------
class TestLengthModulo:
    def test_accepts_exactly_matching_lengths(self, vocab, sample_paths):
        for modulus, remainder in ((2, 0), (2, 1), (3, 1)):
            automaton = length_modulo_automaton(modulus, remainder)
            for path in sample_paths:
                expected = len(path) > 0 and len(path) % modulus == remainder % modulus
                assert accepts_path(automaton, vocab, path) == expected

    def test_modulus_one_accepts_all_nonempty(self, vocab, sample_paths):
        automaton = length_modulo_automaton(1, 0)
        for path in sample_paths:
            assert accepts_path(automaton, vocab, path) == (len(path) > 0)

    def test_invalid_modulus(self):
        with pytest.raises(AutomatonError):
            length_modulo_automaton(0)

    def test_state_count_is_modulus(self):
        automaton = length_modulo_automaton(5, 2)
        assert len(automaton.states) == 5
        assert automaton.accepting == frozenset({"q2"})


# ----------------------------------------------------------------------
# Method-sequence automata
# ----------------------------------------------------------------------
class TestMethodSequence:
    def test_exact_sequence_required(self, vocab):
        schema = directory_access_schema()
        hidden = directory_hidden_instance("small")
        generator = WorkloadGenerator(seed=9)
        automaton = method_sequence_automaton(vocab, ["AcM2", "AcM1"])
        for _ in range(30):
            path = generator.access_path(schema, hidden, length=2)
            methods = [step.method.name for step in path]
            assert accepts_path(automaton, vocab, path) == (methods == ["AcM2", "AcM1"])

    def test_wrong_length_rejected(self, vocab, sample_paths):
        automaton = method_sequence_automaton(vocab, ["AcM1"])
        for path in sample_paths:
            if len(path) != 1:
                assert not accepts_path(automaton, vocab, path)

    def test_unknown_method_rejected(self, vocab):
        with pytest.raises(AutomatonError):
            method_sequence_automaton(vocab, ["AcM1", "DoesNotExist"])

    def test_empty_sequence_rejected(self, vocab):
        with pytest.raises(AutomatonError):
            method_sequence_automaton(vocab, [])


# ----------------------------------------------------------------------
# Compositions of operations
# ----------------------------------------------------------------------
class TestComposition:
    def test_union_of_intersections(self, vocab, sample_paths):
        even = length_modulo_automaton(2, 0)
        odd = length_modulo_automaton(2, 1)
        starts_acm1 = concatenation_automaton(
            _single_method_automaton("AcM1"), _any_path_automaton()
        )
        combined = union_automaton(
            intersection_automaton(even, starts_acm1),
            intersection_automaton(odd, starts_acm1),
        )
        for path in sample_paths:
            expected = len(path) >= 2 and path.steps[0].method.name == "AcM1"
            assert accepts_path(combined, vocab, path) == expected

    def test_trim_keeps_language(self, vocab, sample_paths):
        even = length_modulo_automaton(2, 0)
        any_auto = _any_path_automaton()
        product = intersection_automaton(even, any_auto)
        trimmed = product.trim()
        for path in sample_paths:
            assert accepts_path(product, vocab, path) == accepts_path(
                trimmed, vocab, path
            )

    def test_serialization_roundtrip_of_composed_automaton(self, vocab, sample_paths):
        from repro.io.json_io import automaton_from_dict, automaton_to_dict

        composed = union_automaton(
            length_modulo_automaton(2, 0),
            method_sequence_automaton(vocab, ["AcM1", "AcM2"]),
        )
        restored = automaton_from_dict(automaton_to_dict(composed))
        for path in sample_paths:
            assert accepts_path(composed, vocab, path) == accepts_path(
                restored, vocab, path
            )
