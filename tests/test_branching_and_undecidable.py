"""Tests for the branching-time extension and the undecidability gadgets."""

import pytest

from repro.access.lts import explore
from repro.branching.ctl import (
    CTLAX,
    CTLEX,
    CTLNot,
    ctl_atom,
    ctl_satisfiable_in_lts,
    ctl_satisfies,
    theorem_5_3_gadget,
)
from repro.core.fragments import Fragment, classify
from repro.core.undecidable import (
    extended_schema_for_dependencies,
    implication_gadget,
    implication_gadget_with_inequalities,
)
from repro.core.vocabulary import AccessVocabulary
from repro.queries.parser import parse_cq
from repro.relational.dependencies import FunctionalDependency, InclusionDependency
from repro.relational.schema import make_schema


@pytest.fixture
def dependency_setup():
    schema = make_schema({"R": 2, "S": 2})
    constraints = [
        FunctionalDependency("R", (0,), 1),
        InclusionDependency("R", (0,), "S", (0,)),
    ]
    sigma = FunctionalDependency("S", (0,), 1)
    return schema, constraints, sigma


class TestCTLSemantics:
    def test_atom_and_ex_over_explored_lts(self, directory, hidden_directory):
        vocabulary = AccessVocabulary.of(directory)
        lts = explore(
            directory,
            hidden_instance=hidden_directory,
            value_pool=["Smith", "Parks Rd", "OX13QD"],
            max_depth=2,
        )
        mobile_revealed = ctl_atom(parse_cq("Q :- Mobile__post(a, b, c, d)"))
        witness = ctl_satisfiable_in_lts(vocabulary, lts, mobile_revealed)
        assert witness is not None
        # EX: there is a transition after which another access can reveal an
        # Address tuple.
        address_next = CTLEX(ctl_atom(parse_cq("Q :- Address__post(a, b, c, d)")))
        assert ctl_satisfiable_in_lts(vocabulary, lts, address_next) is not None

    def test_ax_duality(self, directory, hidden_directory):
        vocabulary = AccessVocabulary.of(directory)
        lts = explore(
            directory,
            hidden_instance=hidden_directory,
            value_pool=["Smith"],
            max_depth=2,
        )
        phi = ctl_atom(parse_cq("Q :- Mobile__post(a, b, c, d)"))
        for transition in lts.transitions:
            ax = ctl_satisfies(vocabulary, lts, transition, CTLAX(phi))
            ex_not = ctl_satisfies(
                vocabulary, lts, transition, CTLNot(CTLEX(CTLNot(phi)))
            )
            assert ax == ex_not

    def test_boolean_connectives(self, directory, hidden_directory):
        vocabulary = AccessVocabulary.of(directory)
        lts = explore(
            directory,
            hidden_instance=hidden_directory,
            value_pool=["Smith"],
            max_depth=1,
        )
        phi = ctl_atom(parse_cq("Q :- Mobile__post(a, b, c, d)"))
        psi = ctl_atom(parse_cq("Q :- Address__post(a, b, c, d)"))
        for transition in lts.transitions:
            conj = ctl_satisfies(vocabulary, lts, transition, phi & psi)
            disj = ctl_satisfies(vocabulary, lts, transition, phi | psi)
            assert conj <= disj


class TestTheorem53Gadget:
    def test_gadget_structure(self, dependency_setup):
        schema, constraints, sigma = dependency_setup
        access_schema, formula = theorem_5_3_gadget(schema, constraints, sigma)
        # The gadget adds Fill methods for base relations and boolean check
        # methods for the auxiliary relations.
        assert "Fill_R" in access_schema
        assert "ChkFD_R_acc" in access_schema
        assert "ChkID_S_acc" in access_schema
        # The formula nests one EX per base relation at the top.
        assert formula.size() > 10

    def test_gadget_model_checking_on_small_lts(self, dependency_setup):
        schema, constraints, sigma = dependency_setup
        access_schema, formula = theorem_5_3_gadget(schema, [], sigma)
        vocabulary = AccessVocabulary.of(access_schema)
        lts = explore(
            access_schema,
            value_pool=["u", "v"],
            max_depth=2,
            max_response_size=2,
            max_nodes=200,
        )
        # Model checking the gadget over a small fragment must not crash and
        # returns either a witness transition or None.
        result = ctl_satisfiable_in_lts(vocabulary, lts, formula)
        assert result is None or result in lts.transitions


class TestImplicationGadgets:
    def test_extended_schema_contains_auxiliary_relations(self, dependency_setup):
        schema, constraints, sigma = dependency_setup
        gadget = extended_schema_for_dependencies(schema, constraints)
        names = set(gadget.access_schema.schema.names())
        assert {"R", "S", "R_succ", "Beg_R", "End_R", "ChkFD_R"} <= names
        assert any(name.startswith("CheckIncDep_") for name in names)
        assert "Fill_R" in gadget.access_schema
        # Auxiliary relations carry boolean access methods.
        chk_method = gadget.access_schema.method("Chk_ChkFD_R")
        assert chk_method.is_boolean(gadget.access_schema.schema)

    def test_theorem_3_1_gadget_lands_in_undecidable_fragment(self, dependency_setup):
        schema, constraints, sigma = dependency_setup
        _, formula = implication_gadget(schema, constraints, sigma)
        report = classify(formula)
        assert report.fragment == Fragment.ACCLTL_FULL
        assert not report.decidable
        assert not report.uses_inequalities

    def test_theorem_5_2_gadget_is_binding_positive_with_inequalities(
        self, dependency_setup
    ):
        schema, constraints, sigma = dependency_setup
        _, formula = implication_gadget_with_inequalities(schema, constraints, sigma)
        report = classify(formula)
        assert report.uses_inequalities
        assert not report.nary_binding_negative
        assert report.fragment == Fragment.ACCLTL_FULL_INEQ

    def test_gadget_grows_linearly_with_constraints(self):
        schema = make_schema({"R": 2, "S": 2, "T": 2})
        small_constraints = [FunctionalDependency("R", (0,), 1)]
        large_constraints = [
            FunctionalDependency("R", (0,), 1),
            FunctionalDependency("S", (0,), 1),
            InclusionDependency("R", (0,), "S", (0,)),
            InclusionDependency("S", (1,), "T", (0,)),
        ]
        sigma = FunctionalDependency("T", (0,), 1)
        _, small = implication_gadget(schema, small_constraints, sigma)
        _, large = implication_gadget(schema, large_constraints, sigma)
        assert small.size() < large.size()

    def test_fd_only_gadget_without_ids_stays_zeroary_inequality_free(self):
        # Without inclusion dependencies the 5.2-variant gadget never needs
        # binding atoms, so it falls into the 0-ary + inequality fragment.
        schema = make_schema({"R": 2})
        constraints = [FunctionalDependency("R", (0,), 1)]
        sigma = FunctionalDependency("R", (1,), 0)
        _, formula = implication_gadget_with_inequalities(schema, constraints, sigma)
        report = classify(formula)
        assert report.uses_inequalities
        assert report.fragment == Fragment.ACCLTL_ZEROARY_INEQ
