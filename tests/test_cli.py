"""Tests for the command-line interface (:mod:`repro.cli`)."""

from __future__ import annotations

import pytest

from repro.cli import TABLE1_ROWS, build_parser, main
from repro.core.fragments import Fragment
from repro.workloads.scenarios import standard_scenarios


def run_cli(capsys, *argv):
    """Run the CLI and return ``(exit_code, stdout)``."""
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


# ----------------------------------------------------------------------
# classify
# ----------------------------------------------------------------------
class TestClassify:
    def test_zeroary_formula(self, capsys):
        code, out = run_cli(capsys, "classify", "G ([IsBind0_AcM1] | [IsBind0_AcM2])")
        assert code == 0
        assert Fragment.ACCLTL_ZEROARY.value in out
        assert "PSPACE" in out
        assert "decidable   : True" in out

    def test_binding_positive_formula(self, capsys):
        code, out = run_cli(
            capsys,
            "classify",
            "~[Mobile_pre(n,p,s,ph)] U [IsBind_AcM1(n), Address_pre(s,p,n,h)]",
        )
        assert code == 0
        assert "AccLTL+" in out

    def test_full_fragment_formula(self, capsys):
        code, out = run_cli(capsys, "classify", "G ~[IsBind_AcM1(n)]")
        assert code == 0
        assert "undecidable" in out
        assert "decidable   : False" in out

    def test_parse_error_is_raised(self, capsys):
        with pytest.raises(Exception):
            main(["classify", "G [NotARelation_pre(x)]"])


# ----------------------------------------------------------------------
# sat
# ----------------------------------------------------------------------
class TestSat:
    def test_satisfiable_zeroary_formula(self, capsys):
        code, out = run_cli(capsys, "sat", "F [IsBind0_AcM1]")
        assert code == 0
        assert "satisfiable: True" in out
        assert "witness path:" in out

    def test_unsatisfiable_formula(self, capsys):
        code, out = run_cli(capsys, "sat", "[IsBind0_AcM1] & [IsBind0_AcM2]")
        assert "satisfiable: False" in out
        # Unsat verdict for the PSPACE fragment is certain, so exit code 0.
        assert code == 0

    def test_grounded_flag(self, capsys):
        code, out = run_cli(capsys, "sat", "--grounded", "F [Mobile_post(a,b,c,d)]")
        assert "satisfiable" in out
        assert code in (0, 1)


# ----------------------------------------------------------------------
# translate
# ----------------------------------------------------------------------
class TestTranslate:
    def test_marker_negation_translates_to_accltl_plus(self, capsys):
        code, out = run_cli(capsys, "translate", "G ~[IsBind0_AcM1]")
        assert code == 0
        assert "input fragment : " + Fragment.ACCLTL_ZEROARY.value in out
        assert "output fragment: AccLTL+" in out
        assert "IsBind_AcM2" in out  # the disjunction-over-other-methods rewrite

    def test_positive_marker_translates(self, capsys):
        code, out = run_cli(capsys, "translate", "F [IsBind0_AcM2]")
        assert code == 0
        assert "IsBind_AcM2" in out

    def test_nary_formula_rejected(self, capsys):
        from repro.core.inclusions import InclusionError

        with pytest.raises(InclusionError):
            main(["translate", "F [IsBind_AcM1(n)]"])


# ----------------------------------------------------------------------
# table1 / figure2
# ----------------------------------------------------------------------
class TestStaticReports:
    def test_table1_contains_all_rows(self, capsys):
        code, out = run_cli(capsys, "table1")
        assert code == 0
        for label, *_ in TABLE1_ROWS:
            assert label in out
        assert "2EXPTIME-complete" in out
        assert "undecidable" in out

    def test_table1_application_columns(self, capsys):
        _, out = run_cli(capsys, "table1")
        header_line = next(line for line in out.splitlines() if "Language" in line)
        for column in ("DjC", "FD", "DF", "AccOr"):
            assert column in header_line

    def test_figure2_text(self, capsys):
        code, out = run_cli(capsys, "figure2")
        assert code == 0
        assert "AccLTL+" in out
        assert "A-automata" in out
        assert "⊆" in out

    def test_figure2_dot(self, capsys):
        code, out = run_cli(capsys, "figure2", "--dot")
        assert code == 0
        assert out.startswith("digraph")


# ----------------------------------------------------------------------
# lts / scenarios
# ----------------------------------------------------------------------
class TestLtsAndScenarios:
    def test_lts_tree(self, capsys):
        code, out = run_cli(capsys, "lts", "--depth", "1", "--max-nodes", "50")
        assert code == 0
        assert "explored LTS fragment" in out
        assert "Known Facts" in out

    def test_lts_dot_with_hidden_instance(self, capsys):
        code, out = run_cli(
            capsys, "lts", "--depth", "1", "--hidden", "--dot", "--max-nodes", "50"
        )
        assert code == 0
        assert "digraph" in out

    def test_scenarios_listing(self, capsys):
        code, out = run_cli(capsys, "scenarios")
        assert code == 0
        for scenario in standard_scenarios():
            assert scenario.name in out

    def test_scenarios_verbose(self, capsys):
        code, out = run_cli(capsys, "scenarios", "--verbose")
        assert code == 0
        assert "probe access" in out

    def test_unknown_scenario_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["classify", "--scenario", "does-not-exist", "true"])


# ----------------------------------------------------------------------
# Parser structure
# ----------------------------------------------------------------------
class TestParser:
    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        subparsers_action = next(
            action
            for action in parser._actions
            if isinstance(action, type(parser._subparsers._group_actions[0]))
        )
        commands = set(subparsers_action.choices)
        assert {
            "classify",
            "sat",
            "translate",
            "table1",
            "figure2",
            "lts",
            "scenarios",
            "matrix",
            "lint",
            "store",
        } <= commands


# ----------------------------------------------------------------------
# Batched matrix workloads (the unified reduction engine)
# ----------------------------------------------------------------------
class TestMatrix:
    def test_relevance_matrix(self, capsys):
        code, out = run_cli(capsys, "matrix", "relevance", "--limit", "10")
        assert code == 0
        assert "relevance matrix:" in out
        assert "engine:" in out

    def test_containment_matrix_reports_dedup(self, capsys):
        code, out = run_cli(capsys, "matrix", "containment")
        assert code == 0
        assert "containment matrix:" in out
        # The default workload re-submits each query once, so the engine
        # must report dedup hits.
        assert " 0 dedup hits" not in out

    def test_answerability_sweep(self, capsys):
        code, out = run_cli(capsys, "matrix", "answerability", "--steps", "3")
        assert code == 0
        assert "answerability sweep" in out
        assert out.count("answerable=") == 3

    def test_matrix_on_scenario(self, capsys):
        code, out = run_cli(
            capsys, "matrix", "relevance", "--scenario", "directory", "--limit", "6"
        )
        assert code == 0
        assert "relevance matrix:" in out


# ----------------------------------------------------------------------
# Persistent SQL fact stores (repro store)
# ----------------------------------------------------------------------
class TestStore:
    def _ingest(self, capsys, path, *extra):
        return run_cli(
            capsys, "store", "ingest", "--path", str(path), "--facts", "500", *extra
        )

    def test_ingest_info_verify_round_trip(self, capsys, tmp_path):
        import json

        path = tmp_path / "facts.db"
        code, out = self._ingest(capsys, path)
        assert code == 0
        ingested = json.loads(out)
        assert ingested["added"] == 500
        assert ingested["size"] == 500
        assert set(ingested["relations"]) == {"Init", "Edge"}

        code, out = run_cli(capsys, "store", "info", "--path", str(path))
        assert code == 0
        info = json.loads(out)
        assert info["backend"] == "sqlite"
        assert info["schema"] == {"Init": 1, "Edge": 2}
        assert info["size"] == 500
        assert info["pushdown_min_rows"] > 0

        code, out = run_cli(capsys, "store", "verify", "--path", str(path))
        assert code == 0
        report = json.loads(out)
        assert report["ok"] is True
        assert report["integrity"] == "ok"

    def test_chain_join_workload(self, capsys, tmp_path):
        import json

        path = tmp_path / "chain.db"
        code, out = self._ingest(capsys, path, "--workload", "chain-join")
        assert code == 0
        assert set(json.loads(out)["relations"]) == {"R", "S"}

    def test_missing_store_is_exit_2(self, capsys, tmp_path):
        for command in ("info", "verify"):
            code, out = run_cli(
                capsys, "store", command, "--path", str(tmp_path / "absent.db")
            )
            assert code == 2
            assert "no SQL store" in out

    def test_non_store_file_is_exit_2(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.db"
        bogus.write_text("not a database")
        code, out = run_cli(capsys, "store", "info", "--path", str(bogus))
        assert code == 2

    def test_verify_detects_tampering(self, capsys, tmp_path):
        import json
        import sqlite3

        path = tmp_path / "facts.db"
        assert self._ingest(capsys, path)[0] == 0
        # Bypass the store API: delete committed rows under the meta
        # counters' feet.  verify must notice and exit 1.
        conn = sqlite3.connect(str(path))
        conn.execute('DELETE FROM "rel Edge" WHERE rowid IN '
                     '(SELECT rowid FROM "rel Edge" LIMIT 5)')
        conn.commit()
        conn.close()
        code, out = run_cli(capsys, "store", "verify", "--path", str(path))
        assert code == 1
        assert json.loads(out)["ok"] is False

    def test_store_path_required(self, capsys):
        with pytest.raises(SystemExit):
            main(["store", "info"])


# ----------------------------------------------------------------------
# Contract linter (repro lint)
# ----------------------------------------------------------------------
class TestLint:
    def test_lint_src_is_clean(self, capsys):
        code, out = run_cli(capsys, "lint")
        assert code == 0
        assert "OK:" in out

    def test_lint_json_shape(self, capsys):
        import json

        code, out = run_cli(capsys, "lint", "--json")
        assert code == 0
        payload = json.loads(out)
        assert set(payload) == {
            "files",
            "rules",
            "findings",
            "baselined",
            "stale_baseline",
            "suppressed",
            "clean",
        }
        assert payload["clean"] is True
        assert payload["findings"] == []
        assert payload["files"] > 50
        assert "ENV001" in payload["rules"]

    def test_lint_json_findings_shape(self, capsys, tmp_path):
        import json
        import textwrap

        package = tmp_path / "root" / "repro"
        package.mkdir(parents=True)
        (package / "bad.py").write_text(
            textwrap.dedent(
                """
                import os
                RAW = os.environ.get("X")
                """
            )
        )
        code, out = run_cli(
            capsys,
            "lint",
            "--json",
            "--root",
            str(tmp_path / "root"),
            "--baseline",
            str(tmp_path / "none.json"),
        )
        assert code == 1
        payload = json.loads(out)
        assert payload["clean"] is False
        (finding,) = payload["findings"]
        assert set(finding) == {"rule", "path", "line", "col", "message"}
        assert finding["rule"] == "ENV001"
        assert finding["path"] == "repro/bad.py"

    def test_lint_explain(self, capsys):
        code, out = run_cli(capsys, "lint", "--explain", "EXC001")
        assert code == 0
        assert "EXC001" in out
        assert "invariant" in out

    def test_lint_explain_unknown_rule_is_internal_error(self, capsys):
        code, out = run_cli(capsys, "lint", "--explain", "BOGUS1")
        assert code == 2
        assert "unknown rule" in out
