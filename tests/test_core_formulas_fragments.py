"""Tests for the AccLTL formula AST and fragment classification."""

import pytest

from repro.core.formulas import (
    AccAnd,
    AccAtom,
    AccEventually,
    AccGlobally,
    AccNext,
    AccNot,
    AccOr,
    AccTrue,
    AccUntil,
    EmbeddedSentence,
    atom,
    eventually,
    globally,
    land,
    lnext,
    lnot,
    lor,
    until,
)
from repro.core.fragments import (
    DECIDABLE_FRAGMENTS,
    Fragment,
    classify,
    inclusion_order,
    is_binding_positive,
    only_next_operator,
    uses_inequalities,
    uses_nary_binding,
)
from repro.core.properties import (
    access_order_formula,
    containment_formula,
    dataflow_formula,
    disjointness_formula,
    fd_formula,
    groundedness_formula,
    ltr_formula,
    ltr_formula_zeroary,
)
from repro.queries.parser import parse_cq
from repro.relational.dependencies import DisjointnessConstraint, FunctionalDependency
from repro.workloads.directory import join_query


@pytest.fixture
def vocab(directory_vocab):
    return directory_vocab


def _pre_atom(vocab, text):
    return atom(vocab.query_pre(parse_cq(text)))


class TestFormulaAST:
    def test_embedded_sentence_flags(self, vocab):
        binding = EmbeddedSentence(parse_cq("Q :- IsBind__AcM1(x)"))
        assert binding.mentions_nary_binding()
        assert binding.mentions_binding()
        zero = EmbeddedSentence(parse_cq("Q :- IsBind0__AcM1()"))
        assert zero.mentions_zeroary_binding()
        assert not zero.mentions_nary_binding()
        pre = EmbeddedSentence(parse_cq("Q :- Mobile__pre(a, b, c, d)"))
        assert pre.is_pure_pre()
        assert not pre.is_pure_post()

    def test_atoms_deduplicated(self, vocab):
        a = _pre_atom(vocab, "Q :- Mobile(n, p, s, ph)")
        formula = land(a, eventually(a))
        assert len(formula.atoms()) == 1

    def test_size_and_operators(self, vocab):
        a = _pre_atom(vocab, "Q :- Mobile(n, p, s, ph)")
        b = _pre_atom(vocab, "Q :- Address(s, p, n, h)")
        formula = until(a, lnext(b))
        assert formula.size() > 3
        assert formula.temporal_operators() == frozenset({"U", "X"})
        assert formula.next_depth() == 1

    def test_next_depth_nested(self, vocab):
        a = _pre_atom(vocab, "Q :- Mobile(n, p, s, ph)")
        formula = lnext(lnext(lnext(a)))
        assert formula.next_depth() == 3

    def test_sugar_operators(self, vocab):
        a = _pre_atom(vocab, "Q :- Mobile(n, p, s, ph)")
        b = _pre_atom(vocab, "Q :- Address(s, p, n, h)")
        assert isinstance(a & b, AccAnd)
        assert isinstance(a | b, AccOr)
        assert isinstance(~a, AccNot)
        assert isinstance(a.implies(b), AccOr)
        assert isinstance(land(), AccTrue)
        assert isinstance(lor(a), AccAtom)

    def test_str_round_trip_contains_labels(self, vocab):
        a = atom(vocab.query_pre(parse_cq("Q :- Mobile(n, p, s, ph)")), label="mob")
        assert "mob" in str(globally(a))


class TestFragmentClassification:
    def test_zeroary_formula(self, vocab):
        formula = access_order_formula(vocab, "AcM2", "AcM1")
        report = classify(formula)
        assert report.fragment == Fragment.ACCLTL_ZEROARY
        assert report.decidable
        assert "PSPACE" in report.complexity

    def test_zeroary_with_inequalities(self, vocab):
        formula = fd_formula(vocab, FunctionalDependency("Mobile", (0,), 3))
        report = classify(formula)
        assert report.fragment == Fragment.ACCLTL_ZEROARY_INEQ
        assert report.decidable

    def test_xonly_fragment(self, vocab):
        a = _pre_atom(vocab, "Q :- Mobile(n, p, s, ph)")
        formula = lnext(lnot(a)) & a
        report = classify(formula)
        assert report.fragment == Fragment.ACCLTL_X_ZEROARY
        assert report.only_next

    def test_accltl_plus(self, vocab, directory):
        probe = directory.access("AcM1", ("Smith",))
        formula = ltr_formula(vocab, probe, join_query())
        report = classify(formula)
        assert report.fragment == Fragment.ACCLTL_PLUS
        assert report.uses_nary_binding
        assert not report.nary_binding_negative
        assert report.decidable

    def test_full_fragment_with_negative_binding(self, vocab):
        binding = atom(parse_cq("Q :- IsBind__AcM1(x)"))
        formula = globally(lnot(binding))
        report = classify(formula)
        assert report.fragment == Fragment.ACCLTL_FULL
        assert not report.decidable
        assert report.complexity == "undecidable"

    def test_full_fragment_with_inequalities(self, vocab):
        binding = atom(parse_cq("Q :- IsBind__AcM1(x), Mobile__pre(x, p, s, n), x != p"))
        formula = eventually(binding) & globally(lnot(atom(parse_cq("Q :- Mobile__pre(a,b,c,d), a != b"))))
        report = classify(formula)
        assert report.fragment == Fragment.ACCLTL_FULL_INEQ

    def test_helper_predicates(self, vocab, directory):
        probe = directory.access("AcM1", ("Smith",))
        ltr = ltr_formula(vocab, probe, join_query())
        assert uses_nary_binding(ltr)
        assert is_binding_positive(ltr)
        assert not uses_inequalities(ltr)
        assert not only_next_operator(ltr)

    def test_double_negation_keeps_binding_positive(self, vocab):
        binding = atom(parse_cq("Q :- IsBind__AcM1(x)"))
        formula = lnot(lnot(binding))
        assert is_binding_positive(formula)

    def test_paper_properties_land_in_expected_fragments(self, vocab, directory):
        probe = directory.access("AcM1", ("Smith",))
        expectations = {
            Fragment.ACCLTL_PLUS: [
                groundedness_formula(vocab),
                ltr_formula(vocab, probe, join_query()),
                dataflow_formula(vocab, directory.method("AcM1"), 0, "Address", 2),
            ],
            Fragment.ACCLTL_ZEROARY: [
                access_order_formula(vocab, "AcM2", "AcM1"),
                containment_formula(vocab, join_query(), join_query()),
                disjointness_formula(
                    vocab, DisjointnessConstraint("Mobile", 0, "Address", 0)
                ),
                ltr_formula_zeroary(vocab, "AcM1", join_query()),
            ],
            Fragment.ACCLTL_ZEROARY_INEQ: [
                fd_formula(vocab, FunctionalDependency("Mobile", (0,), 3)),
            ],
        }
        for fragment, formulas in expectations.items():
            for formula in formulas:
                assert classify(formula).fragment == fragment

    def test_inclusion_order_is_consistent_with_decidability(self):
        order = inclusion_order()
        assert (Fragment.ACCLTL_PLUS, Fragment.ACCLTL_FULL) in order
        # Decidable fragments never include an undecidable one.
        for small, large in order:
            if large in DECIDABLE_FRAGMENTS:
                assert small in DECIDABLE_FRAGMENTS
