"""Tests for the library of paper example properties (Examples 2.2-2.4 etc.)."""

import pytest

from repro.access.path import path_from_pairs
from repro.core import properties
from repro.core.fragments import Fragment, classify
from repro.core.semantics import path_satisfies
from repro.relational.dependencies import DisjointnessConstraint, FunctionalDependency
from repro.workloads.directory import join_query, resident_names_query


@pytest.fixture
def vocab(directory_vocab):
    return directory_vocab


def _grounded_path(directory):
    """A grounded path (given 'Smith' initially known... it is not, so this
    path is intentionally *not* grounded at its first step)."""
    return path_from_pairs(
        directory,
        [
            ("AcM1", ("Smith",), [("Smith", "OX13QD", "Parks Rd", 5551212)]),
            (
                "AcM2",
                ("Parks Rd", "OX13QD"),
                [("Parks Rd", "OX13QD", "Jones", 16)],
            ),
        ],
    )


class TestGroundednessFormula:
    def test_groundedness_formula_matches_grounded_paths(self, directory, vocab):
        from repro.relational.instance import Instance

        formula = properties.groundedness_formula(vocab)
        # From an empty initial instance the first access guesses 'Smith',
        # so the path is not grounded and the formula fails.
        assert not path_satisfies(vocab, _grounded_path(directory), formula)
        # With an initial instance that already knows the Address tuple, the
        # same accesses are grounded: every binding value occurs in a
        # pre-instance relation.
        initial = Instance(directory.schema)
        initial.add("Address", ("Parks Rd", "OX13QD", "Smith", 13))
        grounded = path_from_pairs(
            directory,
            [
                (
                    "AcM2",
                    ("Parks Rd", "OX13QD"),
                    [("Parks Rd", "OX13QD", "Jones", 16)],
                ),
                ("AcM1", ("Smith",), [("Smith", "OX13QD", "Parks Rd", 5551212)]),
            ],
        )
        assert path_satisfies(vocab, grounded, formula, initial=initial)

    def test_groundedness_formula_is_binding_positive(self, vocab):
        formula = properties.groundedness_formula(vocab)
        assert classify(formula).fragment == Fragment.ACCLTL_PLUS

    def test_input_free_methods_always_grounded(self, directory, vocab):
        directory.add("Scan", "Mobile", ())
        vocab2 = properties.AccessVocabulary.of(directory)
        formula = properties.groundedness_formula(vocab2)
        path = path_from_pairs(directory, [("Scan", (), [("A", "B", "C", 1)])])
        assert path_satisfies(vocab2, path, formula)


class TestLTRFormula:
    def test_ltr_formula_satisfied_by_revealing_path(self, directory, vocab):
        probe = directory.access("AcM1", ("Smith",))
        formula = properties.ltr_formula(vocab, probe, join_query())
        path = path_from_pairs(
            directory,
            [
                (
                    "AcM2",
                    ("Parks Rd", "OX13QD"),
                    [("Parks Rd", "OX13QD", "Jones", 16)],
                ),
                ("AcM1", ("Smith",), [("Smith", "OX13QD", "Parks Rd", 5551212)]),
            ],
        )
        assert path_satisfies(vocab, path, formula)

    def test_ltr_formula_not_satisfied_when_query_already_true(self, directory, vocab):
        probe = directory.access("AcM1", ("Smith",))
        formula = properties.ltr_formula(vocab, probe, resident_names_query())
        # The revealing access adds a Mobile tuple, but the residents query
        # is already true before it (Address revealed first), so ¬Q_pre fails.
        path = path_from_pairs(
            directory,
            [
                (
                    "AcM2",
                    ("Parks Rd", "OX13QD"),
                    [("Parks Rd", "OX13QD", "Jones", 16)],
                ),
                ("AcM1", ("Smith",), [("Smith", "OX13QD", "Parks Rd", 5551212)]),
            ],
        )
        assert not path_satisfies(vocab, path, formula)

    def test_zeroary_variant_ignores_binding_values(self, directory, vocab):
        formula = properties.ltr_formula_zeroary(vocab, "AcM1", join_query())
        path = path_from_pairs(
            directory,
            [
                (
                    "AcM2",
                    ("Parks Rd", "OX13QD"),
                    [("Parks Rd", "OX13QD", "Jones", 16)],
                ),
                ("AcM1", ("Patel",), [("Patel", "OX13QD", "Parks Rd", 5559876)]),
            ],
        )
        assert path_satisfies(vocab, path, formula)
        assert classify(formula).fragment == Fragment.ACCLTL_ZEROARY


class TestContainmentFormulas:
    def test_containment_formula_valid_when_contained(self, directory, vocab):
        formula = properties.containment_formula(vocab, join_query(), resident_names_query())
        path = _grounded_path(directory)
        assert path_satisfies(vocab, path, formula)

    def test_counterexample_formula_on_violating_path(self, directory, vocab):
        formula = properties.containment_counterexample_formula(
            vocab, resident_names_query(), join_query()
        )
        # Reveal an Address tuple first (residents true, join false), then do
        # any further access so there is a transition whose PRE witnesses it.
        path = path_from_pairs(
            directory,
            [
                (
                    "AcM2",
                    ("Parks Rd", "OX13QD"),
                    [("Parks Rd", "OX13QD", "Jones", 16)],
                ),
                ("AcM1", ("Nobody",), []),
            ],
        )
        assert path_satisfies(vocab, path, formula)


class TestConstraintFormulas:
    def test_disjointness_formula_detects_overlap(self, directory, vocab):
        constraint = DisjointnessConstraint("Mobile", 0, "Address", 2)
        formula = properties.disjointness_formula(vocab, constraint)
        clean = path_from_pairs(
            directory,
            [("AcM1", ("Smith",), [("Smith", "OX13QD", "Parks Rd", 5551212)])],
        )
        assert path_satisfies(vocab, clean, formula)
        overlapping = path_from_pairs(
            directory,
            [
                ("AcM1", ("Smith",), [("Smith", "OX13QD", "Parks Rd", 5551212)]),
                (
                    "AcM2",
                    ("Parks Rd", "OX13QD"),
                    [("Parks Rd", "OX13QD", "Smith", 13)],
                ),
                ("AcM1", ("Smith",), [("Smith", "OX13QD", "Parks Rd", 5551212)]),
            ],
        )
        # After the second access, Smith appears both as a Mobile name and an
        # Address resident name in the PRE of the third transition.
        assert not path_satisfies(vocab, overlapping, formula)

    def test_fd_formula_detects_violation(self, directory, vocab):
        fd = FunctionalDependency("Mobile", (0,), 3)
        formula = properties.fd_formula(vocab, fd)
        consistent = path_from_pairs(
            directory,
            [("AcM1", ("Smith",), [("Smith", "OX13QD", "Parks Rd", 5551212)])],
        )
        assert path_satisfies(vocab, consistent, formula)
        violating = path_from_pairs(
            directory,
            [
                (
                    "AcM1",
                    ("Smith",),
                    [
                        ("Smith", "OX13QD", "Parks Rd", 5551212),
                        ("Smith", "OX26NN", "Banbury Rd", 9999999),
                    ],
                ),
                # A second step so the violation shows up in a pre-instance.
                ("AcM2", ("Parks Rd", "OX13QD"), []),
            ],
        )
        assert not path_satisfies(vocab, violating, formula)

    def test_ltr_under_fds(self, directory, vocab):
        fd = FunctionalDependency("Mobile", (0,), 3)
        probe = directory.access("AcM1", ("Smith",))
        formula = properties.ltr_under_fds_formula(vocab, probe, join_query(), [fd])
        assert classify(formula).uses_inequalities


class TestOrderAndDataflow:
    def test_access_order_formula(self, directory, vocab):
        formula = properties.access_order_formula(vocab, "AcM2", "AcM1")
        ok = path_from_pairs(
            directory,
            [
                ("AcM2", ("Parks Rd", "OX13QD"), []),
                ("AcM1", ("Smith",), []),
            ],
        )
        bad = path_from_pairs(
            directory,
            [
                ("AcM1", ("Smith",), []),
                ("AcM2", ("Parks Rd", "OX13QD"), []),
            ],
        )
        only_address = path_from_pairs(directory, [("AcM2", ("Parks Rd", "OX13QD"), [])])
        assert path_satisfies(vocab, ok, formula)
        assert not path_satisfies(vocab, bad, formula)
        assert path_satisfies(vocab, only_address, formula)

    def test_dataflow_formula(self, directory, vocab):
        formula = properties.dataflow_formula(
            vocab, directory.method("AcM1"), 0, "Address", 2
        )
        ok = path_from_pairs(
            directory,
            [
                (
                    "AcM2",
                    ("Parks Rd", "OX13QD"),
                    [("Parks Rd", "OX13QD", "Smith", 13)],
                ),
                ("AcM1", ("Smith",), []),
            ],
        )
        bad = path_from_pairs(
            directory,
            [
                (
                    "AcM2",
                    ("Parks Rd", "OX13QD"),
                    [("Parks Rd", "OX13QD", "Jones", 16)],
                ),
                ("AcM1", ("Smith",), []),
            ],
        )
        assert path_satisfies(vocab, ok, formula)
        assert not path_satisfies(vocab, bad, formula)
