"""Tests for the AccLTL semantics over access paths (Definition 2.1)."""

import pytest

from repro.access.path import AccessPath, path_from_pairs
from repro.core.formulas import (
    atom,
    eventually,
    globally,
    land,
    lnext,
    lnot,
    lor,
    until,
    AccTrue,
)
from repro.core.properties import (
    relation_nonempty_post,
    relation_nonempty_pre,
    zeroary_binding_atom,
    intro_until_example,
)
from repro.core.semantics import path_satisfies, satisfies_at
from repro.core.transition import path_structures
from repro.queries.parser import parse_cq


@pytest.fixture
def two_step_path(directory):
    """Reveal Smith's mobile tuple, then the Parks Rd address tuples."""
    return path_from_pairs(
        directory,
        [
            ("AcM1", ("Smith",), [("Smith", "OX13QD", "Parks Rd", 5551212)]),
            (
                "AcM2",
                ("Parks Rd", "OX13QD"),
                [
                    ("Parks Rd", "OX13QD", "Smith", 13),
                    ("Parks Rd", "OX13QD", "Jones", 16),
                ],
            ),
        ],
    )


class TestBasicSemantics:
    def test_empty_path_satisfies_nothing(self, directory_vocab):
        assert not path_satisfies(directory_vocab, AccessPath(()), AccTrue())

    def test_atom_on_first_transition(self, directory_vocab, two_step_path):
        mobile_post = relation_nonempty_post(directory_vocab, "Mobile")
        mobile_pre = relation_nonempty_pre(directory_vocab, "Mobile")
        assert path_satisfies(directory_vocab, two_step_path, mobile_post)
        assert not path_satisfies(directory_vocab, two_step_path, mobile_pre)

    def test_next_moves_one_transition(self, directory_vocab, two_step_path):
        address_post = relation_nonempty_post(directory_vocab, "Address")
        assert not path_satisfies(directory_vocab, two_step_path, address_post)
        assert path_satisfies(directory_vocab, two_step_path, lnext(address_post))
        assert not path_satisfies(
            directory_vocab, two_step_path, lnext(lnext(address_post))
        )

    def test_eventually_and_globally(self, directory_vocab, two_step_path):
        address_post = relation_nonempty_post(directory_vocab, "Address")
        mobile_post = relation_nonempty_post(directory_vocab, "Mobile")
        assert path_satisfies(directory_vocab, two_step_path, eventually(address_post))
        assert path_satisfies(directory_vocab, two_step_path, globally(mobile_post))
        assert not path_satisfies(directory_vocab, two_step_path, globally(address_post))

    def test_until(self, directory_vocab, two_step_path):
        no_address_known = lnot(relation_nonempty_pre(directory_vocab, "Address"))
        acm2_used = zeroary_binding_atom("AcM2")
        assert path_satisfies(
            directory_vocab, two_step_path, until(no_address_known, acm2_used)
        )

    def test_boolean_connectives(self, directory_vocab, two_step_path):
        mobile_post = relation_nonempty_post(directory_vocab, "Mobile")
        address_post = relation_nonempty_post(directory_vocab, "Address")
        assert path_satisfies(
            directory_vocab, two_step_path, land(mobile_post, lnot(address_post))
        )
        assert path_satisfies(
            directory_vocab, two_step_path, lor(address_post, mobile_post)
        )

    def test_positions_beyond_path_are_false(self, directory_vocab, two_step_path):
        structures = path_structures(directory_vocab, two_step_path)
        assert not satisfies_at(structures, 5, AccTrue())
        assert satisfies_at(structures, 1, AccTrue())

    def test_binding_atoms(self, directory_vocab, two_step_path):
        smith_bound = atom(parse_cq('Q :- IsBind__AcM1("Smith")'))
        jones_bound = atom(parse_cq('Q :- IsBind__AcM1("Jones")'))
        assert path_satisfies(directory_vocab, two_step_path, smith_bound)
        assert not path_satisfies(directory_vocab, two_step_path, jones_bound)

    def test_intro_example_formula(self, directory, directory_vocab):
        # The introduction's sentence: nothing known of Mobile until an AcM1
        # access whose bound name already occurs in Address.
        formula = intro_until_example(directory_vocab, "Mobile", "Address", "AcM1")
        good = path_from_pairs(
            directory,
            [
                (
                    "AcM2",
                    ("Parks Rd", "OX13QD"),
                    [("Parks Rd", "OX13QD", "Smith", 13)],
                ),
                ("AcM1", ("Smith",), [("Smith", "OX13QD", "Parks Rd", 5551212)]),
            ],
        )
        assert path_satisfies(directory_vocab, good, formula)
        bad = path_from_pairs(
            directory,
            [("AcM1", ("Smith",), [("Smith", "OX13QD", "Parks Rd", 5551212)])],
        )
        assert not path_satisfies(directory_vocab, bad, formula)

    def test_monotone_queries_stay_true(self, directory_vocab, two_step_path):
        # Positive pre-queries are monotone along a path: once true, they
        # stay true at later positions.
        structures = path_structures(directory_vocab, two_step_path)
        mobile_pre = relation_nonempty_pre(directory_vocab, "Mobile")
        truth = [satisfies_at(structures, i, mobile_pre) for i in range(len(structures))]
        assert truth == sorted(truth)
