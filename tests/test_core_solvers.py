"""Tests for the decision procedures and the dispatching solver."""

import pytest

from repro.access.path import is_grounded, path_from_pairs
from repro.core import properties
from repro.core.bounded_check import (
    Bounds,
    bounded_satisfiability,
    formula_constants,
    formula_fact_pool,
    validity_counterexample,
)
from repro.core.formulas import atom, eventually, globally, land, lnext, lnot
from repro.core.fragments import Fragment
from repro.core.sat_accltl_plus import accltl_plus_satisfiable
from repro.core.sat_xonly import xonly_satisfiable
from repro.core.sat_zeroary import (
    FragmentError,
    abstraction_agrees,
    abstract_to_word,
    is_satisfiable_via_ltl_abstraction,
    lemma_4_13_bounds,
    translate_to_ltl,
    zeroary_satisfiable,
)
from repro.core.semantics import path_satisfies
from repro.core.solver import AccLTLSolver
from repro.ltl.semantics import word_satisfies
from repro.queries.parser import parse_cq
from repro.relational.dependencies import FunctionalDependency
from repro.workloads.directory import join_query, resident_names_query


@pytest.fixture
def solver(directory):
    return AccLTLSolver(directory)


class TestBoundedCheck:
    def test_satisfiable_formula_has_witness(self, solver):
        formula = properties.relation_nonempty_post(solver.vocabulary, "Mobile")
        result = bounded_satisfiability(
            solver.vocabulary, formula, Bounds(max_path_length=1)
        )
        assert result.satisfiable
        assert result.witness is not None
        assert path_satisfies(solver.vocabulary, result.witness, formula)

    def test_unsatisfiable_contradiction(self, solver):
        nonempty = properties.relation_nonempty_post(solver.vocabulary, "Mobile")
        formula = land(nonempty, lnot(nonempty))
        result = bounded_satisfiability(
            solver.vocabulary, formula, Bounds(max_path_length=2)
        )
        assert not result.satisfiable
        assert result.exhausted

    def test_grounded_restriction_blocks_constant_guessing(self, solver, directory):
        smith = atom(parse_cq('Q :- IsBind__AcM1("Smith")'))
        result = bounded_satisfiability(
            solver.vocabulary,
            eventually(smith),
            Bounds(max_path_length=2),
            grounded_only=True,
        )
        assert not result.satisfiable

    def test_formula_constants_and_fact_pool(self, solver, directory):
        probe = directory.access("AcM1", ("Smith",))
        formula = properties.ltr_formula(solver.vocabulary, probe, join_query())
        assert "Smith" in formula_constants(formula)
        pool = formula_fact_pool(solver.vocabulary, formula)
        assert any(relation == "Mobile" for relation, _ in pool)
        assert any("Smith" in tup for _, tup in pool)

    def test_validity_counterexample(self, solver):
        # "Mobile is always empty before the access" is not valid.
        formula = globally(
            lnot(properties.relation_nonempty_pre(solver.vocabulary, "Mobile"))
        )
        result = validity_counterexample(
            solver.vocabulary, formula, Bounds(max_path_length=3)
        )
        assert result.satisfiable  # a counterexample path exists


class TestZeroaryProcedure:
    def test_rejects_nary_formulas(self, solver, directory):
        probe = directory.access("AcM1", ("Smith",))
        formula = properties.ltr_formula(solver.vocabulary, probe, join_query())
        with pytest.raises(FragmentError):
            zeroary_satisfiable(solver.vocabulary, formula)

    def test_ltr_zeroary_satisfiable(self, solver):
        formula = properties.ltr_formula_zeroary(solver.vocabulary, "AcM1", join_query())
        result = zeroary_satisfiable(solver.vocabulary, formula)
        assert result.satisfiable
        assert path_satisfies(solver.vocabulary, result.witness, formula)

    def test_access_order_with_impossible_order_unsat(self, solver):
        # AcM1 must come both strictly before and strictly after AcM2, and
        # both methods must eventually be used: unsatisfiable.
        order_one = properties.access_order_formula(solver.vocabulary, "AcM1", "AcM2")
        order_two = properties.access_order_formula(solver.vocabulary, "AcM2", "AcM1")
        used_one = eventually(properties.zeroary_binding_atom("AcM1"))
        used_two = eventually(properties.zeroary_binding_atom("AcM2"))
        formula = land(order_one, order_two, used_one, used_two)
        result = zeroary_satisfiable(solver.vocabulary, formula)
        assert not result.satisfiable
        assert result.exhausted

    def test_bounds_are_polynomial_in_formula(self, solver):
        formula = properties.ltr_formula_zeroary(solver.vocabulary, "AcM1", join_query())
        bounds = lemma_4_13_bounds(solver.vocabulary, formula)
        assert bounds.max_path_length <= formula.size()
        assert len(bounds.fact_pool) <= formula.size()

    def test_inequalities_allowed(self, solver):
        formula = properties.fd_formula(
            solver.vocabulary, FunctionalDependency("Mobile", (0,), 3)
        )
        result = zeroary_satisfiable(solver.vocabulary, formula)
        assert result.satisfiable


class TestLTLAbstraction:
    def test_abstraction_theorem_on_concrete_paths(self, solver, directory):
        formula = properties.ltr_formula_zeroary(solver.vocabulary, "AcM1", join_query())
        paths = [
            path_from_pairs(
                directory,
                [
                    (
                        "AcM2",
                        ("Parks Rd", "OX13QD"),
                        [("Parks Rd", "OX13QD", "Jones", 16)],
                    ),
                    ("AcM1", ("Smith",), [("Smith", "OX13QD", "Parks Rd", 5551212)]),
                ],
            ),
            path_from_pairs(directory, [("AcM1", ("Smith",), [])]),
        ]
        for path in paths:
            assert abstraction_agrees(solver.vocabulary, formula, path)

    def test_abstraction_word_matches_translated_formula(self, solver, directory):
        formula = properties.access_order_formula(solver.vocabulary, "AcM2", "AcM1")
        path = path_from_pairs(
            directory,
            [("AcM2", ("Parks Rd", "OX13QD"), []), ("AcM1", ("Smith",), [])],
        )
        word = abstract_to_word(solver.vocabulary, formula, path)
        assert word_satisfies(word, translate_to_ltl(formula))

    def test_satisfiability_via_abstraction_over_candidates(self, solver, directory):
        formula = properties.ltr_formula_zeroary(solver.vocabulary, "AcM1", join_query())
        candidates = [
            path_from_pairs(directory, [("AcM1", ("Smith",), [])]),
            path_from_pairs(
                directory,
                [
                    (
                        "AcM2",
                        ("Parks Rd", "OX13QD"),
                        [("Parks Rd", "OX13QD", "Jones", 16)],
                    ),
                    ("AcM1", ("Smith",), [("Smith", "OX13QD", "Parks Rd", 5551212)]),
                ],
            ),
        ]
        witness = is_satisfiable_via_ltl_abstraction(
            solver.vocabulary, formula, candidates
        )
        assert witness is not None
        assert path_satisfies(solver.vocabulary, witness, formula)


class TestXOnlyProcedure:
    def test_path_length_bound_is_next_depth(self, solver):
        mobile = properties.relation_nonempty_post(solver.vocabulary, "Mobile")
        formula = lnext(mobile)
        result = xonly_satisfiable(solver.vocabulary, formula)
        assert result.satisfiable
        assert result.path_length_bound == 2
        assert len(result.witness) == 2

    def test_rejects_until(self, solver):
        formula = eventually(properties.relation_nonempty_post(solver.vocabulary, "Mobile"))
        with pytest.raises(FragmentError):
            xonly_satisfiable(solver.vocabulary, formula)

    def test_xonly_ltr_small_path(self, solver):
        # X-only variant of relevance: the first access reveals Q.
        q_pre = properties.relation_nonempty_pre(solver.vocabulary, "Mobile")
        q_post = properties.relation_nonempty_post(solver.vocabulary, "Mobile")
        formula = land(lnot(q_pre), properties.zeroary_binding_atom("AcM1"), q_post)
        result = xonly_satisfiable(solver.vocabulary, formula)
        assert result.satisfiable
        assert len(result.witness) == 1


class TestAccLTLPlusPipeline:
    def test_ltr_satisfiable_with_validated_witness(self, solver, directory):
        probe = directory.access("AcM1", ("Smith",))
        formula = properties.ltr_formula(solver.vocabulary, probe, join_query())
        result = accltl_plus_satisfiable(solver.vocabulary, formula)
        assert result.satisfiable
        assert result.witness_validated

    def test_containment_counterexample_unsat_when_contained(self, solver):
        formula = properties.containment_counterexample_formula(
            solver.vocabulary, join_query(), resident_names_query()
        )
        result = accltl_plus_satisfiable(solver.vocabulary, formula)
        assert not result.satisfiable

    def test_rejects_inequalities(self, solver):
        formula = properties.fd_formula(
            solver.vocabulary, FunctionalDependency("Mobile", (0,), 3)
        )
        with pytest.raises(FragmentError):
            accltl_plus_satisfiable(solver.vocabulary, formula)

    def test_grounded_search_and_formula_reduction_agree(self, solver, directory):
        # On a tiny formula both routes to grounded satisfiability agree.
        smith = atom(parse_cq('Q :- IsBind__AcM1("Smith")'))
        formula = eventually(smith)
        by_search = accltl_plus_satisfiable(
            solver.vocabulary, formula, grounded_only=True
        )
        by_formula = accltl_plus_satisfiable(
            solver.vocabulary, formula, grounded_only=True, grounded_via_formula=True,
            max_paths=2000,
        )
        assert by_search.satisfiable == by_formula.satisfiable is False
        ungrounded = accltl_plus_satisfiable(solver.vocabulary, formula)
        assert ungrounded.satisfiable


class TestDispatchingSolver:
    def test_dispatch_matches_fragment(self, solver, directory):
        probe = directory.access("AcM1", ("Smith",))
        cases = {
            Fragment.ACCLTL_ZEROARY: properties.access_order_formula(
                solver.vocabulary, "AcM2", "AcM1"
            ),
            Fragment.ACCLTL_PLUS: properties.ltr_formula(
                solver.vocabulary, probe, join_query()
            ),
            Fragment.ACCLTL_ZEROARY_INEQ: properties.fd_formula(
                solver.vocabulary, FunctionalDependency("Mobile", (0,), 3)
            ),
        }
        for fragment, formula in cases.items():
            result = solver.satisfiable(formula)
            assert result.fragment == fragment
            assert result.satisfiable

    def test_undecidable_fragment_uses_bounded_search(self, solver):
        negative_binding = globally(lnot(atom(parse_cq("Q :- IsBind__AcM1(x)"))))
        result = solver.satisfiable(negative_binding, bounded_path_length=2)
        assert result.fragment == Fragment.ACCLTL_FULL
        assert "bounded" in result.procedure
        assert result.satisfiable  # a path that never uses AcM1 exists

    def test_validity_of_containment_formula(self, solver):
        formula = properties.containment_formula(
            solver.vocabulary, join_query(), resident_names_query()
        )
        result = solver.valid(formula)
        assert not result.satisfiable  # no counterexample: the formula is valid

    def test_witnesses_are_real_paths(self, solver):
        formula = properties.ltr_formula_zeroary(solver.vocabulary, "AcM1", join_query())
        result = solver.satisfiable(formula)
        assert result.satisfiable
        assert path_satisfies(solver.vocabulary, result.witness, formula)
