"""Tests for the access vocabulary and transition structures."""

import pytest

from repro.access.path import path_from_pairs
from repro.core.transition import path_structures, transition_structure
from repro.core.vocabulary import (
    AccessVocabulary,
    base_relation_of,
    is_isbind,
    is_isbind0,
    is_post,
    is_pre,
    isbind0_name,
    isbind_name,
    method_of_isbind,
    post_name,
    pre_name,
)
from repro.queries.evaluation import holds
from repro.queries.parser import parse_cq
from repro.relational.instance import Instance


class TestNaming:
    def test_pre_post_names(self):
        assert pre_name("R") == "R__pre"
        assert post_name("R") == "R__post"
        assert base_relation_of("R__pre") == "R"
        assert base_relation_of("R__post") == "R"
        with pytest.raises(ValueError):
            base_relation_of("R")

    def test_isbind_names(self):
        assert is_isbind(isbind_name("AcM1"))
        assert is_isbind0(isbind0_name("AcM1"))
        assert method_of_isbind(isbind_name("AcM1")) == "AcM1"
        assert method_of_isbind(isbind0_name("AcM1")) == "AcM1"
        with pytest.raises(ValueError):
            method_of_isbind("R__pre")

    def test_predicates(self):
        assert is_pre("R__pre")
        assert is_post("R__post")
        assert not is_pre("R__post")


class TestVocabulary:
    def test_vocabulary_contains_all_copies(self, directory):
        vocabulary = AccessVocabulary.of(directory)
        names = set(vocabulary.schema.names())
        assert {"Mobile__pre", "Mobile__post", "Address__pre", "Address__post"} <= names
        assert isbind_name("AcM1") in names
        assert isbind0_name("AcM2") in names
        # IsBind arity equals the number of input positions.
        assert vocabulary.schema.arity(isbind_name("AcM2")) == 2
        assert vocabulary.schema.arity(isbind0_name("AcM2")) == 0

    def test_query_pre_post_renaming(self, directory_vocab):
        query = parse_cq("Q(n) :- Mobile(n, pc, s, p)")
        pre = directory_vocab.query_pre(query)
        post = directory_vocab.query_post(query)
        assert pre.relations() == frozenset({"Mobile__pre"})
        assert post.relations() == frozenset({"Mobile__post"})

    def test_mentions_binding(self, directory_vocab):
        query = parse_cq("Q :- IsBind__AcM1(x), Mobile__pre(x, p, s, n)")
        assert directory_vocab.mentions_nary_binding(query)
        assert directory_vocab.mentions_binding(query)
        plain = directory_vocab.query_pre(parse_cq("Q :- Mobile(a, b, c, d)"))
        assert not directory_vocab.mentions_binding(plain)


class TestTransitionStructures:
    def test_structure_interprets_pre_post_and_binding(self, directory, directory_vocab):
        before = Instance(directory.schema)
        access = directory.access("AcM1", ("Smith",))
        after = before.copy()
        after.add("Mobile", ("Smith", "OX13QD", "Parks Rd", 5551212))
        structure = transition_structure(directory_vocab, before, access, after)
        data = structure.structure
        assert data.tuples("Mobile__pre") == frozenset()
        assert data.tuples("Mobile__post") == frozenset(
            {("Smith", "OX13QD", "Parks Rd", 5551212)}
        )
        assert data.tuples(isbind_name("AcM1")) == frozenset({("Smith",)})
        assert data.tuples(isbind0_name("AcM1")) == frozenset({()})
        assert data.tuples(isbind0_name("AcM2")) == frozenset()
        assert structure.method_name == "AcM1"

    def test_path_structures_chain_configurations(self, directory, directory_vocab):
        path = path_from_pairs(
            directory,
            [
                ("AcM1", ("Smith",), [("Smith", "OX13QD", "Parks Rd", 5551212)]),
                ("AcM2", ("Parks Rd", "OX13QD"), [("Parks Rd", "OX13QD", "Jones", 16)]),
            ],
        )
        structures = path_structures(directory_vocab, path)
        assert len(structures) == 2
        # The post of the first transition equals the pre of the second.
        first_post = structures[0].structure.tuples("Mobile__post")
        second_pre = structures[1].structure.tuples("Mobile__pre")
        assert first_post == second_pre

    def test_structures_queryable_with_embedded_sentences(
        self, directory, directory_vocab
    ):
        path = path_from_pairs(
            directory,
            [("AcM1", ("Smith",), [("Smith", "OX13QD", "Parks Rd", 5551212)])],
        )
        structures = path_structures(directory_vocab, path)
        query = parse_cq('Q :- Mobile__post("Smith", pc, s, p), IsBind__AcM1("Smith")')
        assert holds(query, structures[0].structure)
        pre_query = parse_cq('Q :- Mobile__pre("Smith", pc, s, p)')
        assert not holds(pre_query, structures[0].structure)
