"""Tests for the Datalog substrate: programs, evaluation, expansions, containment."""

import gc
import weakref

import pytest

from repro.datalog.containment import (
    datalog_contained_in_ucq,
    expansion_canonical_databases,
    find_counterexample_database,
    nonrecursive_program_to_ucq,
)
from repro.datalog import evaluation as datalog_evaluation
from repro.datalog.evaluation import (
    FixedpointTruncated,
    _BODY_QUERY_CACHE,
    _body_query,
    accepts,
    evaluate_program,
    fixedpoint_generations,
    goal_facts,
)
from repro.datalog.expansion import count_expansions, expansions
from repro.datalog.program import DatalogError, DatalogProgram, Rule
from repro.queries.atoms import Atom, Equality, Inequality
from repro.queries.parser import parse_cq, parse_ucq
from repro.queries.terms import Constant, Variable
from repro.relational.instance import Instance
from repro.relational.schema import make_schema
from repro.store.snapshot import SnapshotInstance


def var(name):
    return Variable(name)


@pytest.fixture
def edge_schema():
    return make_schema({"Edge": 2})


@pytest.fixture
def tc_program(edge_schema):
    """Transitive closure of Edge with goal Path."""
    rules = [
        Rule(head=Atom("Path", (var("x"), var("y"))), body=(Atom("Edge", (var("x"), var("y"))),)),
        Rule(
            head=Atom("Path", (var("x"), var("z"))),
            body=(Atom("Edge", (var("x"), var("y"))), Atom("Path", (var("y"), var("z")))),
        ),
    ]
    return DatalogProgram(rules=rules, edb_schema=edge_schema, goal="Path")


@pytest.fixture
def chain_db(edge_schema):
    instance = Instance(edge_schema)
    instance.add_all("Edge", [("a", "b"), ("b", "c"), ("c", "d")])
    return instance


class TestProgramValidation:
    def test_unsafe_rule_rejected(self):
        with pytest.raises(DatalogError):
            Rule(head=Atom("P", (var("x"),)), body=())

    def test_edb_head_rejected(self, edge_schema):
        rule = Rule(head=Atom("Edge", (var("x"), var("y"))), body=(Atom("Edge", (var("x"), var("y"))),))
        with pytest.raises(DatalogError):
            DatalogProgram(rules=[rule], edb_schema=edge_schema, goal="Edge")

    def test_arity_mismatch_rejected(self, edge_schema):
        rules = [
            Rule(head=Atom("P", (var("x"),)), body=(Atom("Edge", (var("x"), var("y"))),)),
            Rule(head=Atom("P", (var("x"), var("y"))), body=(Atom("Edge", (var("x"), var("y"))),)),
        ]
        with pytest.raises(DatalogError):
            DatalogProgram(rules=rules, edb_schema=edge_schema, goal="P")

    def test_unknown_goal_rejected(self, edge_schema):
        rules = [Rule(head=Atom("P", (var("x"),)), body=(Atom("Edge", (var("x"), var("y"))),))]
        with pytest.raises(DatalogError):
            DatalogProgram(rules=rules, edb_schema=edge_schema, goal="Missing")

    def test_recursion_detection(self, tc_program, edge_schema):
        assert not tc_program.is_nonrecursive()
        nonrec = DatalogProgram(
            rules=[Rule(head=Atom("P", (var("x"),)), body=(Atom("Edge", (var("x"), var("y"))),))],
            edb_schema=edge_schema,
            goal="P",
        )
        assert nonrec.is_nonrecursive()
        assert nonrec.dependency_order() == ["P"]

    def test_idb_names_and_size(self, tc_program):
        assert tc_program.idb_names == frozenset({"Path"})
        assert tc_program.size() > 0


class TestEvaluation:
    def test_transitive_closure(self, tc_program, chain_db):
        result = goal_facts(tc_program, chain_db)
        assert ("a", "d") in result
        assert ("a", "b") in result
        assert len(result) == 6

    def test_naive_and_semi_naive_agree(self, tc_program, chain_db):
        semi = evaluate_program(tc_program, chain_db, semi_naive=True)
        naive = evaluate_program(tc_program, chain_db, semi_naive=False)
        assert semi.tuples("Path") == naive.tuples("Path")

    def test_accepts(self, tc_program, chain_db, edge_schema):
        assert accepts(tc_program, chain_db)
        assert not accepts(tc_program, Instance(edge_schema))

    def test_constants_in_rules(self, edge_schema, chain_db):
        rules = [
            Rule(
                head=Atom("FromA", (var("y"),)),
                body=(Atom("Edge", (Constant("a"), var("y"))),),
            )
        ]
        program = DatalogProgram(rules=rules, edb_schema=edge_schema, goal="FromA")
        assert goal_facts(program, chain_db) == frozenset({("b",)})

    def test_max_rounds_limits_fixedpoint(self, tc_program, chain_db):
        limited = evaluate_program(
            tc_program, chain_db, max_rounds=1, allow_truncation=True
        )
        assert len(limited.tuples("Path")) < 6

    def test_store_backed_by_default(self, tc_program, chain_db):
        fixedpoint = evaluate_program(tc_program, chain_db)
        assert isinstance(fixedpoint, SnapshotInstance)
        legacy = evaluate_program(tc_program, chain_db, store_backed=False)
        assert isinstance(legacy, Instance)
        assert fixedpoint.freeze() == legacy.freeze()

    def test_generation_log_requires_store(self, tc_program, chain_db):
        with pytest.raises(ValueError):
            evaluate_program(
                tc_program, chain_db, store_backed=False, generation_log=[]
            )

    def test_empty_body_rule_fires(self, edge_schema, chain_db):
        # No delta variant exists for an empty body; the full-join path
        # must still derive the constant fact.
        rules = [
            Rule(head=Atom("Seed", (Constant("k"),)), body=()),
            Rule(
                head=Atom("Both", (var("y"),)),
                body=(Atom("Seed", (var("y"),)),),
            ),
        ]
        program = DatalogProgram(rules=rules, edb_schema=edge_schema, goal="Both")
        assert goal_facts(program, chain_db) == frozenset({("k",)})

    def test_rules_with_comparisons(self, edge_schema, chain_db):
        rules = [
            Rule(
                head=Atom("Hop", (var("x"), var("z"))),
                body=(
                    Atom("Edge", (var("x"), var("y"))),
                    Atom("Edge", (var("y"), var("z"))),
                ),
                inequalities=(Inequality(var("x"), var("z")),),
            )
        ]
        program = DatalogProgram(rules=rules, edb_schema=edge_schema, goal="Hop")
        for store in (True, False):
            result = evaluate_program(program, chain_db, store_backed=store)
            assert result.tuples("Hop") == frozenset({("a", "c"), ("b", "d")})


class TestTruncationSurfaced:
    def test_truncated_run_raises_by_default(self, tc_program, chain_db):
        with pytest.raises(FixedpointTruncated) as excinfo:
            evaluate_program(tc_program, chain_db, max_rounds=1)
        # The exception carries the partial state for diagnostics.
        assert excinfo.value.rounds == 1
        assert len(excinfo.value.state.tuples("Path")) < 6

    def test_sufficient_budget_converges_without_raising(
        self, tc_program, chain_db
    ):
        # The chain needs 3 derivation rounds plus one empty round to
        # *verify* convergence; a budget of 4 therefore succeeds.
        full = evaluate_program(tc_program, chain_db, max_rounds=4)
        assert len(full.tuples("Path")) == 6

    def test_exact_round_budget_is_still_truncation(self, tc_program, chain_db):
        # Round 3 derives the last fact, so a 3-round budget never
        # observes an empty round: convergence is unverified and the run
        # must be reported truncated, not silently returned.
        with pytest.raises(FixedpointTruncated):
            evaluate_program(tc_program, chain_db, max_rounds=3)
        truncated = evaluate_program(
            tc_program, chain_db, max_rounds=3, allow_truncation=True
        )
        assert len(truncated.tuples("Path")) == 6

    def test_truncated_accepts_cannot_report_wrong_verdict(
        self, tc_program, chain_db
    ):
        # accepts/goal_facts run with no round budget, so they can never
        # silently build a verdict on a truncated fixedpoint.
        assert accepts(tc_program, chain_db)
        assert len(goal_facts(tc_program, chain_db)) == 6

    def test_fixedpoint_generations_surfaces_truncation(
        self, tc_program, chain_db
    ):
        with pytest.raises(FixedpointTruncated):
            fixedpoint_generations(tc_program, chain_db, max_rounds=1)
        partial = fixedpoint_generations(
            tc_program, chain_db, max_rounds=1, allow_truncation=True
        )
        assert len(partial) == 2  # the seed generation + one round

    def test_naive_mode_truncates_identically(self, tc_program, chain_db):
        with pytest.raises(FixedpointTruncated):
            evaluate_program(tc_program, chain_db, max_rounds=1, semi_naive=False)


class TestBodyQueryCache:
    def _rule(self, tag):
        return Rule(
            head=Atom("P", (var("x"),)),
            body=(Atom("Edge", (var("x"), Constant(tag))),),
        )

    def test_stale_identity_entry_is_rejected(self):
        # The id()-recycling scenario the ``cached[0] is rule`` guard
        # defends against: an entry keyed at this rule's id() but pinning
        # a *different* rule must never be served.
        r1 = self._rule("t1")
        r2 = self._rule("t2")
        q1 = _body_query(r1)
        _BODY_QUERY_CACHE[id(r2)] = (r1, q1)  # plant the stale entry
        try:
            q2 = _body_query(r2)
            assert q2 is not q1
            assert q2.atoms == r2.body
        finally:
            _BODY_QUERY_CACHE.pop(id(r1), None)
            _BODY_QUERY_CACHE.pop(id(r2), None)

    def test_entry_pins_rule_until_eviction(self, monkeypatch):
        # While an entry lives it holds a strong reference to its rule,
        # so the identity key *cannot* be recycled; only LRU eviction
        # unpins it — and then the entry is gone, so a new rule allocated
        # at the recycled id() compiles fresh instead of seeing stale
        # state.  This is the invariant that makes the id() keying sound.
        monkeypatch.setattr(datalog_evaluation, "_BODY_QUERY_CACHE_MAX", 4)
        _BODY_QUERY_CACHE.clear()
        pinned = self._rule("pinned")
        pinned_id = id(pinned)
        reference = weakref.ref(pinned)
        _body_query(pinned)
        del pinned
        gc.collect()
        assert reference() is not None, "live cache entry must pin its rule"
        # Force eviction of the pinned entry by filling the tiny cache.
        for index in range(8):
            _body_query(self._rule(f"filler{index}"))
        assert len(_BODY_QUERY_CACHE) <= 5
        gc.collect()
        assert reference() is None, "eviction must unpin the rule"
        # If the allocator recycled the evicted rule's id for a filler,
        # the entry at that key pins the *new* rule (the identity guard's
        # precondition) — never the dead one.
        entry = _BODY_QUERY_CACHE.get(pinned_id)
        if entry is not None:
            assert id(entry[0]) == pinned_id
        # A new rule (possibly allocated at the recycled id) gets a
        # fresh compilation keyed to itself.
        fresh = self._rule("fresh")
        query = _body_query(fresh)
        assert _BODY_QUERY_CACHE[id(fresh)][0] is fresh
        assert query.atoms == fresh.body
        _BODY_QUERY_CACHE.clear()


class TestExpansions:
    def test_nonrecursive_expansions_finite(self, edge_schema):
        rules = [
            Rule(head=Atom("P", (var("x"),)), body=(Atom("Edge", (var("x"), var("y"))),)),
            Rule(head=Atom("P", (var("x"),)), body=(Atom("Edge", (var("y"), var("x"))),)),
        ]
        program = DatalogProgram(rules=rules, edb_schema=edge_schema, goal="P")
        expansion_list = list(expansions(program, max_depth=3))
        assert len(expansion_list) == 2
        for expansion in expansion_list:
            assert expansion.relations() == frozenset({"Edge"})

    def test_recursive_expansion_count_grows_with_depth(self, tc_program):
        shallow = count_expansions(tc_program, max_depth=2)
        deep = count_expansions(tc_program, max_depth=4)
        assert deep > shallow >= 1

    def test_expansions_are_edb_only(self, tc_program):
        for expansion in expansions(tc_program, max_depth=4, max_expansions=10):
            assert expansion.relations() == frozenset({"Edge"})

    def test_nonrecursive_to_ucq(self, edge_schema):
        rules = [
            Rule(head=Atom("P", (var("x"),)), body=(Atom("Edge", (var("x"), var("y"))),)),
        ]
        program = DatalogProgram(rules=rules, edb_schema=edge_schema, goal="P")
        ucq = nonrecursive_program_to_ucq(program)
        assert len(ucq) == 1

    def test_nonrecursive_to_ucq_rejects_recursion(self, tc_program):
        with pytest.raises(ValueError):
            nonrecursive_program_to_ucq(tc_program)


class TestContainment:
    def test_program_contained_in_weaker_query(self, tc_program):
        # Every Path(x, y) tuple starts with an edge out of x and ends with
        # an edge into y.
        query = parse_cq("Q(x, y) :- Edge(x, z), Edge(w, y)")
        result = datalog_contained_in_ucq(tc_program, query, max_depth=4)
        assert result.contained

    def test_program_not_contained(self, tc_program):
        query = parse_cq("Q :- Edge(x, x)")
        result = datalog_contained_in_ucq(tc_program, query, max_depth=3)
        assert not result.contained
        assert result.counterexample is not None

    def test_nonrecursive_containment_exact(self, edge_schema):
        rules = [
            Rule(
                head=Atom("P", (var("x"), var("z"))),
                body=(Atom("Edge", (var("x"), var("y"))), Atom("Edge", (var("y"), var("z")))),
            )
        ]
        program = DatalogProgram(rules=rules, edb_schema=edge_schema, goal="P")
        contained = datalog_contained_in_ucq(
            program, parse_cq("Q(x, z) :- Edge(x, w), Edge(u, z)")
        )
        assert contained.contained
        assert contained.exhaustive
        not_contained = datalog_contained_in_ucq(program, parse_cq("Q(x, z) :- Edge(x, z)"))
        assert not not_contained.contained

    def test_containment_in_union(self, edge_schema):
        rules = [
            Rule(head=Atom("P", (var("x"),)), body=(Atom("Edge", (var("x"), var("y"))),)),
            Rule(head=Atom("P", (var("x"),)), body=(Atom("Edge", (var("y"), var("x"))),)),
        ]
        program = DatalogProgram(rules=rules, edb_schema=edge_schema, goal="P")
        union = parse_ucq("Q(x) :- Edge(x, y) ; Q(x) :- Edge(y, x)")
        assert datalog_contained_in_ucq(program, union).contained

    def test_recursive_containment_sound_on_true_instance(self, tc_program):
        query = parse_cq("Q(x, y) :- Edge(x, z), Edge(w, y)")
        result = datalog_contained_in_ucq(tc_program, query, max_depth=3)
        # Containment holds: every path leaves x by an edge and enters y by one.
        assert result.contained

    def test_counterexample_database_search(self, tc_program):
        query = parse_cq("Q :- Edge(x, x)")
        databases = expansion_canonical_databases(tc_program, max_depth=3)
        counterexample = find_counterexample_database(tc_program, query, databases)
        assert counterexample is not None
