"""Tests for the Datalog substrate: programs, evaluation, expansions, containment."""

import pytest

from repro.datalog.containment import (
    datalog_contained_in_ucq,
    expansion_canonical_databases,
    find_counterexample_database,
    nonrecursive_program_to_ucq,
)
from repro.datalog.evaluation import accepts, evaluate_program, goal_facts
from repro.datalog.expansion import count_expansions, expansions
from repro.datalog.program import DatalogError, DatalogProgram, Rule
from repro.queries.atoms import Atom
from repro.queries.parser import parse_cq, parse_ucq
from repro.queries.terms import Constant, Variable
from repro.relational.instance import Instance
from repro.relational.schema import make_schema


def var(name):
    return Variable(name)


@pytest.fixture
def edge_schema():
    return make_schema({"Edge": 2})


@pytest.fixture
def tc_program(edge_schema):
    """Transitive closure of Edge with goal Path."""
    rules = [
        Rule(head=Atom("Path", (var("x"), var("y"))), body=(Atom("Edge", (var("x"), var("y"))),)),
        Rule(
            head=Atom("Path", (var("x"), var("z"))),
            body=(Atom("Edge", (var("x"), var("y"))), Atom("Path", (var("y"), var("z")))),
        ),
    ]
    return DatalogProgram(rules=rules, edb_schema=edge_schema, goal="Path")


@pytest.fixture
def chain_db(edge_schema):
    instance = Instance(edge_schema)
    instance.add_all("Edge", [("a", "b"), ("b", "c"), ("c", "d")])
    return instance


class TestProgramValidation:
    def test_unsafe_rule_rejected(self):
        with pytest.raises(DatalogError):
            Rule(head=Atom("P", (var("x"),)), body=())

    def test_edb_head_rejected(self, edge_schema):
        rule = Rule(head=Atom("Edge", (var("x"), var("y"))), body=(Atom("Edge", (var("x"), var("y"))),))
        with pytest.raises(DatalogError):
            DatalogProgram(rules=[rule], edb_schema=edge_schema, goal="Edge")

    def test_arity_mismatch_rejected(self, edge_schema):
        rules = [
            Rule(head=Atom("P", (var("x"),)), body=(Atom("Edge", (var("x"), var("y"))),)),
            Rule(head=Atom("P", (var("x"), var("y"))), body=(Atom("Edge", (var("x"), var("y"))),)),
        ]
        with pytest.raises(DatalogError):
            DatalogProgram(rules=rules, edb_schema=edge_schema, goal="P")

    def test_unknown_goal_rejected(self, edge_schema):
        rules = [Rule(head=Atom("P", (var("x"),)), body=(Atom("Edge", (var("x"), var("y"))),))]
        with pytest.raises(DatalogError):
            DatalogProgram(rules=rules, edb_schema=edge_schema, goal="Missing")

    def test_recursion_detection(self, tc_program, edge_schema):
        assert not tc_program.is_nonrecursive()
        nonrec = DatalogProgram(
            rules=[Rule(head=Atom("P", (var("x"),)), body=(Atom("Edge", (var("x"), var("y"))),))],
            edb_schema=edge_schema,
            goal="P",
        )
        assert nonrec.is_nonrecursive()
        assert nonrec.dependency_order() == ["P"]

    def test_idb_names_and_size(self, tc_program):
        assert tc_program.idb_names == frozenset({"Path"})
        assert tc_program.size() > 0


class TestEvaluation:
    def test_transitive_closure(self, tc_program, chain_db):
        result = goal_facts(tc_program, chain_db)
        assert ("a", "d") in result
        assert ("a", "b") in result
        assert len(result) == 6

    def test_naive_and_semi_naive_agree(self, tc_program, chain_db):
        semi = evaluate_program(tc_program, chain_db, semi_naive=True)
        naive = evaluate_program(tc_program, chain_db, semi_naive=False)
        assert semi.tuples("Path") == naive.tuples("Path")

    def test_accepts(self, tc_program, chain_db, edge_schema):
        assert accepts(tc_program, chain_db)
        assert not accepts(tc_program, Instance(edge_schema))

    def test_constants_in_rules(self, edge_schema, chain_db):
        rules = [
            Rule(
                head=Atom("FromA", (var("y"),)),
                body=(Atom("Edge", (Constant("a"), var("y"))),),
            )
        ]
        program = DatalogProgram(rules=rules, edb_schema=edge_schema, goal="FromA")
        assert goal_facts(program, chain_db) == frozenset({("b",)})

    def test_max_rounds_limits_fixedpoint(self, tc_program, chain_db):
        limited = evaluate_program(tc_program, chain_db, max_rounds=1)
        assert len(limited.tuples("Path")) < 6


class TestExpansions:
    def test_nonrecursive_expansions_finite(self, edge_schema):
        rules = [
            Rule(head=Atom("P", (var("x"),)), body=(Atom("Edge", (var("x"), var("y"))),)),
            Rule(head=Atom("P", (var("x"),)), body=(Atom("Edge", (var("y"), var("x"))),)),
        ]
        program = DatalogProgram(rules=rules, edb_schema=edge_schema, goal="P")
        expansion_list = list(expansions(program, max_depth=3))
        assert len(expansion_list) == 2
        for expansion in expansion_list:
            assert expansion.relations() == frozenset({"Edge"})

    def test_recursive_expansion_count_grows_with_depth(self, tc_program):
        shallow = count_expansions(tc_program, max_depth=2)
        deep = count_expansions(tc_program, max_depth=4)
        assert deep > shallow >= 1

    def test_expansions_are_edb_only(self, tc_program):
        for expansion in expansions(tc_program, max_depth=4, max_expansions=10):
            assert expansion.relations() == frozenset({"Edge"})

    def test_nonrecursive_to_ucq(self, edge_schema):
        rules = [
            Rule(head=Atom("P", (var("x"),)), body=(Atom("Edge", (var("x"), var("y"))),)),
        ]
        program = DatalogProgram(rules=rules, edb_schema=edge_schema, goal="P")
        ucq = nonrecursive_program_to_ucq(program)
        assert len(ucq) == 1

    def test_nonrecursive_to_ucq_rejects_recursion(self, tc_program):
        with pytest.raises(ValueError):
            nonrecursive_program_to_ucq(tc_program)


class TestContainment:
    def test_program_contained_in_weaker_query(self, tc_program):
        # Every Path(x, y) tuple starts with an edge out of x and ends with
        # an edge into y.
        query = parse_cq("Q(x, y) :- Edge(x, z), Edge(w, y)")
        result = datalog_contained_in_ucq(tc_program, query, max_depth=4)
        assert result.contained

    def test_program_not_contained(self, tc_program):
        query = parse_cq("Q :- Edge(x, x)")
        result = datalog_contained_in_ucq(tc_program, query, max_depth=3)
        assert not result.contained
        assert result.counterexample is not None

    def test_nonrecursive_containment_exact(self, edge_schema):
        rules = [
            Rule(
                head=Atom("P", (var("x"), var("z"))),
                body=(Atom("Edge", (var("x"), var("y"))), Atom("Edge", (var("y"), var("z")))),
            )
        ]
        program = DatalogProgram(rules=rules, edb_schema=edge_schema, goal="P")
        contained = datalog_contained_in_ucq(
            program, parse_cq("Q(x, z) :- Edge(x, w), Edge(u, z)")
        )
        assert contained.contained
        assert contained.exhaustive
        not_contained = datalog_contained_in_ucq(program, parse_cq("Q(x, z) :- Edge(x, z)"))
        assert not not_contained.contained

    def test_containment_in_union(self, edge_schema):
        rules = [
            Rule(head=Atom("P", (var("x"),)), body=(Atom("Edge", (var("x"), var("y"))),)),
            Rule(head=Atom("P", (var("x"),)), body=(Atom("Edge", (var("y"), var("x"))),)),
        ]
        program = DatalogProgram(rules=rules, edb_schema=edge_schema, goal="P")
        union = parse_ucq("Q(x) :- Edge(x, y) ; Q(x) :- Edge(y, x)")
        assert datalog_contained_in_ucq(program, union).contained

    def test_recursive_containment_sound_on_true_instance(self, tc_program):
        query = parse_cq("Q(x, y) :- Edge(x, z), Edge(w, y)")
        result = datalog_contained_in_ucq(tc_program, query, max_depth=3)
        # Containment holds: every path leaves x by an edge and enters y by one.
        assert result.contained

    def test_counterexample_database_search(self, tc_program):
        query = parse_cq("Q :- Edge(x, x)")
        databases = expansion_canonical_databases(tc_program, max_depth=3)
        counterexample = find_counterexample_database(tc_program, query, databases)
        assert counterexample is not None
