"""Tests for the unified reduction engine (repro.engine).

The load-bearing property is *field-identical equivalence*: whatever the
engine batches, dedups, memoizes or ships to a pool worker must come back
exactly equal — dataclass field by dataclass field — to the legacy
per-call procedures it replaced.  The randomized suites below drive all
three access procedures (relevance, AP-containment, answerability)
through seeded :class:`~repro.workloads.generators.WorkloadGenerator`
workloads and compare against the ``*_legacy`` oracle paths, and the
pooled cases go through the real worker entry (``execute_task`` submitted
to the shared process pool, plus an explicit pickle round-trip).
"""

from __future__ import annotations

import pickle

import pytest

from repro.access.answerability import (
    is_answerable_exactly,
    is_answerable_exactly_legacy,
)
from repro.access.containment_ap import (
    contained_under_access_patterns,
    contained_under_access_patterns_legacy,
)
from repro.access.relevance import (
    long_term_relevant,
    long_term_relevant_legacy,
    relevant_accesses,
)
from repro.automata.emptiness import automaton_emptiness
from repro.automata.library import ltr_automaton
from repro.core.bounded_check import (
    Bounds,
    bounded_satisfiability,
    bounded_satisfiability_legacy,
)
from repro.core import properties
from repro.core.solver import AccLTLSolver
from repro.engine import (
    CachePolicy,
    DecisionEngine,
    Deduper,
    answerability_task,
    containment_task,
    execute_task,
    query_key,
    relevance_task,
)
from repro.queries.cq import ConjunctiveQuery
from repro.queries.parser import parse_cq
from repro.store import workqueue
from repro.workloads.generators import WorkloadGenerator
from repro.workloads.matrices import (
    instance_prefixes,
    probe_accesses,
    query_workload,
)
from repro.workloads.scenarios import standard_scenarios


def _relevance_workload(seed: int):
    generator = WorkloadGenerator(seed=seed)
    schema = generator.access_schema(
        num_relations=3, methods_per_relation=2, max_inputs=2
    )
    hidden = generator.instance(schema.schema, tuples_per_relation=6, domain_size=6)
    initial = generator.instance(schema.schema, tuples_per_relation=2, domain_size=6)
    query = generator.ucq(
        schema.schema, num_disjuncts=2, num_atoms=2, num_variables=3
    )
    accesses = probe_accesses(schema, hidden)
    return schema, initial, query, accesses


class TestRandomizedEquivalence:
    """Engine-batched results are field-identical to the legacy paths."""

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("grounded", [False, True])
    def test_relevance_matrix_matches_legacy(self, seed, grounded):
        schema, initial, query, accesses = _relevance_workload(seed)
        legacy = [
            long_term_relevant_legacy(
                schema,
                access,
                query,
                initial=initial,
                grounded=grounded,
                require_boolean_access=False,
            )
            for access in accesses
        ]
        engine = DecisionEngine()
        batched = engine.relevance_matrix(
            schema,
            accesses,
            query,
            initial=initial,
            grounded=grounded,
            require_boolean_access=False,
        )
        assert batched == legacy
        stats = engine.stats()
        assert stats["computed"] + stats["batch_dedup_hits"] == len(accesses)

    @pytest.mark.parametrize("seed", range(5))
    def test_containment_matrix_matches_legacy(self, seed):
        generator = WorkloadGenerator(seed=seed)
        schema = generator.access_schema(
            num_relations=3, methods_per_relation=2, max_inputs=1
        )
        queries = query_workload(
            [
                generator.conjunctive_query(
                    schema.schema, num_atoms=2, num_variables=4
                )
                for _ in range(3)
            ],
            resubmissions=2,
        )
        legacy = [
            [
                contained_under_access_patterns_legacy(schema, q1, q2)
                for q2 in queries
            ]
            for q1 in queries
        ]
        engine = DecisionEngine()
        batched = engine.containment_matrix(schema, queries)
        assert batched == legacy
        # The re-submitted copies differ only in their cosmetic names, so
        # the canonical fingerprints must collapse them.
        assert engine.stats()["batch_dedup_hits"] > 0

    @pytest.mark.parametrize("seed", range(5))
    def test_answerability_sweep_matches_legacy(self, seed):
        generator = WorkloadGenerator(seed=seed)
        schema = generator.access_schema(
            num_relations=3, methods_per_relation=2, max_inputs=1
        )
        hidden = generator.instance(
            schema.schema, tuples_per_relation=8, domain_size=6
        )
        query = generator.ucq(
            schema.schema, num_disjuncts=2, num_atoms=2, num_variables=3
        )
        instances = instance_prefixes(hidden, steps=3)
        instances.append(instances[-1].copy())  # a repeated instance dedups
        legacy = [
            is_answerable_exactly_legacy(schema, query, instance, ["v0"])
            for instance in instances
        ]
        engine = DecisionEngine()
        swept = engine.answerability_sweep(schema, query, instances, ["v0"])
        assert swept == legacy
        assert engine.stats()["batch_dedup_hits"] >= 1

    def test_single_shot_wrappers_match_legacy(self):
        """The rewired public signatures stay exact on the paper's schema."""
        schema, initial, query, accesses = _relevance_workload(11)
        for access in accesses[:4]:
            assert long_term_relevant(
                schema, access, query, initial=initial, require_boolean_access=False
            ) == long_term_relevant_legacy(
                schema, access, query, initial=initial, require_boolean_access=False
            )
        generator = WorkloadGenerator(seed=11)
        q1 = generator.conjunctive_query(schema.schema, num_atoms=2, num_variables=3)
        q2 = generator.conjunctive_query(schema.schema, num_atoms=2, num_variables=3)
        assert contained_under_access_patterns(
            schema, q1, q2
        ) == contained_under_access_patterns_legacy(schema, q1, q2)
        assert is_answerable_exactly(
            schema, query, initial, ["v0"]
        ) == is_answerable_exactly_legacy(schema, query, initial, ["v0"])

    def test_bounded_check_wrapper_matches_legacy(self):
        scenario = next(s for s in standard_scenarios() if s.name == "directory")
        vocabulary = AccLTLSolver(scenario.access_schema).vocabulary
        formula = properties.ltr_formula(
            vocabulary, scenario.probe_access, scenario.query_one
        )
        bounds = Bounds(max_path_length=3, max_paths=2000)
        assert bounded_satisfiability(
            vocabulary, formula, bounds
        ) == bounded_satisfiability_legacy(vocabulary, formula, bounds)


class TestCrossRequestMemo:
    def test_second_batch_served_from_memo(self):
        schema, initial, query, accesses = _relevance_workload(3)
        engine = DecisionEngine()
        first = engine.relevance_matrix(
            schema, accesses, query, initial=initial, require_boolean_access=False
        )
        computed_once = engine.stats()["computed"]
        second = engine.relevance_matrix(
            schema, accesses, query, initial=initial, require_boolean_access=False
        )
        assert first == second
        stats = engine.stats()
        assert stats["computed"] == computed_once  # nothing recomputed
        assert stats["memo_hits"] >= computed_once
        assert stats["cross_request_hit_rate"] > 0

    def test_memo_keys_are_content_addressed(self):
        """Mutating the instance changes the fingerprint, so no stale hit."""
        schema, initial, query, accesses = _relevance_workload(4)
        engine = DecisionEngine()
        engine.answerability_sweep(schema, query, [initial])
        grown = initial.copy()
        relation = schema.schema.names()[0]
        arity = schema.schema.arity(relation)
        grown.add(relation, tuple("v5" for _ in range(arity)))
        verdict = engine.answerability_sweep(schema, query, [grown])[0]
        assert verdict == is_answerable_exactly_legacy(schema, query, grown)

    def test_single_shot_policy_has_no_cross_request_state(self):
        from repro.engine import single_shot_engine

        engine = single_shot_engine()
        assert not engine.cache_policy.memoize_results
        assert engine.stats()["memo_entries"] == 0

    def test_caller_mutation_cannot_poison_memo(self, directory):
        """Counterexample Instances are caller-owned (the legacy contract);
        memo and dedup must hand out isolated copies."""
        from repro.workloads.directory import join_query, resident_names_query

        directory.add("AddrScan", "Address", ())
        engine = DecisionEngine()
        first = engine.containment(directory, resident_names_query(), join_query())
        assert not first.contained
        pristine = first.counterexample.copy()
        # Mutate the returned counterexample, then re-request: the memo
        # serves the verdict, but with an unmutated instance.
        first.counterexample.add("Address", ("x", "y", "z", 1))
        second = engine.containment(directory, resident_names_query(), join_query())
        assert engine.stats()["memo_hits"] >= 1
        assert second.counterexample == pristine
        # In-batch duplicates are isolated from each other the same way.
        matrix = engine.containment_matrix(
            directory,
            query_workload([resident_names_query()], resubmissions=2),
            [join_query()],
        )
        matrix[0][0].counterexample.add("Address", ("p", "q", "r", 2))
        assert matrix[1][0].counterexample == pristine

    def test_name_insensitive_query_fingerprints(self):
        q = parse_cq("Q(x) :- R(x, y)")
        renamed = ConjunctiveQuery(
            atoms=q.atoms, head=q.head, name="resubmitted-under-another-name"
        )
        assert query_key(q) == query_key(renamed)


class TestPooledDeterminism:
    def test_pooled_matches_in_process_through_real_worker_entry(self):
        """Explicit ``max_workers`` forces dispatch through the shared pool;
        every field of every result must match the in-process batch."""
        schema, initial, query, accesses = _relevance_workload(7)
        try:
            engine_in = DecisionEngine()
            in_process = engine_in.relevance_matrix(
                schema,
                accesses,
                query,
                initial=initial,
                require_boolean_access=False,
            )
            engine_pool = DecisionEngine(max_workers=2)
            pooled = engine_pool.relevance_matrix(
                schema,
                accesses,
                query,
                initial=initial,
                require_boolean_access=False,
            )
            assert pooled == in_process
            assert engine_pool.stats()["pooled_tasks"] > 0
        finally:
            workqueue.discard_shared_pool()

    def test_task_pickle_round_trip_matches_in_process(self):
        """The worker entry on an unpickled task reproduces the result —
        the spawn-safe property (snapshots rebuild from fact lists)."""
        schema, initial, query, accesses = _relevance_workload(9)
        task = relevance_task(
            schema,
            accesses[0],
            query,
            initial=initial,
            require_boolean_access=False,
        )
        shipped = pickle.loads(pickle.dumps(task))
        assert execute_task(shipped) == execute_task(task)
        generator = WorkloadGenerator(seed=9)
        q1 = generator.conjunctive_query(schema.schema, num_atoms=2, num_variables=3)
        q2 = generator.conjunctive_query(schema.schema, num_atoms=2, num_variables=3)
        ctask = containment_task(schema, q1, q2, initial=initial)
        assert execute_task(pickle.loads(pickle.dumps(ctask))) == execute_task(ctask)
        atask = answerability_task(schema, query, initial, ("v0",))
        assert execute_task(pickle.loads(pickle.dumps(atask))) == execute_task(atask)

    def test_dispatch_gate_stays_closed_by_default(self, monkeypatch):
        """Without an explicit worker count or env opt-in, batches never
        pay pool latency (the PR 4 non-loss discipline)."""
        monkeypatch.delenv("REPRO_PARALLEL_TASKS", raising=False)
        schema, initial, query, accesses = _relevance_workload(2)
        engine = DecisionEngine()
        engine.relevance_matrix(
            schema, accesses, query, initial=initial, require_boolean_access=False
        )
        assert engine.stats()["pooled_tasks"] == 0


class TestNodeMemoPolicy:
    """Satellite: the PR 4 zero-hit node memo is now an engine cache policy."""

    @pytest.fixture(scope="class")
    def ltr_setup(self):
        scenario = next(s for s in standard_scenarios() if s.name == "directory")
        vocabulary = AccLTLSolver(scenario.access_schema).vocabulary
        automaton = ltr_automaton(
            vocabulary, scenario.probe_access, scenario.query_one
        )
        return automaton, vocabulary

    def test_node_memo_off_keeps_verdict_and_guard_cache(self, ltr_setup):
        automaton, vocabulary = ltr_setup
        on = automaton_emptiness(automaton, vocabulary, max_paths=2000)
        off = automaton_emptiness(
            automaton, vocabulary, max_paths=2000, node_memo=False
        )
        assert (on.empty, on.witness) == (off.empty, off.witness)
        # Both caches stay reported either way (the satellite's contract).
        for result in (on, off):
            assert "node_memo_expansions" in result.stats
            assert "sentence_cache_hits" in result.stats
        assert on.stats["node_memo_expansions"] > 0
        assert off.stats["node_memo_expansions"] == 0
        assert off.stats["sentence_cache_hits"] > 0  # guard cache unaffected

    def test_engine_policy_defaults_node_memo_off(self, ltr_setup):
        automaton, vocabulary = ltr_setup
        default_engine = DecisionEngine()
        opted_in = DecisionEngine(cache_policy=CachePolicy(node_memo=True))
        off = default_engine.emptiness(automaton, vocabulary, max_paths=2000)
        on = opted_in.emptiness(automaton, vocabulary, max_paths=2000)
        assert off.stats["node_memo_expansions"] == 0
        assert on.stats["node_memo_expansions"] > 0
        assert (on.empty, on.witness) == (off.empty, off.witness)

    def test_node_memo_only_mode(self, ltr_setup):
        """``memoize=False, node_memo=True`` — the decoupled corner."""
        automaton, vocabulary = ltr_setup
        result = automaton_emptiness(
            automaton, vocabulary, max_paths=2000, memoize=False, node_memo=True
        )
        baseline = automaton_emptiness(automaton, vocabulary, max_paths=2000)
        assert (result.empty, result.witness) == (baseline.empty, baseline.witness)
        assert result.stats["node_memo_expansions"] > 0
        # The cross-candidate guard cache is off; only the per-candidate
        # local verdict reuse remains, so misses dominate the memoized run's.
        assert (
            result.stats["sentence_cache_misses"]
            > baseline.stats["sentence_cache_misses"]
        )


class TestIdentificationDedup:
    """Satellite: identical frozen candidates solve once in AP-containment."""

    def test_duplicate_candidates_counted_and_skipped(self, directory):
        # A union with a redundant (structurally identical) disjunct — the
        # shape a rewritten workload query easily ends up with — freezes
        # every identification of the second disjunct to a candidate the
        # first already produced, which used to re-solve all of them.
        from repro.queries.ucq import UnionOfConjunctiveQueries

        base = parse_cq("Q :- Mobile(n, pc, s, p)")
        duplicate = ConjunctiveQuery(atoms=base.atoms, head=(), name="redundant")
        union = UnionOfConjunctiveQueries((base, duplicate))
        target = parse_cq("Q :- Address(s, pc, n, f)")
        result = contained_under_access_patterns_legacy(directory, union, target)
        assert result.stats is not None
        assert result.stats["identification_dedup_hits"] > 0
        assert (
            result.stats["identification_candidates"]
            > result.stats["identification_dedup_hits"]
        )
        # The dedup is semantics-preserving: the wrapper (engine path)
        # agrees field by field, and so does the singleton union.
        assert contained_under_access_patterns(directory, union, target) == result
        assert (
            contained_under_access_patterns_legacy(directory, base, target).contained
            == result.contained
        )

    def test_counterexample_path_reports_stats(self, directory):
        directory.add("AddrScan", "Address", ())
        from repro.workloads.directory import join_query, resident_names_query

        result = contained_under_access_patterns_legacy(
            directory, resident_names_query(), join_query()
        )
        assert not result.contained
        assert result.stats is not None
        assert result.stats["identification_candidates"] >= 1

    def test_deduper_counts(self):
        dedup = Deduper()
        assert dedup.register("a", 1) is None
        assert dedup.register("a", 2) == 1
        assert dedup.register(None, 3) is None  # unkeyable: never deduped
        assert dedup.register(None, 4) is None
        assert dedup.hits == 1 and dedup.misses == 3


class TestMatrixWorkloadBuilders:
    def test_probe_accesses_limit(self):
        schema, initial, query, _ = _relevance_workload(1)
        assert probe_accesses(schema, initial, limit=0) == []
        full = probe_accesses(schema, initial)
        assert probe_accesses(schema, initial, limit=3) == full[:3]


class TestIteratorInputs:
    """One-shot iterables must not be silently half-consumed."""

    def test_answerability_accepts_value_iterator(self):
        schema, initial, query, _ = _relevance_workload(5)
        expected = is_answerable_exactly_legacy(schema, query, initial, ("v0", "v1"))
        engine = DecisionEngine()
        assert (
            engine.answerability(schema, query, initial, iter(("v0", "v1")))
            == expected
        )
        # The memoized entry must have been keyed on the real values, so a
        # tuple-based repeat is a hit with the same (correct) verdict.
        assert (
            engine.answerability(schema, query, initial, ("v0", "v1")) == expected
        )
        assert engine.stats()["memo_hits"] >= 1

    def test_answerability_sweep_shares_one_value_iterable(self):
        schema, initial, query, _ = _relevance_workload(5)
        instances = [initial, initial.copy()]
        expected = [
            is_answerable_exactly_legacy(schema, query, inst, ("v0",))
            for inst in instances
        ]
        swept = DecisionEngine().answerability_sweep(
            schema, query, instances, iter(("v0",))
        )
        assert swept == expected

    def test_relevant_accesses_accepts_iterator(self):
        schema, initial, query, accesses = _relevance_workload(5)
        boolean = [
            access
            for access in accesses
            if access.method.num_inputs == schema.schema.arity(access.relation)
        ]
        from_list = relevant_accesses(schema, query, boolean, initial=initial)
        from_iter = relevant_accesses(schema, query, iter(boolean), initial=initial)
        assert from_iter == from_list


class TestRelevantAccessesBatch:
    def test_relevant_accesses_unchanged_by_batching(self):
        schema, initial, query, accesses = _relevance_workload(13)
        expected = [
            access
            for access in accesses
            if long_term_relevant_legacy(
                schema, access, query, initial=initial, require_boolean_access=False
            ).relevant
        ]
        # relevant_accesses requires boolean accesses by default; restrict
        # to the boolean candidates so the default-path contract holds.
        boolean = [
            access
            for access in accesses
            if access.method.num_inputs == schema.schema.arity(access.relation)
        ]
        got = relevant_accesses(schema, query, boolean, initial=initial)
        legacy_boolean = [
            access
            for access in boolean
            if long_term_relevant_legacy(
                schema, access, query, initial=initial
            ).relevant
        ]
        assert got == legacy_boolean
