"""Engine-vs-oracle tests for the indexed join engine and memoized search.

Testing convention for the performance subsystem (see the module
docstrings of :mod:`repro.queries.evaluation` and
:mod:`repro.queries.plan_cache`): the *naive* implementations are the
oracles and stay untouched; every optimisation must agree with them on
randomized inputs.

* the compiled slot-and-index evaluator must enumerate exactly the
  assignments of :func:`naive_satisfying_assignments` on randomized CQs
  and instances (the generators of :mod:`repro.workloads.generators`);
* the memoized A-automaton emptiness search must return the same
  verdict — and an equally valid witness — as the unmemoized search;
* the incremental instance indexes and cached views must stay consistent
  under interleaved ``add``/``discard``.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.access.answerability import accessible_part
from repro.automata.emptiness import automaton_emptiness
from repro.datalog.evaluation import evaluate_program, fixedpoint_generations
from repro.automata.library import containment_automaton, ltr_automaton
from repro.automata.run import accepts_path
from repro.core.solver import AccLTLSolver
from repro.queries.atoms import Equality, Inequality
from repro.queries.cq import ConjunctiveQuery
from repro.queries.evaluation import (
    naive_satisfying_assignments,
    satisfying_assignments,
)
from repro.queries.plan_cache import clear_plan_cache, compile_plan, get_plan
from repro.queries.terms import Constant, Variable
from repro.relational.instance import Instance
from repro.relational.schema import Relation, Schema
from repro.workloads.directory import (
    directory_access_schema,
    join_query,
    resident_names_query,
)
from repro.workloads.generators import WorkloadGenerator
from repro.workloads.scenarios import standard_scenarios


def _multiset(assignments):
    """Order-insensitive canonical form of an assignment enumeration."""
    return Counter(frozenset(a.items()) for a in assignments)


class TestCompiledEngineAgreesWithOracle:
    def test_randomized_cqs_and_instances(self):
        generator = WorkloadGenerator(seed=20260730)
        rng = random.Random(99)
        for trial in range(150):
            schema = generator.schema(num_relations=rng.randint(1, 4))
            instance = generator.instance(
                schema,
                tuples_per_relation=rng.randint(0, 8),
                domain_size=rng.randint(2, 6),
            )
            query = generator.conjunctive_query(
                schema,
                num_atoms=rng.randint(1, 4),
                num_variables=rng.randint(1, 5),
                constant_probability=0.25,
            )
            assert _multiset(satisfying_assignments(query, instance)) == _multiset(
                naive_satisfying_assignments(query, instance)
            ), f"trial {trial}: {query}"

    def test_randomized_queries_with_comparisons(self):
        generator = WorkloadGenerator(seed=4242)
        rng = random.Random(7)
        for trial in range(100):
            schema = generator.schema(num_relations=rng.randint(1, 3))
            instance = generator.instance(
                schema, tuples_per_relation=rng.randint(0, 6), domain_size=4
            )
            base = generator.conjunctive_query(
                schema, num_atoms=rng.randint(1, 3), num_variables=4
            )
            variables = sorted(base.body_variables(), key=lambda v: v.name)
            equalities = []
            inequalities = []
            if len(variables) >= 2 and rng.random() < 0.7:
                left, right = rng.sample(variables, 2)
                (equalities if rng.random() < 0.5 else inequalities).append(
                    (left, right)
                )
            if variables and rng.random() < 0.5:
                inequalities.append((rng.choice(variables), Constant("v0")))
            query = ConjunctiveQuery(
                atoms=base.atoms,
                head=(),
                equalities=tuple(Equality(l, r) for l, r in equalities),
                inequalities=tuple(Inequality(l, r) for l, r in inequalities),
            )
            assert _multiset(satisfying_assignments(query, instance)) == _multiset(
                naive_satisfying_assignments(query, instance)
            ), f"trial {trial}: {query}"

    def test_mutation_during_lazy_consumption_is_safe(self):
        # The old evaluator iterated frozenset snapshots, so callers could
        # mutate the instance while consuming the generator; the compiled
        # executor must preserve that contract (full scans iterate the
        # cached frozenset, index buckets are snapshotted before iteration).
        from repro.queries.atoms import Atom

        schema = Schema([Relation("R", 1)])
        instance = Instance(schema, {"R": [("a",), ("b",), ("c",)]})
        scan_query = ConjunctiveQuery(atoms=(Atom("R", (Variable("x"),)),))
        seen = 0
        for _ in satisfying_assignments(scan_query, instance):
            instance.add("R", (f"scan{seen}",))
            seen += 1
        assert seen == 3
        probe_query = ConjunctiveQuery(
            atoms=(Atom("R", (Constant("a"),)), Atom("R", (Variable("x"),)))
        )
        seen = 0
        for _ in satisfying_assignments(probe_query, instance):
            instance.add("R", (f"probe{seen}",))
            seen += 1
        assert seen == 6  # the 3 originals + 3 tuples added by the first loop

    def test_fallback_for_comparison_only_variables(self):
        # A comparison variable occurring in no relational atom cannot be
        # slot-compiled; the plan must flag fallback rather than mis-compile.
        x, y = Variable("x"), Variable("y")
        query = ConjunctiveQuery(
            atoms=(),
            head=(),
            equalities=(Equality(x, y),),
        )
        assert compile_plan(query).fallback

    def test_constant_only_false_comparison_short_circuits(self):
        from repro.queries.atoms import Atom

        schema = Schema([Relation("R", 1)])
        instance = Instance(schema, {"R": [("a",)]})
        # R(x) conjoined with the contradiction 'a' != 'a'.
        query = ConjunctiveQuery(
            atoms=(Atom("R", (Variable("x"),)),),
            head=(),
            inequalities=(Inequality(Constant("a"), Constant("a")),),
        )
        assert list(satisfying_assignments(query, instance)) == []
        assert list(naive_satisfying_assignments(query, instance)) == []


class TestPlanCache:
    def test_equal_queries_share_one_compilation(self):
        from repro.queries.atoms import Atom

        clear_plan_cache()
        schema = Schema([Relation("R", 2)])
        instance = Instance(schema, {"R": [("a", "b")]})
        q1 = ConjunctiveQuery(atoms=(Atom("R", (Variable("x"), Variable("y"))),))
        q2 = ConjunctiveQuery(atoms=(Atom("R", (Variable("x"), Variable("y"))),))
        assert q1 is not q2
        assert get_plan(q1, instance) is get_plan(q2, instance)

    def test_repeated_lookup_hits_fast_path(self):
        from repro.queries.atoms import Atom
        from repro.queries.plan_cache import plan_cache_info

        clear_plan_cache()
        schema = Schema([Relation("R", 2)])
        instance = Instance(schema, {"R": [("a", "b")]})
        query = ConjunctiveQuery(atoms=(Atom("R", (Variable("x"), Variable("y"))),))
        get_plan(query, instance)
        before = plan_cache_info()["hits"]
        for _ in range(5):
            get_plan(query, instance)
        assert plan_cache_info()["hits"] >= before + 5


class TestInstanceIndexes:
    def test_index_consistency_under_add_and_discard(self):
        generator = WorkloadGenerator(seed=3)
        schema = generator.schema(num_relations=2, min_arity=2, max_arity=3)
        instance = Instance(schema)
        rng = random.Random(5)
        relations = list(schema)
        live = []
        for step in range(300):
            relation = rng.choice(relations)
            tup = tuple(f"v{rng.randint(0, 5)}" for _ in range(relation.arity))
            if rng.random() < 0.6:
                instance.add(relation.name, tup)
                live.append((relation.name, tup))
            elif live:
                name, victim = live.pop(rng.randrange(len(live)))
                instance.discard(name, victim)
            # The cached/frozen views and every index bucket must match a
            # from-scratch recomputation.
            for rel in relations:
                tuples = instance.tuples(rel.name)
                assert tuples == frozenset(instance.tuples_view(rel.name))
                for position in range(rel.arity):
                    for value in {t[position] for t in tuples} | {"v-none"}:
                        expected = {t for t in tuples if t[position] == value}
                        assert (
                            set(instance.index(rel.name, position, value)) == expected
                        )
            assert instance.freeze() == frozenset(
                (rel.name, t)
                for rel in relations
                for t in instance.tuples_view(rel.name)
            )

    def test_facts_cached_order_stable_across_calls(self):
        schema = Schema([Relation("R", 2)])
        instance = Instance(schema, {"R": [("b", "a"), ("a", "b")]})
        first = list(instance.facts())
        assert first == list(instance.facts())
        instance.add("R", ("c", "c"))
        assert len(list(instance.facts())) == 3


class TestAccessiblePartWorklist:
    def test_matches_round_based_reference(self):
        generator = WorkloadGenerator(seed=11)
        rng = random.Random(13)
        for _ in range(25):
            access_schema = generator.access_schema(
                num_relations=rng.randint(1, 3), methods_per_relation=2
            )
            hidden = generator.instance(
                access_schema.schema, tuples_per_relation=5, domain_size=6
            )
            initial = ["v0", "v1"]
            part = accessible_part(access_schema, hidden, initial)
            # Round-based reference fixedpoint (the pre-index algorithm).
            known = set(initial)
            reference = Instance(access_schema.schema)
            changed = True
            while changed:
                changed = False
                for method in access_schema:
                    for tup in hidden.tuples(method.relation):
                        if reference.contains(method.relation, tup):
                            continue
                        if all(tup[i] in known for i in method.input_positions):
                            reference.add(method.relation, tup)
                            known.update(tup)
                            changed = True
            assert part == reference


class TestSemiNaiveAgreesWithNaive:
    """Engine-oracle property tests for the compiled semi-naive deltas.

    The naive evaluator (``semi_naive=False``: every rule fully re-joined
    each round) is the oracle; the delta-variant plans must produce
    identical fixedpoints, identical round-by-round generation chains and
    identical acceptance verdicts on randomized recursive programs, on
    both the store and the dict backend.
    """

    def test_randomized_programs_agree_across_modes_and_backends(self):
        generator = WorkloadGenerator(seed=20260731)
        rng = random.Random(17)
        for trial in range(40):
            schema = generator.schema(
                num_relations=rng.randint(1, 3), min_arity=1, max_arity=3
            )
            database = generator.instance(
                schema,
                tuples_per_relation=rng.randint(0, 6),
                domain_size=rng.randint(2, 5),
            )
            program = generator.datalog_program(
                schema,
                num_idb=rng.randint(1, 3),
                rules_per_idb=rng.randint(1, 3),
                max_body_atoms=rng.randint(1, 3),
            )
            fixedpoints = {}
            for semi_naive in (True, False):
                for store_backed in (True, False):
                    result = evaluate_program(
                        program,
                        database,
                        semi_naive=semi_naive,
                        store_backed=store_backed,
                    )
                    fixedpoints[(semi_naive, store_backed)] = result.freeze()
            reference = fixedpoints[(False, False)]  # the doubly-naive oracle
            for key, frozen in fixedpoints.items():
                assert frozen == reference, f"trial {trial} {key}: {program}"
            goal = program.goal
            verdicts = {
                key: any(name == goal for name, _ in frozen)
                for key, frozen in fixedpoints.items()
            }
            assert len(set(verdicts.values())) == 1, f"trial {trial}: {program}"

    def test_randomized_generation_chains_agree(self):
        # Semi-naive may only skip re-derivations, never change *when* a
        # fact is first derived: the per-round snapshots must be equal,
        # round by round (Snapshot equality is exact, not fingerprint).
        generator = WorkloadGenerator(seed=424243)
        rng = random.Random(29)
        for trial in range(15):
            schema = generator.schema(
                num_relations=rng.randint(1, 2), min_arity=1, max_arity=2
            )
            database = generator.instance(
                schema, tuples_per_relation=rng.randint(1, 5), domain_size=4
            )
            program = generator.datalog_program(
                schema, num_idb=2, rules_per_idb=2
            )
            semi = fixedpoint_generations(program, database, semi_naive=True)
            naive = fixedpoint_generations(program, database, semi_naive=False)
            assert semi == naive, f"trial {trial}: {program}"


class TestEmptinessMemoizationRegression:
    def _assert_equivalent(self, automaton, vocabulary, **kwargs):
        memo = automaton_emptiness(automaton, vocabulary, memoize=True, **kwargs)
        plain = automaton_emptiness(automaton, vocabulary, memoize=False, **kwargs)
        assert memo.empty == plain.empty
        assert (memo.witness is None) == (plain.witness is None)
        for result in (memo, plain):
            if result.witness is not None:
                assert accepts_path(automaton, vocabulary, result.witness)
        return memo, plain

    def test_containment_automata(self):
        schema = directory_access_schema()
        vocabulary = AccLTLSolver(schema).vocabulary
        for q1, q2 in [
            (join_query(), resident_names_query()),
            (resident_names_query(), join_query()),
        ]:
            automaton = containment_automaton(vocabulary, q1, q2, grounded=False)
            self._assert_equivalent(automaton, vocabulary, max_paths=20000)

    def test_ltr_automata_across_scenarios(self):
        for scenario in standard_scenarios():
            if scenario.name == "synthetic-3rel":
                continue  # the big inconclusive instance; covered by benchmarks
            vocabulary = AccLTLSolver(scenario.access_schema).vocabulary
            automaton = ltr_automaton(
                vocabulary, scenario.probe_access, scenario.query_one
            )
            memo, plain = self._assert_equivalent(
                automaton, vocabulary, max_paths=25000
            )
            # Memoization may only prune work, never add it.
            assert memo.paths_explored <= plain.paths_explored
