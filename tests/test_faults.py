"""Fault-injection suite: scripted worker failures never change verdicts.

Drives the ``REPRO_FAULT_INJECT`` harness (:mod:`repro.store.faults`)
against real process pools at all three worker entry points — whole-chain
emptiness tasks (``chain``), DFS subtree items (``subtree``) and pooled
engine reductions (``task``) — and asserts two things for every scripted
kill, delay, corruption and transient failure:

* the final result is field-identical to the fault-free sequential
  oracle (the robustness guarantee of PR 6's retrying dispatch), and
* the failure is *visible*: the matching ``pool_*`` counter lands in the
  result stats or engine stats rather than being swallowed.

Forked workers inherit the environment, so the pool fixtures discard the
shared pool before (fresh workers see the spec) and after (later tests
never reuse poisoned workers) each case.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.automata.emptiness import automaton_emptiness
from repro.automata.library import containment_automaton, ltr_automaton
from repro.automata.operations import union_automaton
from repro.core.solver import AccLTLSolver
from repro.engine import DecisionEngine, bounded_check_task
from repro.store import faults
from repro.store import workqueue as workqueue_module
from repro.store.faults import (
    FAULT_INJECT_ENV,
    Fault,
    FaultPlan,
    parse_fault_spec,
)
from repro.workloads.directory import (
    directory_access_schema,
    join_query,
    resident_names_query,
)
from repro.workloads.scenarios import standard_scenarios


@pytest.fixture(autouse=True)
def _clean_fault_state():
    """No plan leaks between tests; no poisoned pool outlives its test."""
    faults.clear()
    yield
    faults.clear()
    workqueue_module.discard_shared_pool()


@pytest.fixture(scope="module")
def vocabulary():
    return AccLTLSolver(directory_access_schema()).vocabulary


def _multi_chain_automaton(vocabulary, empty_language: bool):
    scenario = next(s for s in standard_scenarios() if s.name == "directory")
    ltr = ltr_automaton(vocabulary, scenario.probe_access, scenario.query_one)
    if empty_language:
        containment = containment_automaton(
            vocabulary, join_query(), resident_names_query(), grounded=False
        )
    else:
        containment = containment_automaton(
            vocabulary, resident_names_query(), join_query(), grounded=False
        )
    return union_automaton(containment, ltr)


def _result_fields(result):
    return (
        result.empty,
        result.witness,
        result.exhausted,
        result.paths_explored,
        result.chains_checked,
    )


# ---------------------------------------------------------------------------
# Spec parsing and plan bookkeeping
# ---------------------------------------------------------------------------
class TestFaultSpec:
    def test_parse_full_spec(self):
        plan = parse_fault_spec("kill@subtree:2,delay@chain:0:0.2, raise@task:1")
        assert plan == (
            Fault("kill", "subtree", 2),
            Fault("delay", "chain", 0, 0.2),
            Fault("raise", "task", 1),
        )

    def test_parse_rejects_malformed_entries(self):
        for bad in ("kill", "kill@", "explode@chain:0", "kill@nowhere:0",
                    "kill@chain:-1", "kill@chain:x"):
            with pytest.raises(ValueError):
                parse_fault_spec(bad)

    def test_plan_counters_are_per_point(self):
        plan = FaultPlan(parse_fault_spec("raise@chain:1,corrupt@task:0"))
        assert plan.next_fault("chain") is None  # hit 0
        assert plan.next_fault("task").action == "corrupt"  # hit 0
        assert plan.next_fault("chain").action == "raise"  # hit 1
        assert plan.next_fault("chain") is None  # hit 2
        assert plan.next_fault("subtree") is None

    def test_install_and_clear(self):
        plan = faults.install("raise@task:0")
        assert faults.active_plan() is plan
        faults.clear()
        assert faults.active_plan() is None

    def test_env_plan_is_cached_per_raw_string(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "raise@task:5")
        first = faults.active_plan()
        assert first is faults.active_plan()  # same raw string, same plan
        monkeypatch.setenv(FAULT_INJECT_ENV, "raise@task:6")
        assert faults.active_plan() is not first  # fresh plan + counters

    def test_malformed_env_spec_disables_injection(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "not-a-spec")
        plan = faults.active_plan()
        assert plan is not None and plan.faults == ()
        faults.fire("task")  # must be a no-op, not an exception


class TestFireInProcess:
    def test_no_plan_is_a_noop(self):
        faults.fire("task")

    def test_corrupt_raises_unpickling_error(self):
        faults.install("corrupt@task:0")
        with pytest.raises(pickle.UnpicklingError):
            faults.fire("task")
        faults.fire("task")  # index 0 consumed: later hits pass

    def test_raise_raises_runtime_error(self):
        faults.install("raise@chain:1")
        faults.fire("chain")
        with pytest.raises(RuntimeError, match="scripted transient"):
            faults.fire("chain")

    def test_delay_sleeps_for_arg_seconds(self):
        faults.install("delay@subtree:0:0.05")
        start = time.perf_counter()
        faults.fire("subtree")
        assert time.perf_counter() - start >= 0.05


# ---------------------------------------------------------------------------
# Real-pool injection: chain tasks
# ---------------------------------------------------------------------------
KWARGS = dict(max_paths=1200, use_datalog_precheck=False, memoize=False)


class TestChainFaults:
    @pytest.mark.parametrize("spec", ["kill@chain:0", "corrupt@chain:0",
                                      "raise@chain:0"])
    @pytest.mark.parametrize("empty_language", [True, False])
    def test_chain_fault_never_changes_the_verdict(
        self, vocabulary, monkeypatch, spec, empty_language
    ):
        automaton = _multi_chain_automaton(vocabulary, empty_language)
        sequential = automaton_emptiness(
            automaton, vocabulary, parallel=False, **KWARGS
        )
        monkeypatch.setenv(FAULT_INJECT_ENV, spec)
        workqueue_module.discard_shared_pool()  # fork workers with the spec
        faulty = automaton_emptiness(
            automaton, vocabulary, parallel=True, max_workers=2, **KWARGS
        )
        assert _result_fields(faulty) == _result_fields(sequential)
        # the failure is visible, not swallowed: the chain-level recovery
        # is the sequential fallback, recorded in the result stats
        assert (faulty.stats or {}).get("pool_chain_fallbacks", 0) >= 1


# ---------------------------------------------------------------------------
# Real-pool injection: subtree items
# ---------------------------------------------------------------------------
class TestSubtreeFaults:
    @pytest.mark.parametrize("empty_language", [True, False])
    def test_subtree_kill_retries_then_matches_sequential(
        self, vocabulary, monkeypatch, empty_language
    ):
        automaton = _multi_chain_automaton(vocabulary, empty_language)
        sequential = automaton_emptiness(
            automaton, vocabulary, parallel=False, **KWARGS
        )
        monkeypatch.setenv(FAULT_INJECT_ENV, "kill@subtree:0")
        workqueue_module.discard_shared_pool()
        faulty = automaton_emptiness(
            automaton,
            vocabulary,
            parallel=True,
            subtree_parallel=True,
            max_workers=2,
            **KWARGS,
        )
        assert _result_fields(faulty) == _result_fields(sequential)
        stats = faulty.stats or {}
        assert (
            stats.get("pool_worker_failures", 0)
            + stats.get("pool_inprocess_fallbacks", 0)
            + stats.get("pool_chain_fallbacks", 0)
        ) >= 1

    def test_subtree_delay_trips_the_item_timeout(self, vocabulary, monkeypatch):
        automaton = _multi_chain_automaton(vocabulary, empty_language=True)
        sequential = automaton_emptiness(
            automaton, vocabulary, parallel=False, **KWARGS
        )
        monkeypatch.setenv(FAULT_INJECT_ENV, "delay@subtree:0:1.5")
        monkeypatch.setenv(workqueue_module.POOL_ITEM_TIMEOUT_ENV, "0.1")
        workqueue_module.discard_shared_pool()
        faulty = automaton_emptiness(
            automaton,
            vocabulary,
            parallel=True,
            subtree_parallel=True,
            max_workers=2,
            **KWARGS,
        )
        assert _result_fields(faulty) == _result_fields(sequential)
        stats = faulty.stats or {}
        assert (
            stats.get("pool_timeouts", 0) + stats.get("pool_chain_fallbacks", 0)
        ) >= 1


# ---------------------------------------------------------------------------
# Real-pool injection: engine reduction tasks
# ---------------------------------------------------------------------------
def _bounded_tasks(count=2):
    from repro.core import properties
    from repro.core.bounded_check import Bounds

    scenario = next(s for s in standard_scenarios() if s.name == "directory")
    vocabulary = AccLTLSolver(scenario.access_schema).vocabulary
    tasks = []
    for length in range(2, 2 + count):
        formula = properties.ltr_formula(
            vocabulary, scenario.probe_access, scenario.query_one
        )
        bounds = Bounds(max_path_length=length, max_paths=500)
        tasks.append(bounded_check_task(vocabulary, formula, bounds))
    return tasks


class TestEngineTaskFaults:
    def _oracle_values(self):
        return [r.value for r in DecisionEngine(parallel=False).run_batch(_bounded_tasks())]

    def test_transient_failure_is_retried_to_success(self, monkeypatch):
        oracle = self._oracle_values()
        # index 1: the single worker completes task 0 (hit 0) and raises
        # on task 1 (hit 1); the retry resubmits task 1 to a rebuilt pool
        # whose fresh worker is at hit 0 again — so the retry succeeds
        monkeypatch.setenv(FAULT_INJECT_ENV, "raise@task:1")
        workqueue_module.discard_shared_pool()
        engine = DecisionEngine(max_workers=1)
        results = engine.run_batch(_bounded_tasks())
        assert [r.value for r in results] == oracle
        stats = engine.stats()
        assert stats["pool_worker_failures"] >= 1
        assert stats["pool_retries"] >= 1
        assert "pooled_retry" in {r.provenance for r in results}

    def test_worker_kill_falls_back_in_process(self, monkeypatch):
        oracle = self._oracle_values()
        # every freshly forked worker re-arms kill@task:0, so retries die
        # too and the coordinator must finish the work in-process
        monkeypatch.setenv(FAULT_INJECT_ENV, "kill@task:0")
        workqueue_module.discard_shared_pool()
        engine = DecisionEngine(max_workers=1)
        results = engine.run_batch(_bounded_tasks())
        assert [r.value for r in results] == oracle
        stats = engine.stats()
        assert stats["pool_worker_failures"] >= 1
        assert stats["pool_inprocess_fallbacks"] >= 1

    def test_stalled_worker_trips_item_timeout(self, monkeypatch):
        oracle = self._oracle_values()
        monkeypatch.setenv(FAULT_INJECT_ENV, "delay@task:0:1.5")
        monkeypatch.setenv(workqueue_module.POOL_ITEM_TIMEOUT_ENV, "0.1")
        workqueue_module.discard_shared_pool()
        engine = DecisionEngine(max_workers=1)
        results = engine.run_batch(_bounded_tasks())
        assert [r.value for r in results] == oracle
        stats = engine.stats()
        assert stats["pool_timeouts"] >= 1
        assert stats["pool_inprocess_fallbacks"] >= 1


# ---------------------------------------------------------------------------
# Environment-variable validation is loud, never silent
# ---------------------------------------------------------------------------
class TestEnvWarnings:
    @pytest.fixture(autouse=True)
    def _fresh_warning_state(self, monkeypatch):
        from repro.obs import env as envknobs_module

        monkeypatch.setattr(envknobs_module, "_ENV_WARNED", set())

    def test_invalid_retry_limit_warns_once_and_uses_default(self, monkeypatch):
        monkeypatch.setenv(workqueue_module.POOL_RETRIES_ENV, "many")
        with pytest.warns(RuntimeWarning, match=workqueue_module.POOL_RETRIES_ENV):
            assert (
                workqueue_module.pool_retry_limit()
                == workqueue_module.DEFAULT_POOL_RETRIES
            )
        # second read: same invalid value, no second warning
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            workqueue_module.pool_retry_limit()

    def test_invalid_item_timeout_warns_and_disables(self, monkeypatch):
        monkeypatch.setenv(workqueue_module.POOL_ITEM_TIMEOUT_ENV, "soon")
        with pytest.warns(
            RuntimeWarning, match=workqueue_module.POOL_ITEM_TIMEOUT_ENV
        ):
            assert workqueue_module.pool_item_timeout() is None

    def test_negative_retry_limit_is_rejected(self, monkeypatch):
        monkeypatch.setenv(workqueue_module.POOL_RETRIES_ENV, "-3")
        with pytest.warns(RuntimeWarning):
            assert (
                workqueue_module.pool_retry_limit()
                == workqueue_module.DEFAULT_POOL_RETRIES
            )
