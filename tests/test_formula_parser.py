"""Tests for the AccLTL formula text syntax (:mod:`repro.core.formula_parser`)."""

from __future__ import annotations

import pytest

from repro.core.formula_parser import (
    FormulaParseError,
    format_formula,
    format_sentence,
    friendly_relation_name,
    parse_formula,
    parse_sentence,
    resolve_relation_name,
)
from repro.core.formulas import (
    AccAnd,
    AccAtom,
    AccEventually,
    AccGlobally,
    AccNext,
    AccNot,
    AccOr,
    AccTrue,
    AccUntil,
)
from repro.core.fragments import Fragment, classify
from repro.core.properties import (
    access_order_formula,
    containment_counterexample_formula,
    groundedness_formula,
    ltr_formula,
    ltr_formula_zeroary,
)
from repro.core.semantics import path_satisfies
from repro.core.vocabulary import isbind0_name, isbind_name, post_name, pre_name
from repro.workloads.directory import (
    directory_access_schema,
    directory_hidden_instance,
    directory_vocabulary,
    smith_phone_query,
)
from repro.workloads.generators import WorkloadGenerator


@pytest.fixture
def vocab():
    return directory_vocabulary()


# ----------------------------------------------------------------------
# Name resolution
# ----------------------------------------------------------------------
class TestNameResolution:
    def test_pre_and_post(self, vocab):
        assert resolve_relation_name("Mobile_pre", vocab) == pre_name("Mobile")
        assert resolve_relation_name("Address_post", vocab) == post_name("Address")

    def test_isbind(self, vocab):
        assert resolve_relation_name("IsBind_AcM1", vocab) == isbind_name("AcM1")
        assert resolve_relation_name("IsBind0_AcM2", vocab) == isbind0_name("AcM2")

    def test_canonical_names_pass_through(self, vocab):
        canonical = pre_name("Mobile")
        assert resolve_relation_name(canonical, vocab) == canonical

    def test_unknown_relation_rejected(self, vocab):
        with pytest.raises(FormulaParseError):
            resolve_relation_name("Phonebook_pre", vocab)

    def test_unknown_method_rejected(self, vocab):
        with pytest.raises(FormulaParseError):
            resolve_relation_name("IsBind_AcM9", vocab)

    def test_bare_relation_rejected(self, vocab):
        with pytest.raises(FormulaParseError):
            resolve_relation_name("Mobile", vocab)

    def test_friendly_name_inverts_resolution(self, vocab):
        for friendly in ("Mobile_pre", "Address_post", "IsBind_AcM1", "IsBind0_AcM2"):
            canonical = resolve_relation_name(friendly, vocab)
            assert friendly_relation_name(canonical) == friendly


# ----------------------------------------------------------------------
# Sentence parsing
# ----------------------------------------------------------------------
class TestSentenceParsing:
    def test_single_body(self, vocab):
        sentence = parse_sentence("Mobile_pre(n, p, s, ph)", vocab)
        assert sentence.relations() == frozenset({pre_name("Mobile")})
        assert sentence.query.is_boolean

    def test_disjunction(self, vocab):
        sentence = parse_sentence(
            "Mobile_pre(n, p, s, ph) ; Address_pre(s, p, n, h)", vocab
        )
        assert len(sentence.query) == 2

    def test_constants_and_inequalities(self, vocab):
        sentence = parse_sentence(
            'Address_post(s, p, "Jones", h), s != p', vocab
        )
        assert sentence.has_inequalities
        constants = {c.value for c in sentence.query.constants()}
        assert "Jones" in constants

    def test_empty_sentence_rejected(self, vocab):
        with pytest.raises(FormulaParseError):
            parse_sentence("   ", vocab)


# ----------------------------------------------------------------------
# Formula parsing
# ----------------------------------------------------------------------
class TestFormulaParsing:
    def test_intro_until_example(self, vocab):
        text = (
            "~[Mobile_pre(n, p, s, ph)] U "
            "[IsBind_AcM1(n), Address_pre(s, p, n, h)]"
        )
        formula = parse_formula(text, vocab)
        assert isinstance(formula, AccUntil)
        assert isinstance(formula.left, AccNot)
        report = classify(formula)
        assert report.fragment == Fragment.ACCLTL_PLUS

    def test_temporal_operators(self, vocab):
        assert isinstance(parse_formula("G [Mobile_pre(a,b,c,d)]", vocab), AccGlobally)
        assert isinstance(parse_formula("F [Mobile_pre(a,b,c,d)]", vocab), AccEventually)
        assert isinstance(parse_formula("X [Mobile_pre(a,b,c,d)]", vocab), AccNext)

    def test_boolean_connectives_and_precedence(self, vocab):
        formula = parse_formula(
            "[IsBind0_AcM1] & [IsBind0_AcM2] | [Mobile_post(a,b,c,d)]", vocab
        )
        # '|' binds loosest: (A & B) | C
        assert isinstance(formula, AccOr)
        assert isinstance(formula.left, AccAnd)

    def test_parentheses_override_precedence(self, vocab):
        formula = parse_formula(
            "[IsBind0_AcM1] & ([IsBind0_AcM2] | [Mobile_post(a,b,c,d)])", vocab
        )
        assert isinstance(formula, AccAnd)
        assert isinstance(formula.right, AccOr)

    def test_until_is_right_associative(self, vocab):
        formula = parse_formula(
            "[IsBind0_AcM1] U [IsBind0_AcM2] U [Mobile_post(a,b,c,d)]", vocab
        )
        assert isinstance(formula, AccUntil)
        assert isinstance(formula.right, AccUntil)

    def test_true_and_negation(self, vocab):
        formula = parse_formula("~true", vocab)
        assert isinstance(formula, AccNot)
        assert isinstance(formula.operand, AccTrue)

    def test_bang_negation(self, vocab):
        formula = parse_formula("!true", vocab)
        assert isinstance(formula, AccNot)

    def test_zeroary_fragment_classification(self, vocab):
        formula = parse_formula(
            "G ([IsBind0_AcM1] | [IsBind0_AcM2])", vocab
        )
        assert classify(formula).fragment == Fragment.ACCLTL_ZEROARY

    def test_xonly_fragment_classification(self, vocab):
        formula = parse_formula("X ([IsBind0_AcM1] & X [IsBind0_AcM2])", vocab)
        assert classify(formula).fragment == Fragment.ACCLTL_X_ZEROARY

    def test_negative_binding_is_full_fragment(self, vocab):
        formula = parse_formula("G ~[IsBind_AcM1(n)]", vocab)
        assert classify(formula).fragment == Fragment.ACCLTL_FULL

    def test_errors(self, vocab):
        with pytest.raises(FormulaParseError):
            parse_formula("", vocab)
        with pytest.raises(FormulaParseError):
            parse_formula("G", vocab)
        with pytest.raises(FormulaParseError):
            parse_formula("[Mobile_pre(a,b,c,d)] extra", vocab)
        with pytest.raises(FormulaParseError):
            parse_formula("([Mobile_pre(a,b,c,d)]", vocab)
        with pytest.raises(FormulaParseError):
            parse_formula("U [Mobile_pre(a,b,c,d)]", vocab)
        with pytest.raises(FormulaParseError):
            parse_formula("[NoSuch_pre(a)]", vocab)


# ----------------------------------------------------------------------
# Formatting and round trips
# ----------------------------------------------------------------------
class TestFormatting:
    def test_format_sentence_roundtrip(self, vocab):
        sentence = parse_sentence(
            'Address_post(s, p, "Jones", h), s != p ; Mobile_pre(n, p2, s2, 7)', vocab
        )
        text = format_sentence(sentence)
        reparsed = parse_sentence(text[1:-1], vocab)
        assert reparsed.query.relations() == sentence.query.relations()
        assert reparsed.has_inequalities == sentence.has_inequalities
        assert len(reparsed.query) == len(sentence.query)

    @pytest.mark.parametrize(
        "text",
        [
            "G [Mobile_pre(a, b, c, d)]",
            "~[Mobile_pre(n, p, s, ph)] U [IsBind_AcM1(n), Address_pre(s, p, n, h)]",
            "F ([IsBind0_AcM1] & X [Address_post(a, b, c, d)])",
            "true U [IsBind0_AcM2]",
        ],
    )
    def test_parse_format_parse_fixpoint(self, vocab, text):
        formula = parse_formula(text, vocab)
        formatted = format_formula(formula)
        reparsed = parse_formula(formatted, vocab)
        assert format_formula(reparsed) == formatted
        assert classify(reparsed).fragment == classify(formula).fragment

    def test_library_properties_roundtrip_through_text(self, vocab):
        schema = directory_access_schema()
        access = schema.access("AcM1", ("Smith",))
        formulas = [
            ltr_formula(vocab, access, smith_phone_query()),
            ltr_formula_zeroary(vocab, "AcM1", smith_phone_query()),
            access_order_formula(vocab, "AcM2", "AcM1"),
            containment_counterexample_formula(
                vocab, smith_phone_query(), smith_phone_query()
            ),
            groundedness_formula(vocab),
        ]
        for formula in formulas:
            text = format_formula(formula)
            reparsed = parse_formula(text, vocab)
            assert classify(reparsed).fragment == classify(formula).fragment
            assert {s.relations() for s in (a for a in reparsed.atoms())} == {
                s.relations() for s in (a for a in formula.atoms())
            }

    def test_parsed_formula_semantics_agree_with_programmatic(self, vocab):
        """The parsed LTR formula holds on the same paths as the programmatic one."""
        schema = directory_access_schema()
        hidden = directory_hidden_instance("small")
        access = schema.access("AcM1", ("Smith",))
        programmatic = ltr_formula(vocab, access, smith_phone_query())
        parsed = parse_formula(format_formula(programmatic), vocab)
        generator = WorkloadGenerator(seed=11)
        for _ in range(10):
            path = generator.access_path(schema, hidden, length=3)
            assert path_satisfies(vocab, path, parsed) == path_satisfies(
                vocab, path, programmatic
            )
