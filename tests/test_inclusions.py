"""Tests for the Figure 2 inclusion machinery (:mod:`repro.core.inclusions`)."""

from __future__ import annotations

import pytest

from repro.automata.aautomaton import AAutomaton
from repro.automata.run import accepts_path
from repro.core.formulas import AccAtom, AccGlobally, AccNot, lnot
from repro.core.fragments import DECIDABLE_FRAGMENTS, Fragment, classify
from repro.core.inclusions import (
    A_AUTOMATA_NODE,
    InclusionError,
    SeparationWitness,
    inclusion_digraph,
    is_included,
    lift_zeroary_sentence,
    nary_existential_atom,
    negated_marker_rewrite,
    separation_witnesses,
    translation_agrees_on_samples,
    zeroary_to_plus,
)
from repro.core.properties import (
    access_order_formula,
    containment_counterexample_formula,
    ltr_formula,
    ltr_formula_zeroary,
    relation_nonempty_post,
    zeroary_binding_atom,
)
from repro.core.semantics import path_satisfies
from repro.core.vocabulary import AccessVocabulary
from repro.workloads.directory import (
    directory_access_schema,
    directory_hidden_instance,
    directory_vocabulary,
    smith_phone_query,
)
from repro.workloads.generators import WorkloadGenerator


@pytest.fixture
def vocab() -> AccessVocabulary:
    return directory_vocabulary()


@pytest.fixture
def sample_paths():
    schema = directory_access_schema()
    hidden = directory_hidden_instance("small")
    generator = WorkloadGenerator(seed=13)
    paths = []
    for length in (1, 1, 2, 2, 3, 3, 4):
        paths.append(generator.access_path(schema, hidden, length=length))
    return paths


# ----------------------------------------------------------------------
# The 0-ary → AccLTL+ translation (Section 6)
# ----------------------------------------------------------------------
class TestZeroaryToPlus:
    def test_marker_atom_is_lifted(self, vocab):
        formula = zeroary_binding_atom("AcM1")
        translated = zeroary_to_plus(formula, vocab)
        report = classify(translated)
        assert report.uses_nary_binding
        assert report.fragment == Fragment.ACCLTL_PLUS

    def test_negated_marker_uses_disjunction_rewrite(self, vocab):
        formula = lnot(zeroary_binding_atom("AcM1"))
        translated = zeroary_to_plus(formula, vocab)
        report = classify(translated)
        # Binding atoms occur only positively after the rewrite.
        assert not report.nary_binding_negative
        assert report.fragment == Fragment.ACCLTL_PLUS

    def test_translation_preserves_semantics_on_markers(self, vocab, sample_paths):
        formula = lnot(zeroary_binding_atom("AcM1"))
        translated = zeroary_to_plus(formula, vocab)
        assert translation_agrees_on_samples(vocab, formula, translated, sample_paths)

    def test_access_order_formula_translates(self, vocab, sample_paths):
        formula = access_order_formula(vocab, "AcM2", "AcM1")
        assert classify(formula).fragment == Fragment.ACCLTL_ZEROARY
        translated = zeroary_to_plus(formula, vocab)
        assert classify(translated).fragment == Fragment.ACCLTL_PLUS
        assert translation_agrees_on_samples(vocab, formula, translated, sample_paths)

    def test_ltr_zeroary_translates(self, vocab, sample_paths):
        formula = ltr_formula_zeroary(vocab, "AcM1", smith_phone_query())
        translated = zeroary_to_plus(formula, vocab)
        assert classify(translated).fragment == Fragment.ACCLTL_PLUS
        assert translation_agrees_on_samples(vocab, formula, translated, sample_paths)

    def test_containment_formula_translates_unchanged_semantics(
        self, vocab, sample_paths
    ):
        formula = containment_counterexample_formula(
            vocab, smith_phone_query(), smith_phone_query()
        )
        translated = zeroary_to_plus(formula, vocab)
        assert translation_agrees_on_samples(vocab, formula, translated, sample_paths)

    def test_binding_free_formulas_pass_through(self, vocab):
        formula = AccGlobally(lnot(relation_nonempty_post(vocab, "Mobile")))
        translated = zeroary_to_plus(formula, vocab)
        assert classify(translated).fragment == classify(formula).fragment

    def test_double_negation_is_eliminated(self, vocab, sample_paths):
        formula = lnot(lnot(zeroary_binding_atom("AcM2")))
        translated = zeroary_to_plus(formula, vocab)
        assert classify(translated).fragment == Fragment.ACCLTL_PLUS
        assert translation_agrees_on_samples(vocab, formula, translated, sample_paths)

    def test_nary_formula_rejected(self, vocab):
        schema = directory_access_schema()
        access = schema.access("AcM1", ("Smith",))
        formula = ltr_formula(vocab, access, smith_phone_query())
        with pytest.raises(InclusionError):
            zeroary_to_plus(formula, vocab)

    def test_negated_temporal_subformula_with_binding_rejected(self, vocab):
        formula = lnot(AccGlobally(zeroary_binding_atom("AcM1")))
        with pytest.raises(InclusionError):
            zeroary_to_plus(formula, vocab)

    def test_negated_mixed_sentence_rejected(self, vocab):
        from repro.core.formulas import EmbeddedSentence
        from repro.queries.atoms import Atom
        from repro.queries.cq import ConjunctiveQuery
        from repro.core.vocabulary import isbind0_name, pre_name
        from repro.queries.terms import Variable

        mixed = EmbeddedSentence(
            ConjunctiveQuery(
                atoms=(
                    Atom(isbind0_name("AcM1"), ()),
                    Atom(pre_name("Mobile"), tuple(Variable(f"x{i}") for i in range(4))),
                ),
                head=(),
            )
        )
        with pytest.raises(InclusionError):
            zeroary_to_plus(lnot(AccAtom(mixed)), vocab)

    def test_lift_preserves_non_binding_atoms(self, vocab):
        sentence = relation_nonempty_post(vocab, "Address").sentence
        assert lift_zeroary_sentence(sentence, vocab) is sentence


class TestRewriteHelpers:
    def test_nary_existential_atom_arity(self, vocab):
        formula = nary_existential_atom(vocab, "AcM2")
        sentence = formula.sentence
        assert sentence.mentions_nary_binding()
        disjunct = sentence.query.disjuncts[0]
        assert disjunct.atoms[0].arity == 2  # AcM2 has two input positions

    def test_negated_marker_rewrite_lists_other_methods(self, vocab, sample_paths):
        rewritten = negated_marker_rewrite(vocab, "AcM1")
        original = lnot(zeroary_binding_atom("AcM1"))
        assert translation_agrees_on_samples(vocab, original, rewritten, sample_paths)

    def test_negated_marker_rewrite_single_method_schema(self):
        from repro.access.methods import AccessSchema
        from repro.relational.schema import Relation, Schema

        schema = AccessSchema(Schema([Relation("R", 2)]))
        schema.add("OnlyOne", "R", (0,))
        vocabulary = AccessVocabulary.of(schema)
        rewritten = negated_marker_rewrite(vocabulary, "OnlyOne")
        # With a single method the negation is unsatisfiable: ¬true.
        assert isinstance(rewritten, AccNot)


# ----------------------------------------------------------------------
# The inclusion digraph
# ----------------------------------------------------------------------
class TestInclusionDigraph:
    def test_nodes_cover_all_fragments(self):
        graph = inclusion_digraph()
        for fragment in Fragment:
            assert fragment in graph
        assert A_AUTOMATA_NODE in graph

    def test_reflexive_and_transitive(self):
        assert is_included(Fragment.ACCLTL_PLUS, Fragment.ACCLTL_PLUS)
        # transitivity: X-only ⊆ 0-ary-≠ ⊆ full-≠
        assert is_included(Fragment.ACCLTL_X_ZEROARY, Fragment.ACCLTL_FULL_INEQ)
        assert is_included(Fragment.ACCLTL_ZEROARY, Fragment.ACCLTL_FULL)

    def test_non_inclusions(self):
        assert not is_included(Fragment.ACCLTL_FULL, Fragment.ACCLTL_PLUS)
        assert not is_included(Fragment.ACCLTL_PLUS, Fragment.ACCLTL_ZEROARY)
        assert not is_included(Fragment.ACCLTL_ZEROARY_INEQ, Fragment.ACCLTL_PLUS)

    def test_automata_sit_above_accltl_plus_only(self):
        assert is_included(Fragment.ACCLTL_PLUS, A_AUTOMATA_NODE)
        assert is_included(Fragment.ACCLTL_ZEROARY, A_AUTOMATA_NODE)
        assert not is_included(Fragment.ACCLTL_FULL, A_AUTOMATA_NODE)

    def test_digraph_is_acyclic(self):
        import networkx as nx

        assert nx.is_directed_acyclic_graph(inclusion_digraph())


# ----------------------------------------------------------------------
# Separation witnesses (strictness)
# ----------------------------------------------------------------------
class TestSeparationWitnesses:
    def test_every_witness_respects_the_inclusion(self, vocab):
        for witness in separation_witnesses():
            assert is_included(witness.small, witness.large), witness.property_name

    def test_formula_witnesses_classify_inside_large_outside_small(self, vocab):
        for witness in separation_witnesses():
            built = witness.build_witness(vocab)
            if isinstance(built, AAutomaton):
                assert witness.large == A_AUTOMATA_NODE
                continue
            fragment = classify(built).fragment
            assert is_included(fragment, witness.large), witness.property_name
            assert not is_included(fragment, witness.small), witness.property_name

    def test_parity_witness_separates_on_paths(self, vocab, sample_paths):
        parity = next(
            w for w in separation_witnesses() if w.property_name == "path-length parity"
        )
        automaton = parity.build_witness(vocab)
        accepted = {len(p) for p in sample_paths if accepts_path(automaton, vocab, p)}
        rejected = {len(p) for p in sample_paths if not accepts_path(automaton, vocab, p)}
        assert all(length % 2 == 0 for length in accepted)
        assert all(length % 2 == 1 or length == 0 for length in rejected)

    def test_witness_fragments_are_strict_supersets_in_table1(self):
        """Cross-check with Table 1: the decidable/undecidable frontier."""
        for witness in separation_witnesses():
            if witness.large == A_AUTOMATA_NODE:
                continue
            if witness.small in DECIDABLE_FRAGMENTS and witness.large not in DECIDABLE_FRAGMENTS:
                # Moving up across the decidability frontier must add
                # expressive power — which every witness shows by example.
                assert witness.build_witness is not None

    def test_witness_descriptions_are_informative(self):
        for witness in separation_witnesses():
            assert witness.property_name
            assert len(witness.description) > 20
