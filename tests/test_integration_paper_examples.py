"""Integration tests reproducing the paper's worked examples end to end.

These tests tie several subsystems together: the AccLTL property builders,
the fragment-dispatching solver, the A-automaton pipeline, and the direct
(prior-work) algorithms for relevance and containment under access
patterns.  They correspond to the per-experiment index of DESIGN.md.
"""

import pytest

from repro.access.containment_ap import contained_under_access_patterns
from repro.access.relevance import long_term_relevant
from repro.automata.emptiness import automaton_emptiness
from repro.automata.library import containment_automaton, ltr_automaton
from repro.core import properties
from repro.core.fragments import Fragment
from repro.core.semantics import path_satisfies
from repro.core.solver import AccLTLSolver
from repro.queries.parser import parse_cq
from repro.relational.dependencies import DisjointnessConstraint
from repro.relational.instance import Instance
from repro.workloads.directory import join_query, resident_names_query
from repro.workloads.scenarios import standard_scenarios


class TestExample22ContainmentUnderAccessPatterns:
    """Example 2.2: containment under access patterns as AccLTL validity."""

    def test_agreement_between_formula_and_direct_procedure(self, directory):
        solver = AccLTLSolver(directory)
        pairs = [
            (join_query(), resident_names_query()),
            (resident_names_query(), join_query()),
            (join_query(), join_query()),
        ]
        for q1, q2 in pairs:
            direct = contained_under_access_patterns(directory, q1, q2)
            counterexample_formula = properties.containment_counterexample_formula(
                solver.vocabulary, q1, q2
            )
            via_formula = solver.satisfiable(counterexample_formula, grounded_only=True)
            # Direct procedure and (grounded) AccLTL satisfiability agree:
            # a counterexample path exists iff containment fails.
            if direct.contained:
                assert not via_formula.satisfiable
            else:
                assert via_formula.satisfiable

    def test_automaton_route_agrees_with_direct_route(self, directory):
        solver = AccLTLSolver(directory)
        automaton = containment_automaton(
            solver.vocabulary, resident_names_query(), join_query(), grounded=False
        )
        direct = contained_under_access_patterns(
            directory, resident_names_query(), join_query()
        )
        emptiness = automaton_emptiness(automaton, solver.vocabulary)
        # Without the groundedness restriction the counterexample automaton
        # is non-empty exactly when plain containment fails — which it does.
        assert not emptiness.empty
        # The direct grounded procedure may still report containment because
        # nothing is reachable from the empty initial instance.
        assert direct.contained


class TestExample23LongTermRelevance:
    """Example 2.3: long-term relevance via AccLTL and via direct search."""

    def test_formula_and_direct_search_agree_on_scenarios(self):
        for scenario in standard_scenarios():
            solver = AccLTLSolver(scenario.access_schema)
            direct = long_term_relevant(
                scenario.access_schema, scenario.probe_access, scenario.query_one
            )
            formula = properties.ltr_formula(
                solver.vocabulary, scenario.probe_access, scenario.query_one
            )
            via_formula = solver.satisfiable(formula, max_paths=30000)
            if direct.relevant:
                assert via_formula.satisfiable, scenario.name
            if not via_formula.satisfiable and via_formula.certain:
                assert not direct.relevant, scenario.name

    def test_ltr_witness_satisfies_definition(self, directory):
        solver = AccLTLSolver(directory)
        probe = directory.access("AcM1", ("Smith",))
        formula = properties.ltr_formula(solver.vocabulary, probe, join_query())
        result = solver.satisfiable(formula)
        assert result.satisfiable
        witness = result.witness
        # The witnessing transition uses AcM1 with the probe's binding.
        assert any(
            step.method.name == "AcM1" and step.access.binding == ("Smith",)
            for step in witness
        )

    def test_ltr_automaton_and_formula_agree(self, directory):
        solver = AccLTLSolver(directory)
        probe = directory.access("AcM1", ("Smith",))
        automaton = ltr_automaton(solver.vocabulary, probe, join_query())
        emptiness = automaton_emptiness(automaton, solver.vocabulary)
        formula_result = solver.satisfiable(
            properties.ltr_formula(solver.vocabulary, probe, join_query())
        )
        assert (not emptiness.empty) == formula_result.satisfiable


class TestExample24ConstraintAwareRelevance:
    """Example 2.4 / Proposition 4.4: constraints change the verdicts."""

    def test_disjointness_kills_relevance(self, directory):
        solver = AccLTLSolver(directory)
        query = parse_cq("Q :- Mobile(n, pc, s, p), Address(s2, pc2, n, h)")
        probe = directory.access("AcM1", ("Smith",))
        unconstrained = automaton_emptiness(
            ltr_automaton(solver.vocabulary, probe, query), solver.vocabulary
        )
        constrained = automaton_emptiness(
            ltr_automaton(
                solver.vocabulary,
                probe,
                query,
                disjointness=[DisjointnessConstraint("Mobile", 0, "Address", 2)],
            ),
            solver.vocabulary,
            max_paths=20000,
        )
        assert not unconstrained.empty
        assert constrained.empty

    def test_fd_constrained_relevance_formula_dispatches_to_bounded_search(
        self, directory
    ):
        from repro.relational.dependencies import FunctionalDependency

        solver = AccLTLSolver(directory)
        probe = directory.access("AcM1", ("Smith",))
        formula = properties.ltr_under_fds_formula(
            solver.vocabulary,
            probe,
            join_query(),
            [FunctionalDependency("Mobile", (0,), 3)],
        )
        report = solver.classify(formula)
        assert report.uses_inequalities
        result = solver.satisfiable(formula, bounded_path_length=2, max_paths=5000)
        # The fragment is undecidable; the bounded search still finds the
        # short witness (which respects the FD).
        assert result.fragment == Fragment.ACCLTL_FULL_INEQ
        assert result.satisfiable
        assert path_satisfies(solver.vocabulary, result.witness, formula)


class TestScenarioSweep:
    """The standard scenarios all work through the full solver surface."""

    def test_zeroary_properties_decidable_on_all_scenarios(self):
        for scenario in standard_scenarios():
            solver = AccLTLSolver(scenario.access_schema)
            methods = list(scenario.access_schema.methods)
            if len(methods) < 2:
                continue
            formula = properties.access_order_formula(
                solver.vocabulary, methods[0], methods[1]
            )
            result = solver.satisfiable(formula)
            assert result.certain
            assert result.satisfiable  # an order-respecting path always exists

    def test_initial_instance_affects_satisfiability(self, directory):
        solver = AccLTLSolver(directory)
        # "Some Mobile fact is already known before the first access".
        formula = properties.relation_nonempty_pre(solver.vocabulary, "Mobile")
        empty_start = solver.satisfiable(formula)
        seeded = Instance(directory.schema)
        seeded.add("Mobile", ("Smith", "OX13QD", "Parks Rd", 5551212))
        seeded_start = solver.satisfiable(formula, initial=seeded)
        assert not empty_start.satisfiable
        assert seeded_start.satisfiable
