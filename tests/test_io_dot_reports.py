"""Tests for DOT export (:mod:`repro.io.dot`) and report tables (:mod:`repro.io.reports`)."""

from __future__ import annotations

import pytest

from repro.access.lts import explore
from repro.automata.library import ltr_automaton
from repro.core.fragments import Fragment
from repro.io.dot import (
    access_path_to_dot,
    automaton_to_dot,
    inclusion_diagram_to_dot,
    lts_to_dot,
)
from repro.io.reports import Table, render_comparison, render_table
from repro.workloads.directory import (
    directory_access_schema,
    directory_hidden_instance,
    directory_vocabulary,
    smith_phone_query,
)
from repro.workloads.generators import WorkloadGenerator


# ----------------------------------------------------------------------
# DOT export
# ----------------------------------------------------------------------
class TestLTSDot:
    def _small_lts(self):
        schema = directory_access_schema()
        hidden = directory_hidden_instance("small")
        return explore(
            schema,
            hidden_instance=hidden,
            value_pool=["Smith", "Parks Rd", "OX13QD"],
            max_depth=1,
            grounded_only=False,
        )

    def test_lts_dot_structure(self):
        lts = self._small_lts()
        dot = lts_to_dot(lts, name="Figure1")
        assert dot.startswith('digraph "Figure1" {')
        assert dot.rstrip().endswith("}")
        # Every node and every transition shows up as a line.
        assert dot.count("->") == len(lts.transitions)
        assert "∅" in dot  # the empty initial node

    def test_lts_dot_escapes_quotes(self):
        lts = self._small_lts()
        dot = lts_to_dot(lts)
        # Binding values like "Smith" are quoted in access labels and must
        # be escaped so the DOT output remains syntactically valid.
        assert '\\"Smith\\"' in dot or "'Smith'" in dot

    def test_node_fact_truncation(self):
        lts = self._small_lts()
        dot = lts_to_dot(lts, max_facts_per_node=1)
        assert "…" in dot or dot.count("->") == len(lts.transitions)


class TestAutomatonDot:
    def test_automaton_dot_structure(self):
        vocabulary = directory_vocabulary()
        schema = directory_access_schema()
        access = schema.access("AcM1", ("Smith",))
        automaton = ltr_automaton(vocabulary, access, smith_phone_query())
        dot = automaton_to_dot(automaton)
        assert dot.startswith("digraph")
        assert "doublecircle" in dot  # accepting states are drawn
        assert "__start" in dot
        # one edge per transition plus the start arrow
        assert dot.count("->") == len(automaton.transitions) + 1

    def test_access_path_dot(self):
        generator = WorkloadGenerator(seed=3)
        schema = directory_access_schema()
        hidden = directory_hidden_instance("small")
        path = generator.access_path(schema, hidden, length=3)
        dot = access_path_to_dot(path)
        assert dot.count("->") == len(path)
        assert '"I0"' in dot.replace("label=", "")


class TestInclusionDiagramDot:
    def test_all_fragments_present(self):
        dot = inclusion_diagram_to_dot()
        for fragment in Fragment:
            assert fragment.name in dot
        assert "A_AUTOMATA" in dot

    def test_without_automata_node(self):
        dot = inclusion_diagram_to_dot(include_automata_node=False)
        assert "A_AUTOMATA" not in dot

    def test_edge_count_matches_inclusion_order(self):
        from repro.core.fragments import inclusion_order

        dot = inclusion_diagram_to_dot(include_automata_node=False)
        assert dot.count("->") == len(inclusion_order())


# ----------------------------------------------------------------------
# Report tables
# ----------------------------------------------------------------------
class TestReportTables:
    def test_basic_rendering(self):
        table = Table(headers=("language", "complexity"), title="Table 1")
        table.add_row("AccLTL+", "3EXPTIME")
        table.add_row("AccLTL(FO∃+_0-Acc)", "PSPACE-complete")
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Table 1"
        assert set(lines[1]) == {"="}
        assert "AccLTL+" in text
        assert "PSPACE-complete" in text

    def test_column_alignment(self):
        table = Table(headers=("a", "bbbb"))
        table.add_row("xxxxxx", "y")
        widths = table.column_widths()
        assert widths == [6, 4]
        body_lines = table.render().splitlines()
        # header and row lines have equal length because of padding
        assert len(body_lines[0]) == len(body_lines[2])

    def test_row_arity_checked(self):
        table = Table(headers=("a", "b"))
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_render_without_title(self):
        table = Table(headers=("x",))
        table.add_row(1)
        text = render_table(table)
        assert text.splitlines()[0] == "x"

    def test_render_comparison(self):
        text = render_comparison(
            "Paper vs measured",
            [("T1-row5", "PSPACE", "agrees", True)],
        )
        assert "Paper vs measured" in text
        assert "T1-row5" in text
        assert "True" in text

    def test_str_is_render(self):
        table = Table(headers=("h",))
        table.add_row("v")
        assert str(table) == table.render()
