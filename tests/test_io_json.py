"""Tests for JSON serialisation round-trips (:mod:`repro.io.json_io`)."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access.methods import Access, AccessMethod, AccessSchema
from repro.access.path import AccessPath, PathStep
from repro.automata.aautomaton import AAutomaton, ATransition, Guard
from repro.automata.library import ltr_automaton
from repro.core.formulas import EmbeddedSentence, atom, land, lnot
from repro.core.properties import (
    access_order_formula,
    containment_counterexample_formula,
    groundedness_formula,
    ltr_formula,
    ltr_formula_zeroary,
)
from repro.core.vocabulary import AccessVocabulary
from repro.datalog.program import DatalogProgram, Rule
from repro.io import json_io
from repro.io.json_io import (
    SerializationError,
    access_path_from_dict,
    access_path_to_dict,
    access_schema_from_dict,
    access_schema_to_dict,
    automaton_from_dict,
    automaton_to_dict,
    constraint_from_dict,
    constraint_to_dict,
    constraint_set_from_dict,
    constraint_set_to_dict,
    dumps,
    formula_from_dict,
    formula_to_dict,
    from_dict,
    instance_from_dict,
    instance_to_dict,
    loads,
    program_from_dict,
    program_to_dict,
    query_from_dict,
    query_to_dict,
    schema_from_dict,
    schema_to_dict,
    to_dict,
)
from repro.queries.atoms import Atom
from repro.queries.parser import parse_cq, parse_ucq
from repro.queries.terms import Constant, Variable
from repro.relational.dependencies import (
    ConstraintSet,
    DisjointnessConstraint,
    FunctionalDependency,
    InclusionDependency,
)
from repro.relational.instance import Instance
from repro.relational.schema import Relation, Schema
from repro.relational.types import BOOL, INT, STRING, enum_domain
from repro.workloads.directory import (
    directory_access_schema,
    directory_hidden_instance,
    directory_vocabulary,
    jones_address_query,
    smith_phone_query,
)
from repro.workloads.generators import WorkloadGenerator


# ----------------------------------------------------------------------
# Schemas, instances
# ----------------------------------------------------------------------
class TestSchemaRoundTrips:
    def test_relation_roundtrip_with_types_and_domains(self):
        relation = Relation(
            "R",
            3,
            (INT, STRING, BOOL),
            (None, enum_domain(["a", "b"], STRING), None),
        )
        restored = json_io.relation_from_dict(json_io.relation_to_dict(relation))
        assert restored == relation

    def test_schema_roundtrip(self, simple_schema):
        restored = schema_from_dict(schema_to_dict(simple_schema))
        assert restored == simple_schema

    def test_directory_schema_roundtrip(self):
        schema = directory_access_schema().schema
        assert schema_from_dict(schema_to_dict(schema)) == schema

    def test_instance_roundtrip(self, simple_instance):
        restored = instance_from_dict(instance_to_dict(simple_instance))
        assert restored == simple_instance

    def test_instance_roundtrip_with_shared_schema(self, simple_instance):
        data = instance_to_dict(simple_instance)
        restored = instance_from_dict(data, schema=simple_instance.schema)
        assert restored.schema is simple_instance.schema
        assert restored == simple_instance

    def test_empty_instance_roundtrip(self, simple_schema):
        empty = Instance(simple_schema)
        assert instance_from_dict(instance_to_dict(empty)) == empty

    def test_unknown_datatype_rejected(self):
        from repro.relational.types import DataType

        weird = Relation("R", 1, (DataType("weird", (bytes,)),))
        with pytest.raises(SerializationError):
            json_io.relation_to_dict(weird)

    def test_non_scalar_value_rejected(self, simple_schema):
        instance = Instance(simple_schema)
        instance.add("T", ((1, 2),))  # a tuple-valued entry is not JSON-scalar
        with pytest.raises(SerializationError):
            instance_to_dict(instance)


# ----------------------------------------------------------------------
# Access schemas and paths
# ----------------------------------------------------------------------
class TestAccessRoundTrips:
    def test_access_method_roundtrip(self):
        method = AccessMethod("AcM1", "Mobile", (0,), exact=True)
        restored = json_io.access_method_from_dict(json_io.access_method_to_dict(method))
        assert restored == method
        assert restored.idempotent  # exact implies idempotent

    def test_access_schema_roundtrip(self, directory):
        restored = access_schema_from_dict(access_schema_to_dict(directory))
        assert restored.schema == directory.schema
        assert set(restored.methods) == set(directory.methods)
        for name, method in directory.methods.items():
            assert restored.method(name) == method

    def test_access_roundtrip(self, directory):
        access = directory.access("AcM2", ("Parks Rd", "OX13QD"))
        restored = json_io.access_from_dict(json_io.access_to_dict(access))
        assert restored == access

    def test_access_from_dict_with_schema_shares_method(self, directory):
        access = directory.access("AcM1", ("Smith",))
        data = json_io.access_to_dict(access)
        restored = json_io.access_from_dict(data, access_schema=directory)
        assert restored.method is directory.method("AcM1")

    def test_access_path_roundtrip(self, directory, hidden_directory):
        generator = WorkloadGenerator(seed=7)
        path = generator.access_path(directory, hidden_directory, length=4)
        restored = access_path_from_dict(access_path_to_dict(path))
        assert restored == path

    def test_empty_path_roundtrip(self):
        path = AccessPath(())
        assert access_path_from_dict(access_path_to_dict(path)) == path

    def test_path_step_response_order_is_canonical(self, directory):
        access = directory.access("AcM1", ("Smith",))
        step = PathStep(
            access,
            frozenset(
                {("Smith", "OX13QD", "Parks Rd", 1), ("Smith", "OX11AA", "High St", 2)}
            ),
        )
        first = json.dumps(json_io.path_step_to_dict(step), sort_keys=True)
        second = json.dumps(json_io.path_step_to_dict(step), sort_keys=True)
        assert first == second


# ----------------------------------------------------------------------
# Queries and constraints
# ----------------------------------------------------------------------
class TestQueryRoundTrips:
    def test_cq_roundtrip(self):
        query = parse_cq('Q(x) :- Mobile(x, y, z, p), Address(z, y, "Jones", h)')
        assert query_from_dict(query_to_dict(query)) == query

    def test_cq_with_comparisons_roundtrip(self):
        query = parse_cq("Q(x) :- R(x, y), S(y, z), x != z, y = y")
        assert query_from_dict(query_to_dict(query)) == query

    def test_ucq_roundtrip(self):
        query = parse_ucq("Q(x) :- R(x, y) ; Q(x) :- S(x, y)")
        assert query_from_dict(query_to_dict(query)) == query

    def test_boolean_cq_roundtrip(self):
        query = jones_address_query().boolean_version()
        assert query_from_dict(query_to_dict(query)) == query

    def test_head_must_be_variables(self):
        query = parse_cq("Q(x) :- R(x, y)")
        data = query_to_dict(query)
        data["head"][0] = {"kind": "constant", "value": 3}
        with pytest.raises(SerializationError):
            query_from_dict(data)

    def test_constraints_roundtrip(self):
        constraints = [
            FunctionalDependency("Mobile", (0,), 3),
            InclusionDependency("Mobile", (0,), "Address", (2,)),
            DisjointnessConstraint("Mobile", 0, "Address", 0),
        ]
        for constraint in constraints:
            assert constraint_from_dict(constraint_to_dict(constraint)) == constraint

    def test_constraint_set_roundtrip(self):
        constraint_set = ConstraintSet(
            [
                FunctionalDependency("Mobile", (0,), 3),
                DisjointnessConstraint("Mobile", 0, "Address", 0),
                InclusionDependency("Address", (2,), "Mobile", (0,)),
            ]
        )
        restored = constraint_set_from_dict(constraint_set_to_dict(constraint_set))
        assert restored.fds == constraint_set.fds
        assert restored.ids == constraint_set.ids
        assert restored.disjointness == constraint_set.disjointness

    def test_unknown_constraint_kind_rejected(self):
        with pytest.raises(SerializationError):
            constraint_from_dict({"kind": "mystery"})


# ----------------------------------------------------------------------
# Formulas and automata
# ----------------------------------------------------------------------
class TestFormulaRoundTrips:
    def test_ltr_formula_roundtrip(self, directory_vocab, directory):
        access = directory.access("AcM1", ("Smith",))
        formula = ltr_formula(directory_vocab, access, smith_phone_query())
        restored = formula_from_dict(formula_to_dict(formula))
        assert str(restored) == str(formula)

    def test_groundedness_formula_roundtrip(self, directory_vocab):
        formula = groundedness_formula(directory_vocab)
        restored = formula_from_dict(formula_to_dict(formula))
        assert str(restored) == str(formula)

    def test_containment_formula_roundtrip(self, directory_vocab):
        formula = containment_counterexample_formula(
            directory_vocab, smith_phone_query(), jones_address_query()
        )
        restored = formula_from_dict(formula_to_dict(formula))
        assert str(restored) == str(formula)

    def test_fragment_preserved_by_roundtrip(self, directory_vocab, directory):
        from repro.core.fragments import classify

        access = directory.access("AcM1", ("Smith",))
        formulas = [
            ltr_formula(directory_vocab, access, smith_phone_query()),
            ltr_formula_zeroary(directory_vocab, "AcM1", smith_phone_query()),
            access_order_formula(directory_vocab, "AcM2", "AcM1"),
            groundedness_formula(directory_vocab),
        ]
        for formula in formulas:
            restored = formula_from_dict(formula_to_dict(formula))
            assert classify(restored).fragment == classify(formula).fragment

    def test_true_and_negation_roundtrip(self, directory_vocab):
        from repro.core.formulas import AccTrue

        formula = lnot(AccTrue())
        restored = formula_from_dict(formula_to_dict(formula))
        assert str(restored) == str(formula)

    def test_automaton_roundtrip(self, directory_vocab, directory):
        access = directory.access("AcM1", ("Smith",))
        automaton = ltr_automaton(directory_vocab, access, smith_phone_query())
        restored = automaton_from_dict(automaton_to_dict(automaton))
        assert set(restored.states) == set(automaton.states)
        assert restored.initial == automaton.initial
        assert restored.accepting == automaton.accepting
        assert len(restored.transitions) == len(automaton.transitions)

    def test_handwritten_automaton_roundtrip(self, directory_vocab):
        sentence = EmbeddedSentence(
            directory_vocab.query_pre(smith_phone_query()), label="smith_pre"
        )
        automaton = AAutomaton(
            states=["s0", "s1"],
            initial="s0",
            accepting=["s1"],
            transitions=[
                ATransition("s0", Guard(positives=(sentence,)), "s1"),
                ATransition("s1", Guard(negated=(sentence,)), "s1"),
            ],
            name="hand",
        )
        restored = automaton_from_dict(automaton_to_dict(automaton))
        assert restored.name == "hand"
        assert len(restored.transitions) == 2
        assert restored.transitions[0].guard.positives[0].query == sentence.query


# ----------------------------------------------------------------------
# Datalog programs
# ----------------------------------------------------------------------
class TestDatalogRoundTrips:
    def _sample_program(self) -> DatalogProgram:
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        edb = Schema([Relation("E", 2)])
        rules = [
            Rule(Atom("T", (x, y)), (Atom("E", (x, y)),)),
            Rule(Atom("T", (x, z)), (Atom("E", (x, y)), Atom("T", (y, z)))),
            Rule(Atom("Goal", ()), (Atom("T", (x, Constant("a"))),)),
        ]
        return DatalogProgram(rules, edb, "Goal")

    def test_program_roundtrip(self):
        program = self._sample_program()
        restored = program_from_dict(program_to_dict(program))
        assert restored.goal == program.goal
        assert len(restored.rules) == len(program.rules)
        assert restored.edb_schema == program.edb_schema
        assert {str(rule) for rule in restored.rules} == {
            str(rule) for rule in program.rules
        }

    def test_program_semantics_preserved(self):
        from repro.datalog.evaluation import accepts

        program = self._sample_program()
        restored = program_from_dict(program_to_dict(program))
        database = Instance(program.edb_schema)
        database.add_all("E", [("c", "b"), ("b", "a")])
        assert accepts(program, database) == accepts(restored, database) is True


# ----------------------------------------------------------------------
# Generic entry points
# ----------------------------------------------------------------------
class TestGenericEntryPoints:
    def test_to_dict_dispatch(self, directory, simple_instance):
        for obj in (
            directory,
            directory.schema,
            simple_instance,
            jones_address_query(),
            FunctionalDependency("Mobile", (0,), 1),
        ):
            data = to_dict(obj)
            assert "kind" in data
            restored = from_dict(data)
            assert type(restored).__name__ == type(obj).__name__

    def test_dumps_loads_roundtrip(self, directory):
        text = dumps(directory, indent=2)
        restored = loads(text)
        assert isinstance(restored, AccessSchema)
        assert set(restored.methods) == set(directory.methods)

    def test_dumps_is_valid_json(self, hidden_directory):
        parsed = json.loads(dumps(hidden_directory))
        assert parsed["kind"] == "instance"

    def test_from_dict_requires_kind(self):
        with pytest.raises(SerializationError):
            from_dict({"no_kind": True})

    def test_from_dict_unknown_kind(self):
        with pytest.raises(SerializationError):
            from_dict({"kind": "nonsense"})

    def test_to_dict_unknown_object(self):
        with pytest.raises(SerializationError):
            to_dict(object())


# ----------------------------------------------------------------------
# Property-based round trips
# ----------------------------------------------------------------------
class TestPropertyBasedRoundTrips:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_access_schema_roundtrip(self, seed):
        generator = WorkloadGenerator(seed=seed)
        access_schema = generator.access_schema(num_relations=3)
        restored = access_schema_from_dict(access_schema_to_dict(access_schema))
        assert restored.schema == access_schema.schema
        assert set(restored.methods) == set(access_schema.methods)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_instance_roundtrip(self, seed):
        generator = WorkloadGenerator(seed=seed)
        schema = generator.schema(num_relations=3)
        instance = generator.instance(schema, tuples_per_relation=4)
        assert instance_from_dict(instance_to_dict(instance)) == instance

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_query_roundtrip(self, seed):
        generator = WorkloadGenerator(seed=seed)
        schema = generator.schema(num_relations=3)
        query = generator.conjunctive_query(schema)
        assert query_from_dict(query_to_dict(query)) == query

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_random_path_roundtrip(self, seed):
        generator = WorkloadGenerator(seed=seed)
        access_schema = generator.access_schema(num_relations=3)
        hidden = generator.instance(access_schema.schema, tuples_per_relation=3)
        path = generator.access_path(access_schema, hidden, length=3)
        restored = access_path_from_dict(access_path_to_dict(path))
        assert restored == path

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_random_constraints_roundtrip(self, seed):
        generator = WorkloadGenerator(seed=seed)
        schema = generator.schema(num_relations=3)
        for constraint in (
            generator.functional_dependency(schema),
            generator.inclusion_dependency(schema),
            generator.disjointness_constraint(schema),
        ):
            assert constraint_from_dict(constraint_to_dict(constraint)) == constraint

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=15, deadline=None)
    def test_random_instance_json_text_roundtrip(self, seed):
        generator = WorkloadGenerator(seed=seed)
        schema = generator.schema(num_relations=2)
        instance = generator.instance(schema, tuples_per_relation=3)
        assert loads(dumps(instance)) == instance
