"""Tests for propositional LTL over finite words: syntax, semantics, satisfiability."""

import pytest

from repro.ltl.sat import desugar, find_satisfying_word, is_satisfiable
from repro.ltl.semantics import satisfies, word_satisfies
from repro.ltl.syntax import (
    And,
    Eventually,
    FalseFormula,
    Globally,
    Next,
    Not,
    Or,
    Prop,
    TrueFormula,
    Until,
    bottom,
    conjunction,
    disjunction,
    prop,
    top,
)

p, q, r = prop("p"), prop("q"), prop("r")


class TestSyntax:
    def test_propositions_collected(self):
        formula = Until(p, And(q, Next(r)))
        assert formula.propositions() == frozenset({"p", "q", "r"})

    def test_size_and_depth(self):
        formula = Globally(Or(p, Next(q)))
        assert formula.size() == 5
        assert formula.temporal_depth() == 2

    def test_only_next_fragment(self):
        assert Next(And(p, q)).uses_only_next()
        assert not Eventually(p).uses_only_next()
        assert not Until(p, q).uses_only_next()

    def test_operators_sugar(self):
        formula = (p & q) | ~r
        assert isinstance(formula, Or)
        assert isinstance(formula.right, Not)
        assert isinstance(p.implies(q), Or)

    def test_conjunction_disjunction_helpers(self):
        assert isinstance(conjunction([]), TrueFormula)
        assert isinstance(disjunction([]), FalseFormula)
        assert conjunction([p]) == p
        assert disjunction([p, q]) == Or(p, q)


class TestSemantics:
    def test_prop_and_boolean(self):
        word = [{"p"}, {"q"}]
        assert word_satisfies(word, p)
        assert not word_satisfies(word, q)
        assert word_satisfies(word, Or(q, p))
        assert word_satisfies(word, Not(q))
        assert word_satisfies(word, top())
        assert not word_satisfies(word, bottom())

    def test_next_is_strict(self):
        assert word_satisfies([{"p"}, {"q"}], Next(q))
        assert not word_satisfies([{"p"}], Next(top()))

    def test_until(self):
        word = [{"p"}, {"p"}, {"q"}]
        assert word_satisfies(word, Until(p, q))
        assert not word_satisfies([{"p"}, set(), {"q"}], Until(p, q))
        # The right-hand side may hold immediately.
        assert word_satisfies([{"q"}], Until(p, q))

    def test_until_requires_witness_within_word(self):
        assert not word_satisfies([{"p"}, {"p"}], Until(p, q))

    def test_eventually_globally(self):
        word = [{"p"}, {"p", "q"}, {"p"}]
        assert word_satisfies(word, Eventually(q))
        assert word_satisfies(word, Globally(p))
        assert not word_satisfies(word, Globally(q))

    def test_positions(self):
        word = [{"p"}, {"q"}]
        assert satisfies(word, 1, q)
        assert not satisfies(word, 2, q)
        assert not satisfies(word, -1, q)

    def test_empty_word_satisfies_nothing(self):
        assert not word_satisfies([], top())


class TestSatisfiability:
    def test_simple_satisfiable(self):
        word = find_satisfying_word(And(p, Next(q)))
        assert word is not None
        assert word_satisfies(word, And(p, Next(q)))

    def test_contradiction_unsatisfiable(self):
        assert not is_satisfiable(And(p, Not(p)))

    def test_eventually_and_globally_interaction(self):
        formula = And(Globally(p), Eventually(q))
        word = find_satisfying_word(formula)
        assert word is not None
        assert word_satisfies(word, formula)

    def test_globally_not_vs_eventually(self):
        assert not is_satisfiable(And(Globally(Not(p)), Eventually(p)))

    def test_until_satisfiable_with_witness(self):
        formula = Until(p, And(q, Not(p)))
        word = find_satisfying_word(formula)
        assert word is not None
        assert word_satisfies(word, formula)

    def test_next_chain(self):
        formula = Next(Next(Next(p)))
        word = find_satisfying_word(formula)
        assert word is not None
        assert len(word) >= 4
        assert word_satisfies(word, formula)

    def test_next_false_is_satisfiable_by_short_word(self):
        # ¬X true holds exactly at the last position of a word.
        formula = Not(Next(TrueFormula()))
        word = find_satisfying_word(formula)
        assert word is not None
        assert len(word) == 1

    def test_restricted_alphabet(self):
        formula = And(p, Next(q))
        letters = [frozenset({"p"}), frozenset({"q"})]
        word = find_satisfying_word(formula, letters=letters)
        assert word is not None
        assert all(letter in letters for letter in word)

    def test_restricted_alphabet_can_make_unsatisfiable(self):
        formula = And(p, q)
        letters = [frozenset({"p"}), frozenset({"q"})]
        assert not is_satisfiable(formula, letters=letters)

    def test_max_length_bound(self):
        formula = Next(Next(p))
        assert not is_satisfiable(formula, max_length=2)
        assert is_satisfiable(formula, max_length=5)

    def test_desugar_preserves_satisfaction(self):
        formula = Globally(Or(p, Eventually(q)))
        word = [{"p"}, set(), {"q"}]
        assert word_satisfies(word, formula) == word_satisfies(word, desugar(formula))

    def test_mutual_exclusion_scheduler_like_formula(self):
        # A small "protocol" property: p and q alternate and never co-occur.
        formula = And(
            Globally(Not(And(p, q))),
            And(Eventually(p), Eventually(q)),
        )
        word = find_satisfying_word(formula)
        assert word is not None
        assert word_satisfies(word, formula)
