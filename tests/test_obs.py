"""Observability layer: spans, metrics, exporters, env registry.

Covers the tentpole guarantees of the tracing/metrics subsystem
(:mod:`repro.obs`):

* span records are nested, monotonic and picklable, and recording is a
  no-op with tracing disabled;
* the metrics registry absorbs legacy stats dicts and merges worker
  counter deltas without perturbing either side;
* spans cross the process boundary: the real pool worker entries ship
  their locally recorded spans back on the result payload under fork
  *and* spawn, and the coordinator folds them into the live trace;
* the acceptance scenario: a pooled relevance matrix under fault
  injection exports a Chrome-trace JSON containing worker-side child
  spans and a retry event — and with tracing off, verdicts and legacy
  stats are field-identical to the traced run.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle

import pytest

from repro.engine import DecisionEngine
from repro.obs import env as envknobs
from repro.obs import export, metrics, trace
from repro.store import faults
from repro.store import workqueue as workqueue_module
from repro.workloads.directory import (
    directory_access_schema,
    directory_hidden_instance,
    join_query,
)
from repro.workloads.matrices import probe_accesses, stream_relevance_matrix


@pytest.fixture(autouse=True)
def _clean_trace_state():
    """Tracing off and no span/plan leakage into or out of any test."""
    trace.set_enabled(False)
    trace.reset()
    faults.clear()
    yield
    trace.set_enabled(False)
    trace.reset()
    faults.clear()
    workqueue_module.discard_shared_pool()


# ---------------------------------------------------------------------------
# Span recording primitives
# ---------------------------------------------------------------------------
class TestSpanRecords:
    def test_disabled_recording_is_a_noop(self):
        with trace.trace_span("outer", key="value"):
            trace.event("inner")
        assert trace.take_spans() == []

    def test_nested_spans_and_attributes(self):
        trace.set_enabled(True)
        with trace.trace_span("outer", depth=0):
            with trace.trace_span("inner"):
                trace.annotate(touched=True)
            trace.event("marker", index=3)
        (root,) = trace.take_spans()
        assert root.name == "outer"
        assert root.attrs["depth"] == 0
        assert [child.name for child in root.children] == ["inner", "marker"]
        inner, marker = root.children
        assert inner.attrs["touched"] is True
        assert marker.duration_s == 0.0
        assert marker.attrs["index"] == 3
        assert root.duration_s >= inner.duration_s >= 0.0

    def test_span_records_pickle_round_trip(self):
        trace.set_enabled(True)
        with trace.trace_span("outer", label="x"):
            with trace.trace_span("inner"):
                pass
        (root,) = trace.take_spans()
        clone = pickle.loads(pickle.dumps(root))
        assert [span.name for span in clone.walk()] == [
            span.name for span in root.walk()
        ]
        assert clone.attrs == root.attrs
        assert clone.pid == os.getpid()

    def test_begin_end_tolerates_abandoned_children(self):
        # Generator-style phases: end() closes intervening spans so an
        # abandoned inner span cannot corrupt the stack.
        trace.set_enabled(True)
        outer = trace.begin("outer")
        trace.begin("abandoned")
        trace.end(outer, closed=True)
        (root,) = trace.take_spans()
        assert root.name == "outer"
        assert root.attrs["closed"] is True
        assert [child.name for child in root.children] == ["abandoned"]

    def test_attach_children_rebases_foreign_spans(self):
        trace.set_enabled(True)
        with trace.trace_span("worker-side"):
            pass
        shipped = pickle.loads(pickle.dumps(tuple(trace.take_spans())))
        with trace.trace_span("coordinator"):
            trace.attach_children(shipped)
        (root,) = trace.take_spans()
        (child,) = root.children
        assert child.name == "worker-side"
        assert root.start_s <= child.start_s

    def test_exporters_agree_on_the_span_set(self, tmp_path):
        trace.set_enabled(True)
        with trace.trace_span("outer"):
            with trace.trace_span("inner"):
                pass
        spans = trace.take_spans()
        names = {record["name"] for record in map(json.loads, export.to_jsonl(spans).splitlines())}
        chrome = export.to_chrome_trace(spans)
        assert names == {"outer", "inner"}
        assert {event["name"] for event in chrome["traceEvents"]} == names
        assert all(event["ph"] == "X" for event in chrome["traceEvents"])
        tree = export.render_tree(spans)
        assert "outer" in tree and "inner" in tree
        target = tmp_path / "trace.json"
        export.write_chrome_trace(spans, str(target))
        assert json.loads(target.read_text())["traceEvents"]


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_histograms_and_views(self):
        registry = metrics.MetricsRegistry()
        registry.counter("hits")
        registry.counter("hits", 2)
        registry.gauge("depth", 7)
        registry.observe("latency", 0.25)
        registry.observe("latency", 0.75)
        registry.register_view("cache", lambda: {"entries": 3})
        snap = registry.snapshot()
        assert snap["counters"]["hits"] == 3
        assert snap["gauges"]["depth"] == 7
        assert snap["histograms"]["latency"]["count"] == 2
        assert snap["histograms"]["latency"]["mean"] == 0.5
        assert snap["views"]["cache"]["entries"] == 3

    def test_absorb_keeps_legacy_dict_untouched(self):
        registry = metrics.MetricsRegistry()
        legacy = {"memo_hits": 4, "label": "ignored", "flag": True}
        registry.absorb("emptiness", legacy)
        snap = registry.snapshot()
        assert snap["counters"]["emptiness.memo_hits"] == 4
        assert "emptiness.label" not in snap["counters"]
        assert "emptiness.flag" not in snap["counters"]  # bools are not counters
        assert legacy == {"memo_hits": 4, "label": "ignored", "flag": True}

    def test_counter_deltas_merge_across_registries(self):
        # The cross-process shipping shape: a worker-side registry's delta
        # since submission merges into the coordinator's registry.
        coordinator = metrics.MetricsRegistry()
        coordinator.counter("shared", 1)
        worker = metrics.MetricsRegistry()
        base = worker.counters_snapshot()
        worker.counter("shared", 2)
        worker.counter("worker_only", 5)
        delta = worker.counters_delta(base)
        clone = pickle.loads(pickle.dumps(delta))
        coordinator.merge_counters(clone)
        snap = coordinator.snapshot()
        assert snap["counters"]["shared"] == 3
        assert snap["counters"]["worker_only"] == 5

    def test_tracked_component_is_live(self):
        registry = metrics.MetricsRegistry()

        class Holder:
            def __init__(self):
                self.stats = {"requests": 0}

        holder = Holder()
        registry.track("holder", holder, lambda h: h.stats)
        holder.stats["requests"] = 9
        assert registry.snapshot()["components"]["holder"]["requests"] == 9


# ---------------------------------------------------------------------------
# Env-knob registry
# ---------------------------------------------------------------------------
class TestEnvRegistry:
    def test_every_repro_knob_is_registered(self):
        names = {knob.name for knob in envknobs.all_knobs()}
        assert {
            "REPRO_TRACE",
            "REPRO_FAULT_INJECT",
            "REPRO_PARALLEL_CHAINS",
            "REPRO_PARALLEL_SUBTREES",
            "REPRO_PARALLEL_TASKS",
            "REPRO_PARALLEL_MIN_COST",
            "REPRO_SUBTREE_SPLIT_BUDGET",
            "REPRO_POOL_RETRIES",
            "REPRO_POOL_ITEM_TIMEOUT",
        } <= names

    def test_current_reports_source_and_value(self, monkeypatch):
        monkeypatch.delenv("REPRO_POOL_RETRIES", raising=False)
        row = envknobs.knob("REPRO_POOL_RETRIES").current()
        assert row["source"] == "default"
        assert row["value"] == envknobs.DEFAULT_POOL_RETRIES
        monkeypatch.setenv("REPRO_POOL_RETRIES", "5")
        row = envknobs.knob("REPRO_POOL_RETRIES").current()
        assert row["source"] == "env"
        assert row["value"] == 5
        assert row["raw"] == "5"


# ---------------------------------------------------------------------------
# Streamed matrix latency stats
# ---------------------------------------------------------------------------
class TestStreamedMatrixStats:
    def test_first_verdict_latency_and_provenance(self):
        schema = directory_access_schema()
        hidden = directory_hidden_instance("small")
        accesses = probe_accesses(schema, hidden, limit=6)
        engine = DecisionEngine()
        streamed = stream_relevance_matrix(
            engine, schema, accesses, join_query(), require_boolean_access=False
        )
        assert len(streamed.values) == len(accesses)
        assert 0.0 <= streamed.first_verdict_s <= streamed.total_s
        produced = sum(1 for value in streamed.values if value is not None)
        assert sum(streamed.by_provenance.values()) == produced
        summary = engine.last_batch_summary()
        assert summary["requests"] == produced
        assert summary["by_provenance"] == streamed.by_provenance
        assert 0.0 <= summary["first_verdict_s"] <= summary["total_s"]
        assert len(engine.last_batch_profile) == produced
        # A warm re-run is answered from the memo, and the profile says so.
        rerun = stream_relevance_matrix(
            engine, schema, accesses, join_query(), require_boolean_access=False
        )
        assert set(rerun.by_provenance) == {"memo"}
        assert rerun.first_verdict_s <= rerun.total_s

    def test_request_latency_histogram_records_each_result(self):
        metrics.reset()
        schema = directory_access_schema()
        accesses = probe_accesses(schema, directory_hidden_instance("small"), limit=4)
        DecisionEngine().relevance_matrix(
            schema, accesses, join_query(), require_boolean_access=False
        )
        histogram = metrics.snapshot()["histograms"]["engine.request_latency_s"]
        assert histogram["count"] == len(accesses)


# ---------------------------------------------------------------------------
# Worker-side span shipping through the real pool entry point
# ---------------------------------------------------------------------------
class TestWorkerSpanShipping:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_subtree_worker_ships_picklable_spans(self, start_method):
        from concurrent.futures import ProcessPoolExecutor

        from test_parallel_chains import _harvest_items, vocabulary as _  # noqa: F401

        from repro.core.solver import AccLTLSolver

        voc = AccLTLSolver(directory_access_schema()).vocabulary
        _, items, payload = _harvest_items(voc)
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        token = workqueue_module._next_context_token()
        context = multiprocessing.get_context(start_method)
        with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
            outcome = pool.submit(
                workqueue_module._subtree_worker, token, blob, items[0], 10**6, True
            ).result()
        assert outcome.spans, "worker recorded no spans with tracing on"
        clone = pickle.loads(pickle.dumps(outcome.spans))
        names = [span.name for root in clone for span in root.walk()]
        assert "emptiness.subtree" in names
        worker_pids = {span.pid for root in outcome.spans for span in root.walk()}
        assert worker_pids and os.getpid() not in worker_pids
        # The same submission with tracing off ships nothing.
        with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
            quiet = pool.submit(
                workqueue_module._subtree_worker, token, blob, items[0], 10**6, False
            ).result()
        assert quiet.spans is None
        assert (quiet.status, quiet.steps, quiet.explored) == (
            outcome.status,
            outcome.steps,
            outcome.explored,
        )


# ---------------------------------------------------------------------------
# Acceptance: pooled relevance matrix, fault injection, Chrome export
# ---------------------------------------------------------------------------
def _relevance_workload(limit=8):
    schema = directory_access_schema()
    hidden = directory_hidden_instance("small")
    return schema, probe_accesses(schema, hidden, limit=limit), join_query()


class TestPooledTraceAcceptance:
    def test_pooled_run_exports_worker_spans_and_retry(self, tmp_path, monkeypatch):
        monkeypatch.setenv(faults.FAULT_INJECT_ENV, "raise@task:1")
        workqueue_module.discard_shared_pool()  # fork workers with the spec
        trace.set_enabled(True)
        trace.reset()
        schema, accesses, query = _relevance_workload()
        engine = DecisionEngine(max_workers=1)
        results = engine.relevance_matrix(
            schema, accesses, query, require_boolean_access=False
        )
        spans = trace.take_spans()
        assert all(result is not None for result in results)
        assert engine.stats()["pool_worker_failures"] >= 1
        flat = [span for root in spans for span in root.walk()]
        names = [span.name for span in flat]
        assert "engine.batch" in names and "engine.drain" in names
        worker_spans = [
            span
            for span in flat
            if span.name.startswith("task:") and span.pid != os.getpid()
        ]
        assert worker_spans, "no worker-side child spans in the folded trace"
        assert any(span.attrs.get("pooled") for span in worker_spans)
        retry_like = [
            span
            for span in flat
            if span.name in ("pool.retry", "pool.fallback", "pool.timeout")
        ]
        assert retry_like, "fault injection left no retry/fallback span"
        target = tmp_path / "pooled_trace.json"
        export.write_chrome_trace(spans, str(target))
        events = json.loads(target.read_text())["traceEvents"]
        event_names = {event["name"] for event in events}
        assert any(name.startswith("task:") for name in event_names)
        assert event_names & {"pool.retry", "pool.fallback", "pool.timeout"}
        assert any(
            event["name"].startswith("task:") and event["pid"] != os.getpid()
            for event in events
        )

    def test_disabled_tracing_is_field_identical(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        schema, accesses, query = _relevance_workload()
        baseline_engine = DecisionEngine()
        baseline = baseline_engine.relevance_matrix(
            schema, accesses, query, require_boolean_access=False
        )
        assert trace.take_spans() == []
        trace.set_enabled(True)
        traced_engine = DecisionEngine()
        traced = traced_engine.relevance_matrix(
            schema, accesses, query, require_boolean_access=False
        )
        assert trace.take_spans()
        trace.set_enabled(False)
        assert [r.relevant for r in baseline] == [r.relevant for r in traced]
        baseline_summary = baseline_engine.last_batch_summary()
        traced_summary = traced_engine.last_batch_summary()
        assert baseline_summary["by_provenance"] == traced_summary["by_provenance"]
        assert baseline_engine.stats() == traced_engine.stats()
