"""Determinism of the parallel Lemma 4.9 chain checking.

The process-pool fan-out (:mod:`repro.store.parallel`) must be invisible
in the results: for every automaton, ``automaton_emptiness`` returns a
bit-identical :class:`~repro.automata.emptiness.EmptinessResult` with
``parallel=True`` and ``parallel=False`` — verdict, witness, exploration
counters and all.  The fallback paths (no pool, single chain) must be
equally invisible.
"""

from __future__ import annotations

import pytest

from repro.automata.emptiness import automaton_emptiness, check_restriction
from repro.automata.library import containment_automaton, ltr_automaton
from repro.automata.operations import union_automaton
from repro.automata.progressive import chain_restrictions
from repro.automata.run import accepts_path
from repro.core.solver import AccLTLSolver
from repro.store import parallel as parallel_module
from repro.workloads.directory import (
    directory_access_schema,
    join_query,
    resident_names_query,
)
from repro.workloads.scenarios import standard_scenarios


def _result_fields(result):
    return (
        result.empty,
        result.witness,
        result.exhausted,
        result.paths_explored,
        result.chains_checked,
    )


def _multi_chain_automaton(vocabulary, empty_language: bool):
    """A union automaton whose condensation has several chains."""
    scenario = next(s for s in standard_scenarios() if s.name == "directory")
    ltr = ltr_automaton(vocabulary, scenario.probe_access, scenario.query_one)
    if empty_language:
        containment = containment_automaton(
            vocabulary, join_query(), resident_names_query(), grounded=False
        )
    else:
        containment = containment_automaton(
            vocabulary, resident_names_query(), join_query(), grounded=False
        )
    return union_automaton(containment, ltr)


@pytest.fixture(scope="module")
def vocabulary():
    return AccLTLSolver(directory_access_schema()).vocabulary


class TestParallelMatchesSequential:
    @pytest.mark.parametrize("empty_language", [True, False])
    def test_bit_identical_results(self, vocabulary, empty_language):
        automaton = _multi_chain_automaton(vocabulary, empty_language)
        assert len(chain_restrictions(automaton.trim())) > 1
        kwargs = dict(max_paths=4000, use_datalog_precheck=False)
        sequential = automaton_emptiness(
            automaton, vocabulary, parallel=False, **kwargs
        )
        # max_workers=2 forces a real process pool even on one-core boxes,
        # so this test genuinely exercises cross-process pickling.
        parallel = automaton_emptiness(
            automaton, vocabulary, parallel=True, max_workers=2, **kwargs
        )
        assert _result_fields(sequential) == _result_fields(parallel)
        if sequential.witness is not None:
            assert accepts_path(automaton, vocabulary, sequential.witness)

    def test_bit_identical_with_precheck(self, vocabulary):
        automaton = _multi_chain_automaton(vocabulary, empty_language=True)
        sequential = automaton_emptiness(
            automaton, vocabulary, parallel=False, max_paths=4000
        )
        parallel = automaton_emptiness(
            automaton, vocabulary, parallel=True, max_workers=2, max_paths=4000
        )
        assert _result_fields(sequential) == _result_fields(parallel)

    def test_single_chain_skips_the_pool(self, vocabulary):
        scenario = next(s for s in standard_scenarios() if s.name == "directory-jones")
        voc = AccLTLSolver(scenario.access_schema).vocabulary
        automaton = ltr_automaton(voc, scenario.probe_access, scenario.query_one)
        sequential = automaton_emptiness(
            automaton, voc, parallel=False, max_paths=4000
        )
        parallel = automaton_emptiness(automaton, voc, parallel=True, max_paths=4000)
        assert _result_fields(sequential) == _result_fields(parallel)


class TestSequentialFallback:
    def test_pool_failure_falls_back_to_sequential(self, vocabulary, monkeypatch):
        class _BrokenPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no process pool in this environment")

        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor", _BrokenPool)
        monkeypatch.setattr(parallel_module, "_POOL", None)
        monkeypatch.setattr(parallel_module, "_POOL_WORKERS", 0)
        automaton = _multi_chain_automaton(vocabulary, empty_language=True)
        kwargs = dict(max_paths=3000, use_datalog_precheck=False)
        fallback = automaton_emptiness(
            automaton, vocabulary, parallel=True, max_workers=2, **kwargs
        )
        sequential = automaton_emptiness(
            automaton, vocabulary, parallel=False, **kwargs
        )
        assert _result_fields(fallback) == _result_fields(sequential)

    def test_env_toggle_controls_default(self, vocabulary, monkeypatch):
        monkeypatch.delenv(parallel_module.PARALLEL_CHAINS_ENV, raising=False)
        assert parallel_module.parallel_chains_enabled() is False
        monkeypatch.setenv(parallel_module.PARALLEL_CHAINS_ENV, "1")
        assert parallel_module.parallel_chains_enabled() is True
        monkeypatch.setenv(parallel_module.PARALLEL_CHAINS_ENV, "off")
        assert parallel_module.parallel_chains_enabled() is False


class TestParallelChainsEnvParsing:
    """``REPRO_PARALLEL_CHAINS`` value parsing, case by case."""

    @pytest.mark.parametrize(
        "value",
        ["0", "false", "False", "FALSE", "no", "No", "off", "OFF", "", "  ", " 0 "],
    )
    def test_disabling_values(self, monkeypatch, value):
        monkeypatch.setenv(parallel_module.PARALLEL_CHAINS_ENV, value)
        assert parallel_module.parallel_chains_enabled() is False

    @pytest.mark.parametrize("value", ["1", "true", "True", "yes", "on", "2", " 1 "])
    def test_enabling_values(self, monkeypatch, value):
        monkeypatch.setenv(parallel_module.PARALLEL_CHAINS_ENV, value)
        assert parallel_module.parallel_chains_enabled() is True

    def test_unset_disables(self, monkeypatch):
        monkeypatch.delenv(parallel_module.PARALLEL_CHAINS_ENV, raising=False)
        assert parallel_module.parallel_chains_enabled() is False

    def test_zero_verifiably_bypasses_the_pool(self, vocabulary, monkeypatch):
        # With REPRO_PARALLEL_CHAINS=0 and parallel=None, the emptiness
        # pipeline must stay on the in-process loop: the pool fan-out is
        # rigged to explode if touched.
        monkeypatch.setenv(parallel_module.PARALLEL_CHAINS_ENV, "0")

        def _explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("process pool used despite REPRO_PARALLEL_CHAINS=0")

        monkeypatch.setattr(parallel_module, "map_chain_outcomes", _explode)
        automaton = _multi_chain_automaton(vocabulary, empty_language=True)
        result = automaton_emptiness(
            automaton, vocabulary, max_paths=1500, use_datalog_precheck=False
        )
        assert result.chains_checked >= 1


class TestWorkerUnit:
    def test_check_restriction_matches_inline_fold(self, vocabulary):
        """The worker unit itself is the sequential unit (shared code)."""
        automaton = _multi_chain_automaton(vocabulary, empty_language=True).trim()
        restrictions = chain_restrictions(automaton)
        kwargs = dict(
            max_length=4,
            max_response_size=2,
            max_paths=1500,
            fact_pool=None,
            value_pool=None,
            grounded_only=False,
            memoize=True,
        )
        initial = vocabulary.access_schema.empty_instance()
        outcomes = [
            check_restriction(r, vocabulary, initial, kwargs, True)
            for r in restrictions
        ]
        assert len(outcomes) == len(restrictions)
        for outcome in outcomes:
            assert outcome.explored >= 0
