"""Determinism of the parallel Lemma 4.9 chain checking.

The process-pool fan-out (:mod:`repro.store.parallel`) must be invisible
in the results: for every automaton, ``automaton_emptiness`` returns a
bit-identical :class:`~repro.automata.emptiness.EmptinessResult` with
``parallel=True`` and ``parallel=False`` — verdict, witness, exploration
counters and all.  The fallback paths (no pool, single chain) must be
equally invisible.

The same contract extends to the intra-chain subtree decomposition
(:mod:`repro.store.workqueue`): ``subtree_parallel=True`` returns
identical results whether items run pooled or in-process, agrees with
the plain search on verdict/witness/exhaustiveness always, and agrees on
*every* field (including ``paths_explored``) under ``memoize=False``,
where the scope-local expansion memos make exploration counts additive
over subtrees.
"""

from __future__ import annotations

import multiprocessing
import pickle

import pytest

from repro.automata import emptiness as emptiness_module
from repro.automata.emptiness import (
    SubtreeItem,
    automaton_emptiness,
    check_restriction,
)
from repro.automata.library import containment_automaton, ltr_automaton
from repro.automata.operations import union_automaton
from repro.automata.progressive import chain_restrictions
from repro.automata.run import accepts_path
from repro.core.solver import AccLTLSolver
from repro.store import parallel as parallel_module
from repro.store import workqueue as workqueue_module
from repro.workloads.directory import (
    directory_access_schema,
    join_query,
    resident_names_query,
)
from repro.workloads.generators import WorkloadGenerator
from repro.workloads.scenarios import standard_scenarios


def _result_fields(result):
    return (
        result.empty,
        result.witness,
        result.exhausted,
        result.paths_explored,
        result.chains_checked,
    )


def _multi_chain_automaton(vocabulary, empty_language: bool):
    """A union automaton whose condensation has several chains."""
    scenario = next(s for s in standard_scenarios() if s.name == "directory")
    ltr = ltr_automaton(vocabulary, scenario.probe_access, scenario.query_one)
    if empty_language:
        containment = containment_automaton(
            vocabulary, join_query(), resident_names_query(), grounded=False
        )
    else:
        containment = containment_automaton(
            vocabulary, resident_names_query(), join_query(), grounded=False
        )
    return union_automaton(containment, ltr)


@pytest.fixture(scope="module")
def vocabulary():
    return AccLTLSolver(directory_access_schema()).vocabulary


class TestParallelMatchesSequential:
    @pytest.mark.parametrize("empty_language", [True, False])
    def test_bit_identical_results(self, vocabulary, empty_language):
        automaton = _multi_chain_automaton(vocabulary, empty_language)
        assert len(chain_restrictions(automaton.trim())) > 1
        kwargs = dict(max_paths=4000, use_datalog_precheck=False)
        sequential = automaton_emptiness(
            automaton, vocabulary, parallel=False, **kwargs
        )
        # max_workers=2 forces a real process pool even on one-core boxes,
        # so this test genuinely exercises cross-process pickling.
        parallel = automaton_emptiness(
            automaton, vocabulary, parallel=True, max_workers=2, **kwargs
        )
        assert _result_fields(sequential) == _result_fields(parallel)
        if sequential.witness is not None:
            assert accepts_path(automaton, vocabulary, sequential.witness)

    def test_bit_identical_with_precheck(self, vocabulary):
        automaton = _multi_chain_automaton(vocabulary, empty_language=True)
        sequential = automaton_emptiness(
            automaton, vocabulary, parallel=False, max_paths=4000
        )
        parallel = automaton_emptiness(
            automaton, vocabulary, parallel=True, max_workers=2, max_paths=4000
        )
        assert _result_fields(sequential) == _result_fields(parallel)

    def test_single_chain_skips_the_pool(self, vocabulary):
        scenario = next(s for s in standard_scenarios() if s.name == "directory-jones")
        voc = AccLTLSolver(scenario.access_schema).vocabulary
        automaton = ltr_automaton(voc, scenario.probe_access, scenario.query_one)
        sequential = automaton_emptiness(
            automaton, voc, parallel=False, max_paths=4000
        )
        parallel = automaton_emptiness(automaton, voc, parallel=True, max_paths=4000)
        assert _result_fields(sequential) == _result_fields(parallel)


class TestSequentialFallback:
    def test_pool_failure_falls_back_to_sequential(self, vocabulary, monkeypatch):
        class _BrokenPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no process pool in this environment")

        monkeypatch.setattr(workqueue_module, "ProcessPoolExecutor", _BrokenPool)
        monkeypatch.setattr(workqueue_module, "_POOL", None)
        monkeypatch.setattr(workqueue_module, "_POOL_WORKERS", 0)
        automaton = _multi_chain_automaton(vocabulary, empty_language=True)
        kwargs = dict(max_paths=3000, use_datalog_precheck=False)
        fallback = automaton_emptiness(
            automaton, vocabulary, parallel=True, max_workers=2, **kwargs
        )
        sequential = automaton_emptiness(
            automaton, vocabulary, parallel=False, **kwargs
        )
        assert _result_fields(fallback) == _result_fields(sequential)

    def test_pool_failure_in_subtree_mode_falls_back(self, vocabulary, monkeypatch):
        class _BrokenPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no process pool in this environment")

        monkeypatch.setattr(workqueue_module, "ProcessPoolExecutor", _BrokenPool)
        monkeypatch.setattr(workqueue_module, "_POOL", None)
        monkeypatch.setattr(workqueue_module, "_POOL_WORKERS", 0)
        automaton = _multi_chain_automaton(vocabulary, empty_language=True)
        kwargs = dict(max_paths=800, use_datalog_precheck=False, memoize=False)
        fallback = automaton_emptiness(
            automaton,
            vocabulary,
            parallel=True,
            subtree_parallel=True,
            max_workers=2,
            **kwargs,
        )
        sequential = automaton_emptiness(
            automaton, vocabulary, parallel=False, **kwargs
        )
        assert _result_fields(fallback) == _result_fields(sequential)

    def test_env_toggle_controls_default(self, vocabulary, monkeypatch):
        monkeypatch.delenv(parallel_module.PARALLEL_CHAINS_ENV, raising=False)
        assert parallel_module.parallel_chains_enabled() is False
        monkeypatch.setenv(parallel_module.PARALLEL_CHAINS_ENV, "1")
        assert parallel_module.parallel_chains_enabled() is True
        monkeypatch.setenv(parallel_module.PARALLEL_CHAINS_ENV, "off")
        assert parallel_module.parallel_chains_enabled() is False


class TestParallelChainsEnvParsing:
    """``REPRO_PARALLEL_CHAINS`` value parsing, case by case."""

    @pytest.mark.parametrize(
        "value",
        ["0", "false", "False", "FALSE", "no", "No", "off", "OFF", "", "  ", " 0 "],
    )
    def test_disabling_values(self, monkeypatch, value):
        monkeypatch.setenv(parallel_module.PARALLEL_CHAINS_ENV, value)
        assert parallel_module.parallel_chains_enabled() is False

    @pytest.mark.parametrize("value", ["1", "true", "True", "yes", "on", "2", " 1 "])
    def test_enabling_values(self, monkeypatch, value):
        monkeypatch.setenv(parallel_module.PARALLEL_CHAINS_ENV, value)
        assert parallel_module.parallel_chains_enabled() is True

    def test_unset_disables(self, monkeypatch):
        monkeypatch.delenv(parallel_module.PARALLEL_CHAINS_ENV, raising=False)
        assert parallel_module.parallel_chains_enabled() is False

    def test_zero_verifiably_bypasses_the_pool(self, vocabulary, monkeypatch):
        # With REPRO_PARALLEL_CHAINS=0 and parallel=None, the emptiness
        # pipeline must stay on the in-process loop: the pool fan-out is
        # rigged to explode if touched.
        monkeypatch.setenv(parallel_module.PARALLEL_CHAINS_ENV, "0")

        def _explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("process pool used despite REPRO_PARALLEL_CHAINS=0")

        monkeypatch.setattr(parallel_module, "map_chain_outcomes", _explode)
        automaton = _multi_chain_automaton(vocabulary, empty_language=True)
        result = automaton_emptiness(
            automaton, vocabulary, max_paths=1500, use_datalog_precheck=False
        )
        assert result.chains_checked >= 1


class TestWorkerUnit:
    def test_check_restriction_matches_inline_fold(self, vocabulary):
        """The worker unit itself is the sequential unit (shared code)."""
        automaton = _multi_chain_automaton(vocabulary, empty_language=True).trim()
        restrictions = chain_restrictions(automaton)
        kwargs = dict(
            max_length=4,
            max_response_size=2,
            max_paths=1500,
            fact_pool=None,
            value_pool=None,
            grounded_only=False,
            memoize=True,
        )
        initial = vocabulary.access_schema.empty_instance()
        outcomes = [
            check_restriction(r, vocabulary, initial, kwargs, True)
            for r in restrictions
        ]
        assert len(outcomes) == len(restrictions)
        for outcome in outcomes:
            assert outcome.explored >= 0


class TestSubtreeMatchesSequential:
    """Sequential / chain-parallel / subtree-parallel mode agreement."""

    @pytest.mark.parametrize("empty_language", [True, False])
    def test_full_field_equality_memoize_off(self, vocabulary, empty_language):
        """With memoize=False all three modes agree on every field.

        The expansion memo is the one scope-dependent layer of the
        search; without it, exploration counts are additive over
        subtrees, so the subtree decomposition reproduces the sequential
        counters exactly — in-process and pooled alike.
        """
        automaton = _multi_chain_automaton(vocabulary, empty_language)
        kwargs = dict(max_paths=1200, use_datalog_precheck=False, memoize=False)
        sequential = automaton_emptiness(
            automaton, vocabulary, parallel=False, **kwargs
        )
        chain_parallel = automaton_emptiness(
            automaton, vocabulary, parallel=True, max_workers=2, **kwargs
        )
        subtree_inprocess = automaton_emptiness(
            automaton, vocabulary, parallel=False, subtree_parallel=True, **kwargs
        )
        subtree_pooled = automaton_emptiness(
            automaton,
            vocabulary,
            parallel=True,
            subtree_parallel=True,
            max_workers=2,
            **kwargs,
        )
        reference = _result_fields(sequential)
        assert _result_fields(chain_parallel) == reference
        assert _result_fields(subtree_inprocess) == reference
        assert _result_fields(subtree_pooled) == reference
        if sequential.witness is not None:
            assert accepts_path(automaton, vocabulary, sequential.witness)

    @pytest.mark.parametrize("empty_language", [True, False])
    def test_verdict_equality_memoized(self, vocabulary, empty_language):
        """Memoised subtree mode: verdicts coincide away from the cap.

        The expansion memo is scope-local (per subtree), so the
        decomposed search explores more than the globally memoised
        sequential search when transpositions cross subtree boundaries.
        Away from the ``max_paths`` boundary (here: both runs abort, or
        neither does) verdict, witness and exhausted coincide; the
        boundary itself is pinned in
        ``test_memoized_boundary_abort_is_sound_not_identical``.
        """
        automaton = _multi_chain_automaton(vocabulary, empty_language)
        kwargs = dict(max_paths=1500, use_datalog_precheck=False)
        sequential = automaton_emptiness(
            automaton, vocabulary, parallel=False, **kwargs
        )
        subtree = automaton_emptiness(
            automaton, vocabulary, parallel=False, subtree_parallel=True, **kwargs
        )
        assert (subtree.empty, subtree.witness, subtree.exhausted) == (
            sequential.empty,
            sequential.witness,
            sequential.exhausted,
        )

    def test_memoized_boundary_abort_is_sound_not_identical(self, vocabulary):
        """At the ``max_paths`` boundary, memoised subtree mode is sound.

        The scope-local memos prune less, so the decomposed search can
        hit the cap where the globally memoised sequential search
        finished exhaustively.  The documented contract: the decomposed
        result is then *less conclusive* (``exhausted=False``), never
        *wrong* — it must not claim exhaustion, and it must stay
        deterministic (pooled == in-process).  ``memoize=False`` on the
        same workload restores full field equality.
        """
        automaton = containment_automaton(
            vocabulary, join_query(), resident_names_query(), grounded=False
        )
        kwargs = dict(max_paths=500, use_datalog_precheck=False)
        sequential = automaton_emptiness(
            automaton, vocabulary, parallel=False, **kwargs
        )
        inprocess = automaton_emptiness(
            automaton, vocabulary, parallel=False, subtree_parallel=True, **kwargs
        )
        pooled = automaton_emptiness(
            automaton,
            vocabulary,
            parallel=True,
            subtree_parallel=True,
            max_workers=2,
            **kwargs,
        )
        # Deterministic across placements...
        assert _result_fields(inprocess) == _result_fields(pooled)
        # ...and sound versus the plain search: same emptiness verdict
        # here, and exhaustion is only ever claimed when the plain
        # search claims it too (the decomposition may be the less
        # conclusive side, never the overclaiming one).
        assert inprocess.empty == sequential.empty
        if inprocess.exhausted:
            assert sequential.exhausted
        # With the cap out of the picture the fields align exactly.
        exact = dict(kwargs, max_paths=100000, memoize=False)
        assert _result_fields(
            automaton_emptiness(
                automaton, vocabulary, parallel=False, subtree_parallel=True, **exact
            )
        ) == _result_fields(
            automaton_emptiness(automaton, vocabulary, parallel=False, **exact)
        )

    def test_resplit_budget_preserves_results(self, vocabulary):
        """A tiny split budget forces the overflow/re-split protocol.

        Re-splitting is a pure function of ``(item, budget)``, so pooled
        and in-process execution still agree with each other and with
        the plain sequential search (memoize=False: on every field).
        """
        automaton = _multi_chain_automaton(vocabulary, empty_language=True)
        kwargs = dict(max_paths=700, use_datalog_precheck=False, memoize=False)
        sequential = automaton_emptiness(
            automaton, vocabulary, parallel=False, **kwargs
        )
        inprocess = automaton_emptiness(
            automaton,
            vocabulary,
            parallel=False,
            subtree_parallel=True,
            split_budget=25,
            **kwargs,
        )
        pooled = automaton_emptiness(
            automaton,
            vocabulary,
            parallel=True,
            subtree_parallel=True,
            max_workers=2,
            split_budget=25,
            **kwargs,
        )
        assert _result_fields(inprocess) == _result_fields(sequential)
        assert _result_fields(pooled) == _result_fields(sequential)
        assert (inprocess.stats or {}).get("subtree_overflows", 0) > 0

    def test_single_chain_subtree_dispatch(self, vocabulary):
        """Subtree mode parallelises even a single-chain automaton."""
        scenario = next(s for s in standard_scenarios() if s.name == "directory")
        voc = AccLTLSolver(scenario.access_schema).vocabulary
        full = ltr_automaton(voc, scenario.probe_access, scenario.query_one)
        # One chain restriction *is* a single-chain automaton — the shape
        # whole-chain parallelism cannot split but subtree mode can.
        automaton = chain_restrictions(full.trim())[0]
        assert len(chain_restrictions(automaton.trim())) == 1
        kwargs = dict(max_paths=2000, use_datalog_precheck=False, memoize=False)
        sequential = automaton_emptiness(automaton, voc, parallel=False, **kwargs)
        pooled = automaton_emptiness(
            automaton,
            voc,
            parallel=True,
            subtree_parallel=True,
            max_workers=2,
            **kwargs,
        )
        assert _result_fields(pooled) == _result_fields(sequential)
        assert (pooled.stats or {}).get("subtree_items", 0) > 0


class TestRandomizedDeterminism:
    """Randomised workloads: field-by-field mode agreement (memoize=False)."""

    @staticmethod
    def _random_automaton(seed: int):
        generator = WorkloadGenerator(seed=seed)
        access_schema = generator.access_schema(
            num_relations=2, methods_per_relation=2, max_inputs=1
        )
        vocabulary = AccLTLSolver(access_schema).vocabulary
        q1 = generator.conjunctive_query(
            access_schema.schema, num_atoms=2, num_variables=3
        )
        q2 = generator.conjunctive_query(
            access_schema.schema, num_atoms=2, num_variables=3
        )
        return containment_automaton(vocabulary, q1, q2, grounded=False), vocabulary

    @pytest.mark.parametrize("seed", range(6))
    def test_modes_agree_field_by_field(self, seed):
        automaton, vocabulary = self._random_automaton(seed)
        kwargs = dict(max_paths=250, use_datalog_precheck=False, memoize=False)
        sequential = automaton_emptiness(
            automaton, vocabulary, parallel=False, **kwargs
        )
        subtree = automaton_emptiness(
            automaton, vocabulary, parallel=False, subtree_parallel=True, **kwargs
        )
        assert _result_fields(subtree) == _result_fields(sequential)
        if seed % 3 == 0:
            # Exercise the real pool on a subset (pool dispatch is slow
            # on single-core CI boxes; the in-process decomposition above
            # is already the same code modulo placement).
            pooled = automaton_emptiness(
                automaton,
                vocabulary,
                parallel=True,
                subtree_parallel=True,
                max_workers=2,
                **kwargs,
            )
            assert _result_fields(pooled) == _result_fields(sequential)

    @pytest.mark.parametrize("seed", range(3))
    def test_memoized_verdicts_agree(self, seed):
        automaton, vocabulary = self._random_automaton(seed)
        kwargs = dict(max_paths=250, use_datalog_precheck=False)
        sequential = automaton_emptiness(
            automaton, vocabulary, parallel=False, **kwargs
        )
        subtree = automaton_emptiness(
            automaton, vocabulary, parallel=False, subtree_parallel=True, **kwargs
        )
        assert (subtree.empty, subtree.witness, subtree.exhausted) == (
            sequential.empty,
            sequential.witness,
            sequential.exhausted,
        )


def _harvest_items(vocabulary):
    """A real search plus a few exported work items from its trunk."""
    scenario = next(s for s in standard_scenarios() if s.name == "directory")
    voc = AccLTLSolver(scenario.access_schema).vocabulary
    automaton = ltr_automaton(
        voc, scenario.probe_access, scenario.query_one
    ).trim()
    initial = voc.access_schema.empty_instance()
    search = emptiness_module._WitnessSearch(
        automaton,
        voc,
        initial,
        max_length=4,
        max_response_size=2,
        max_paths=2000,
        grounded_only=False,
        memoize=False,
    )
    expansion = search.run_round_exporting(3)
    assert expansion.records, "expected the trunk to export work items"
    payload = (automaton, voc, search.initial_snapshot, search.params())
    return search, [record.item for record in expansion.records], payload


class TestWorkItemShipping:
    """Subtree work items survive pickling — under fork *and* spawn.

    Spawn is the adversarial case: the child process has a different
    hash seed, so anything that serialises hash-dependent layout (a raw
    HAMT trie, a dict order) would rebuild differently.  Snapshots
    pickle as fact lists by construction, which these tests verify end
    to end through the real worker entry point.
    """

    def test_plain_pickle_round_trip(self, vocabulary):
        _, items, _ = _harvest_items(vocabulary)
        for item in items[:5]:
            clone = pickle.loads(pickle.dumps(item))
            assert clone.states == item.states
            assert clone.known == item.known
            assert clone.budget == item.budget
            assert clone.snapshot == item.snapshot  # exact structural equality

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_worker_round_trip_matches_inprocess(self, vocabulary, start_method):
        from concurrent.futures import ProcessPoolExecutor

        search, items, payload = _harvest_items(vocabulary)
        item = items[0]
        reference = search.run_subtree(item, 10**6)
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        token = workqueue_module._next_context_token()
        context = multiprocessing.get_context(start_method)
        with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
            outcome = pool.submit(
                workqueue_module._subtree_worker, token, blob, item, 10**6
            ).result()
        assert (outcome.status, outcome.steps, outcome.explored) == (
            reference.status,
            reference.steps,
            reference.explored,
        )


class TestCostGate:
    """Dispatch gating: parallel=True must never pay for a losing pool."""

    @staticmethod
    def _spy_pool(monkeypatch):
        calls = []

        def record(workers):
            calls.append(workers)
            raise RuntimeError("pool intentionally unavailable in this test")

        monkeypatch.setattr(workqueue_module, "shared_pool", record)
        return calls

    def test_single_cpu_blocks_dispatch(self, vocabulary, monkeypatch):
        monkeypatch.setattr(parallel_module, "available_cpus", lambda: 1)
        calls = self._spy_pool(monkeypatch)
        automaton = _multi_chain_automaton(vocabulary, empty_language=True)
        kwargs = dict(max_paths=2000, use_datalog_precheck=False)
        gated = automaton_emptiness(automaton, vocabulary, parallel=True, **kwargs)
        assert calls == []
        sequential = automaton_emptiness(
            automaton, vocabulary, parallel=False, **kwargs
        )
        assert _result_fields(gated) == _result_fields(sequential)

    def test_small_workload_blocks_dispatch_even_multicore(
        self, vocabulary, monkeypatch
    ):
        monkeypatch.setattr(parallel_module, "available_cpus", lambda: 8)
        calls = self._spy_pool(monkeypatch)
        automaton = _multi_chain_automaton(vocabulary, empty_language=True)
        # max_paths=3: estimated cost is far below the dispatch floor.
        kwargs = dict(max_paths=3, use_datalog_precheck=False)
        gated = automaton_emptiness(automaton, vocabulary, parallel=True, **kwargs)
        assert calls == []
        sequential = automaton_emptiness(
            automaton, vocabulary, parallel=False, **kwargs
        )
        assert _result_fields(gated) == _result_fields(sequential)

    def test_large_workload_dispatches_on_multicore(self, vocabulary, monkeypatch):
        monkeypatch.setattr(parallel_module, "available_cpus", lambda: 8)
        calls = self._spy_pool(monkeypatch)
        automaton = _multi_chain_automaton(vocabulary, empty_language=True)
        kwargs = dict(max_paths=2000, use_datalog_precheck=False)
        result = automaton_emptiness(automaton, vocabulary, parallel=True, **kwargs)
        # The gate opened (pool requested); the rigged pool failure then
        # fell back to the sequential loop without changing the result.
        assert calls
        sequential = automaton_emptiness(
            automaton, vocabulary, parallel=False, **kwargs
        )
        assert _result_fields(result) == _result_fields(sequential)

    def test_explicit_max_workers_overrides_gate(self, vocabulary, monkeypatch):
        monkeypatch.setattr(parallel_module, "available_cpus", lambda: 1)
        calls = self._spy_pool(monkeypatch)
        automaton = _multi_chain_automaton(vocabulary, empty_language=True)
        kwargs = dict(max_paths=3, use_datalog_precheck=False)
        automaton_emptiness(
            automaton, vocabulary, parallel=True, max_workers=2, **kwargs
        )
        assert calls  # explicit worker count forces dispatch

    def test_min_cost_env_override(self, vocabulary, monkeypatch):
        monkeypatch.setattr(parallel_module, "available_cpus", lambda: 8)
        monkeypatch.setenv(parallel_module.PARALLEL_MIN_COST_ENV, "1")
        calls = self._spy_pool(monkeypatch)
        automaton = _multi_chain_automaton(vocabulary, empty_language=True)
        kwargs = dict(max_paths=3, use_datalog_precheck=False)
        automaton_emptiness(automaton, vocabulary, parallel=True, **kwargs)
        assert calls  # the lowered floor lets the tiny workload through

    def test_cost_estimate_is_deterministic(self, vocabulary):
        automaton = _multi_chain_automaton(vocabulary, empty_language=True).trim()
        restrictions = chain_restrictions(automaton)
        kwargs = {"max_paths": 1234}
        costs = [
            parallel_module.estimate_chain_cost(r, kwargs) for r in restrictions
        ]
        assert costs == [
            parallel_module.estimate_chain_cost(r, kwargs) for r in restrictions
        ]
        assert all(cost > 0 for cost in costs)


class TestSubtreeEnvParsing:
    """``REPRO_PARALLEL_SUBTREES`` / knob env parsing."""

    @pytest.mark.parametrize("value", ["0", "false", "off", "", " 0 "])
    def test_disabling_values(self, monkeypatch, value):
        monkeypatch.setenv(parallel_module.PARALLEL_SUBTREES_ENV, value)
        assert parallel_module.subtree_parallel_enabled() is False

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_enabling_values(self, monkeypatch, value):
        monkeypatch.setenv(parallel_module.PARALLEL_SUBTREES_ENV, value)
        assert parallel_module.subtree_parallel_enabled() is True

    def test_unset_disables(self, monkeypatch):
        monkeypatch.delenv(parallel_module.PARALLEL_SUBTREES_ENV, raising=False)
        assert parallel_module.subtree_parallel_enabled() is False

    def test_split_budget_env(self, monkeypatch):
        monkeypatch.delenv(workqueue_module.SPLIT_BUDGET_ENV, raising=False)
        assert (
            workqueue_module.subtree_split_budget()
            == workqueue_module.DEFAULT_SPLIT_BUDGET
        )
        monkeypatch.setenv(workqueue_module.SPLIT_BUDGET_ENV, "123")
        assert workqueue_module.subtree_split_budget() == 123
        monkeypatch.setenv(workqueue_module.SPLIT_BUDGET_ENV, "not-a-number")
        assert (
            workqueue_module.subtree_split_budget()
            == workqueue_module.DEFAULT_SPLIT_BUDGET
        )

    def test_min_cost_env(self, monkeypatch):
        monkeypatch.delenv(parallel_module.PARALLEL_MIN_COST_ENV, raising=False)
        assert (
            parallel_module.min_dispatch_cost()
            == parallel_module.DEFAULT_MIN_DISPATCH_COST
        )
        monkeypatch.setenv(parallel_module.PARALLEL_MIN_COST_ENV, "42")
        assert parallel_module.min_dispatch_cost() == 42
        monkeypatch.setenv(parallel_module.PARALLEL_MIN_COST_ENV, "-5")
        assert (
            parallel_module.min_dispatch_cost()
            == parallel_module.DEFAULT_MIN_DISPATCH_COST
        )

    def test_subtree_env_toggle_engages_decomposition(self, vocabulary, monkeypatch):
        monkeypatch.setenv(parallel_module.PARALLEL_SUBTREES_ENV, "1")
        automaton = _multi_chain_automaton(vocabulary, empty_language=True)
        kwargs = dict(max_paths=500, use_datalog_precheck=False, memoize=False)
        via_env = automaton_emptiness(automaton, vocabulary, parallel=False, **kwargs)
        monkeypatch.delenv(parallel_module.PARALLEL_SUBTREES_ENV)
        explicit = automaton_emptiness(
            automaton, vocabulary, parallel=False, subtree_parallel=True, **kwargs
        )
        sequential = automaton_emptiness(
            automaton, vocabulary, parallel=False, **kwargs
        )
        assert _result_fields(via_env) == _result_fields(explicit)
        assert _result_fields(via_env) == _result_fields(sequential)
        assert (via_env.stats or {}).get("subtree_items", 0) > 0
