"""Property-based tests (hypothesis) on core data structures and invariants."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.access.methods import Access, AccessSchema
from repro.access.path import AccessPath, PathStep, conf, configurations, is_grounded
from repro.core.sat_zeroary import abstraction_agrees
from repro.core.semantics import path_satisfies
from repro.core.transition import path_structures
from repro.core.vocabulary import AccessVocabulary
from repro.core import properties
from repro.ltl.sat import desugar, find_satisfying_word, is_satisfiable
from repro.ltl.semantics import word_satisfies
from repro.ltl import syntax as ltl
from repro.queries.atoms import Atom
from repro.queries.containment import cq_contained_in, ucq_contained_in
from repro.queries.cq import ConjunctiveQuery
from repro.queries.evaluation import evaluate_cq, holds
from repro.queries.homomorphism import canonical_instance
from repro.queries.terms import Constant, Variable
from repro.queries.ucq import UnionOfConjunctiveQueries, as_ucq
from repro.relational.instance import Instance
from repro.relational.schema import Relation, Schema
from repro.workloads.directory import directory_access_schema, join_query

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
_VALUES = st.sampled_from(["a", "b", "c", "d"])
_SCHEMA = Schema([Relation("R", 2), Relation("S", 1)])


@st.composite
def instances(draw):
    instance = Instance(_SCHEMA)
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        instance.add("R", (draw(_VALUES), draw(_VALUES)))
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        instance.add("S", (draw(_VALUES),))
    return instance


@st.composite
def conjunctive_queries(draw, max_atoms=3, allow_constants=True):
    variables = [Variable(f"x{i}") for i in range(3)]
    atoms = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_atoms))):
        relation = draw(st.sampled_from(["R", "S"]))
        arity = _SCHEMA.arity(relation)
        terms = []
        for _ in range(arity):
            if allow_constants and draw(st.booleans()) and draw(st.booleans()):
                terms.append(Constant(draw(_VALUES)))
            else:
                terms.append(draw(st.sampled_from(variables)))
        atoms.append(Atom(relation, tuple(terms)))
    body_vars = sorted(
        {t for a in atoms for t in a.variables()}, key=lambda v: v.name
    )
    head_count = draw(st.integers(min_value=0, max_value=min(1, len(body_vars))))
    head = tuple(body_vars[:head_count])
    return ConjunctiveQuery(atoms=tuple(atoms), head=head)


@st.composite
def ltl_formulas(draw, depth=3):
    if depth == 0:
        return ltl.Prop(draw(st.sampled_from(["p", "q", "r"])))
    kind = draw(
        st.sampled_from(["prop", "not", "and", "or", "next", "until", "F", "G"])
    )
    if kind == "prop":
        return ltl.Prop(draw(st.sampled_from(["p", "q", "r"])))
    if kind == "not":
        return ltl.Not(draw(ltl_formulas(depth=depth - 1)))
    if kind == "next":
        return ltl.Next(draw(ltl_formulas(depth=depth - 1)))
    if kind == "F":
        return ltl.Eventually(draw(ltl_formulas(depth=depth - 1)))
    if kind == "G":
        return ltl.Globally(draw(ltl_formulas(depth=depth - 1)))
    left = draw(ltl_formulas(depth=depth - 1))
    right = draw(ltl_formulas(depth=depth - 1))
    if kind == "and":
        return ltl.And(left, right)
    if kind == "or":
        return ltl.Or(left, right)
    return ltl.Until(left, right)


@st.composite
def ltl_words(draw):
    length = draw(st.integers(min_value=1, max_value=5))
    return [
        frozenset(draw(st.sets(st.sampled_from(["p", "q", "r"]), max_size=3)))
        for _ in range(length)
    ]


@st.composite
def directory_paths(draw):
    schema = directory_access_schema()
    names = ["Smith", "Jones"]
    streets = ["Parks Rd", "Banbury Rd"]
    postcodes = ["OX13QD", "OX26NN"]
    steps = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        if draw(st.booleans()):
            name = draw(st.sampled_from(names))
            access = schema.access("AcM1", (name,))
            tuples = []
            if draw(st.booleans()):
                tuples.append(
                    (name, draw(st.sampled_from(postcodes)), draw(st.sampled_from(streets)), 1)
                )
            steps.append(PathStep(access, frozenset(tuples)))
        else:
            street = draw(st.sampled_from(streets))
            postcode = draw(st.sampled_from(postcodes))
            access = schema.access("AcM2", (street, postcode))
            tuples = []
            if draw(st.booleans()):
                tuples.append((street, postcode, draw(st.sampled_from(names)), 2))
            steps.append(PathStep(access, frozenset(tuples)))
    return schema, AccessPath(tuple(steps))


# ----------------------------------------------------------------------
# Query-level invariants
# ----------------------------------------------------------------------
class TestQueryInvariants:
    @SETTINGS
    @given(query=conjunctive_queries(), instance=instances())
    def test_evaluation_monotone_under_fact_addition(self, query, instance):
        bigger = instance.copy()
        bigger.add("R", ("a", "a"))
        bigger.add("S", ("a",))
        assert evaluate_cq(query, instance) <= evaluate_cq(query, bigger)

    @SETTINGS
    @given(query=conjunctive_queries(allow_constants=False))
    def test_canonical_instance_satisfies_query(self, query):
        instance, _ = canonical_instance(query)
        assert holds(query.boolean_version(), instance)

    @SETTINGS
    @given(query=conjunctive_queries())
    def test_containment_is_reflexive(self, query):
        assert cq_contained_in(query, query)

    @SETTINGS
    @given(query=conjunctive_queries(allow_constants=False), instance=instances())
    def test_containment_implies_answer_inclusion(self, query, instance):
        # Dropping an atom gives a (weakly) more general query.
        if len(query.atoms) < 2:
            return
        head_vars = set(query.head)
        remaining = query.atoms[:-1]
        remaining_vars = set()
        for atom in remaining:
            remaining_vars |= atom.variables()
        if not head_vars <= remaining_vars:
            return
        weaker = ConjunctiveQuery(atoms=remaining, head=query.head)
        assert cq_contained_in(query, weaker)
        assert evaluate_cq(query, instance) <= evaluate_cq(weaker, instance)

    @SETTINGS
    @given(
        q1=conjunctive_queries(allow_constants=False),
        q2=conjunctive_queries(allow_constants=False),
        instance=instances(),
    )
    def test_containment_verdicts_sound_on_random_instances(self, q1, q2, instance):
        if len(q1.head) != len(q2.head):
            return
        if ucq_contained_in(q1, q2):
            assert evaluate_cq(q1, instance) <= evaluate_cq(q2, instance)

    @SETTINGS
    @given(
        q1=conjunctive_queries(allow_constants=False),
        q2=conjunctive_queries(allow_constants=False),
        instance=instances(),
    )
    def test_ucq_union_answers(self, q1, q2, instance):
        if len(q1.head) != len(q2.head):
            return
        union = UnionOfConjunctiveQueries((q1, q2))
        expected = evaluate_cq(q1, instance) | evaluate_cq(q2, instance)
        from repro.queries.evaluation import evaluate_ucq

        assert evaluate_ucq(union, instance) == expected


# ----------------------------------------------------------------------
# LTL invariants
# ----------------------------------------------------------------------
class TestLTLInvariants:
    @SETTINGS
    @given(formula=ltl_formulas(), word=ltl_words())
    def test_desugar_preserves_semantics(self, formula, word):
        assert word_satisfies(word, formula) == word_satisfies(word, desugar(formula))

    @SETTINGS
    @given(formula=ltl_formulas(), word=ltl_words())
    def test_negation_is_complement(self, formula, word):
        assert word_satisfies(word, formula) != word_satisfies(word, ltl.Not(formula))

    @SETTINGS
    @given(formula=ltl_formulas(depth=2))
    def test_sat_witness_actually_satisfies(self, formula):
        word = find_satisfying_word(formula)
        if word is not None:
            assert word_satisfies(word, formula)

    @SETTINGS
    @given(formula=ltl_formulas(depth=2), word=ltl_words())
    def test_models_imply_satisfiability(self, formula, word):
        if word_satisfies(word, formula):
            assert is_satisfiable(formula)


# ----------------------------------------------------------------------
# Access-path and AccLTL invariants
# ----------------------------------------------------------------------
class TestPathInvariants:
    @SETTINGS
    @given(data=directory_paths())
    def test_configurations_grow_monotonically(self, data):
        schema, path = data
        configs = configurations(path, schema.empty_instance())
        for earlier, later in zip(configs, configs[1:]):
            assert earlier.is_subinstance_of(later)

    @SETTINGS
    @given(data=directory_paths())
    def test_conf_equals_last_configuration(self, data):
        schema, path = data
        initial = schema.empty_instance()
        assert conf(path, initial) == configurations(path, initial)[-1]

    @SETTINGS
    @given(data=directory_paths())
    def test_pre_of_next_transition_is_post_of_previous(self, data):
        schema, path = data
        vocabulary = AccessVocabulary.of(schema)
        structures = path_structures(vocabulary, path)
        for earlier, later in zip(structures, structures[1:]):
            for relation in schema.schema:
                assert earlier.structure.tuples(
                    relation.name + "__post"
                ) == later.structure.tuples(relation.name + "__pre")

    @SETTINGS
    @given(data=directory_paths())
    def test_grounded_paths_never_guess(self, data):
        schema, path = data
        initial = schema.empty_instance()
        if is_grounded(path, initial):
            known = set()
            for step in path:
                assert set(step.access.binding) <= known or not step.access.binding
                known |= set(step.access.binding)
                for tup in step.response:
                    known |= set(tup)

    @SETTINGS
    @given(data=directory_paths())
    def test_positive_pre_queries_are_monotone_along_paths(self, data):
        schema, path = data
        vocabulary = AccessVocabulary.of(schema)
        sentence = properties.relation_nonempty_pre(vocabulary, "Mobile")
        structures = path_structures(vocabulary, path)
        from repro.core.semantics import satisfies_at

        truth = [satisfies_at(structures, i, sentence) for i in range(len(structures))]
        assert truth == sorted(truth)

    @SETTINGS
    @given(data=directory_paths())
    def test_ltl_abstraction_agrees_with_accltl_semantics(self, data):
        schema, path = data
        vocabulary = AccessVocabulary.of(schema)
        formula = properties.ltr_formula_zeroary(vocabulary, "AcM1", join_query())
        assert abstraction_agrees(vocabulary, formula, path)

    @SETTINGS
    @given(data=directory_paths())
    def test_access_order_formula_matches_direct_check(self, data):
        schema, path = data
        vocabulary = AccessVocabulary.of(schema)
        formula = properties.access_order_formula(vocabulary, "AcM2", "AcM1")
        methods = [step.method.name for step in path]
        if "AcM1" in methods:
            first_mobile = methods.index("AcM1")
            direct = "AcM2" in methods[:first_mobile]
        else:
            direct = True
        assert path_satisfies(vocabulary, path, formula) == direct
