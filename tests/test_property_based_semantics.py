"""Property-based tests for semantic invariants of AccLTL and A-automata.

These complement ``test_property_based.py`` with invariants that come
straight from the paper's discussion:

* temporal-operator dualities and the until/eventually definitions
  (Definition 2.1);
* monotonicity of positive sentences along a path — "as a path progresses
  these queries can only move from false to true as more tuples are exposed
  by accesses" (the remark after Theorem 3.1);
* algebraic laws of the A-automata closure operations on sampled paths;
* agreement of the Section 6 translation (0-ary → AccLTL+) on random
  marker formulas.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access.path import AccessPath, conf
from repro.automata.operations import (
    intersection_automaton,
    length_modulo_automaton,
    method_sequence_automaton,
    union_automaton,
)
from repro.automata.run import accepts_path
from repro.core.formulas import (
    AccEventually,
    AccGlobally,
    AccNot,
    AccUntil,
    AccTrue,
    lnot,
)
from repro.core.inclusions import zeroary_to_plus
from repro.core.properties import (
    relation_nonempty_post,
    relation_nonempty_pre,
    zeroary_binding_atom,
)
from repro.core.semantics import path_satisfies, satisfies_at
from repro.core.transition import path_structures
from repro.core.vocabulary import AccessVocabulary
from repro.queries.evaluation import holds
from repro.workloads.directory import (
    directory_access_schema,
    directory_hidden_instance,
    directory_vocabulary,
)
from repro.workloads.generators import WorkloadGenerator


def _random_path(seed: int, length: int) -> AccessPath:
    schema = directory_access_schema()
    hidden = directory_hidden_instance("small")
    return WorkloadGenerator(seed=seed).access_path(schema, hidden, length=length)


VOCAB = directory_vocabulary()

path_strategy = st.builds(
    _random_path,
    seed=st.integers(min_value=0, max_value=5_000),
    length=st.integers(min_value=1, max_value=5),
)

atomic_formulas = st.sampled_from(
    [
        relation_nonempty_pre(VOCAB, "Mobile"),
        relation_nonempty_post(VOCAB, "Mobile"),
        relation_nonempty_pre(VOCAB, "Address"),
        relation_nonempty_post(VOCAB, "Address"),
        zeroary_binding_atom("AcM1"),
        zeroary_binding_atom("AcM2"),
        AccTrue(),
    ]
)


# ----------------------------------------------------------------------
# Temporal-operator laws (Definition 2.1)
# ----------------------------------------------------------------------
class TestTemporalLaws:
    @given(path=path_strategy, phi=atomic_formulas)
    @settings(max_examples=40, deadline=None)
    def test_eventually_is_dual_of_globally(self, path, phi):
        eventually = path_satisfies(VOCAB, path, AccEventually(phi))
        not_globally_not = not path_satisfies(VOCAB, path, AccGlobally(AccNot(phi)))
        assert eventually == not_globally_not

    @given(path=path_strategy, phi=atomic_formulas)
    @settings(max_examples=40, deadline=None)
    def test_eventually_equals_true_until(self, path, phi):
        assert path_satisfies(VOCAB, path, AccEventually(phi)) == path_satisfies(
            VOCAB, path, AccUntil(AccTrue(), phi)
        )

    @given(path=path_strategy, phi=atomic_formulas)
    @settings(max_examples=40, deadline=None)
    def test_double_negation(self, path, phi):
        assert path_satisfies(VOCAB, path, phi) == path_satisfies(
            VOCAB, path, lnot(lnot(phi))
        )

    @given(path=path_strategy, phi=atomic_formulas)
    @settings(max_examples=40, deadline=None)
    def test_globally_implies_first_position(self, path, phi):
        if path_satisfies(VOCAB, path, AccGlobally(phi)):
            assert path_satisfies(VOCAB, path, phi)

    @given(path=path_strategy, phi=atomic_formulas)
    @settings(max_examples=40, deadline=None)
    def test_until_right_operand_implies_until(self, path, phi):
        # If ψ holds now, then φ U ψ holds for any φ.
        if path_satisfies(VOCAB, path, phi):
            assert path_satisfies(
                VOCAB, path, AccUntil(relation_nonempty_pre(VOCAB, "Mobile"), phi)
            )


# ----------------------------------------------------------------------
# Monotonicity of positive sentences (remark after Theorem 3.1)
# ----------------------------------------------------------------------
class TestPositiveMonotonicity:
    @given(path=path_strategy)
    @settings(max_examples=40, deadline=None)
    def test_pre_sentences_move_false_to_true_only(self, path):
        """A positive pre-sentence never flips back from true to false."""
        schema = directory_access_schema()
        structures = path_structures(VOCAB, path, schema.empty_instance())
        for sentence in (
            relation_nonempty_pre(VOCAB, "Mobile").sentence,
            relation_nonempty_pre(VOCAB, "Address").sentence,
        ):
            seen_true = False
            for structure in structures:
                value = holds(sentence.query, structure.structure)
                if seen_true:
                    assert value, "positive pre-sentence flipped back to false"
                seen_true = seen_true or value

    @given(path=path_strategy)
    @settings(max_examples=40, deadline=None)
    def test_configurations_grow_monotonically(self, path):
        schema = directory_access_schema()
        previous = schema.empty_instance()
        for index in range(1, len(path) + 1):
            current = conf(path.prefix(index), schema.empty_instance())
            assert previous.is_subinstance_of(current)
            previous = current


# ----------------------------------------------------------------------
# A-automata operation laws on sampled paths
# ----------------------------------------------------------------------
class TestAutomataLaws:
    @given(path=path_strategy, modulus=st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_union_is_commutative_on_paths(self, path, modulus):
        a = length_modulo_automaton(modulus, 0)
        b = method_sequence_automaton(VOCAB, ["AcM1"])
        assert accepts_path(union_automaton(a, b), VOCAB, path) == accepts_path(
            union_automaton(b, a), VOCAB, path
        )

    @given(path=path_strategy, modulus=st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_intersection_refines_both_operands(self, path, modulus):
        a = length_modulo_automaton(modulus, 0)
        b = method_sequence_automaton(VOCAB, ["AcM1"])
        if accepts_path(intersection_automaton(a, b), VOCAB, path):
            assert accepts_path(a, VOCAB, path)
            assert accepts_path(b, VOCAB, path)

    @given(path=path_strategy)
    @settings(max_examples=30, deadline=None)
    def test_length_partition(self, path):
        """Every non-empty path has even or odd length, never both."""
        even = accepts_path(length_modulo_automaton(2, 0), VOCAB, path)
        odd = accepts_path(length_modulo_automaton(2, 1), VOCAB, path)
        assert even != odd


# ----------------------------------------------------------------------
# The Section 6 translation on random marker formulas
# ----------------------------------------------------------------------
class TestTranslationAgreement:
    @given(
        path=path_strategy,
        method=st.sampled_from(["AcM1", "AcM2"]),
        negate=st.booleans(),
        wrap=st.sampled_from(["none", "F", "G"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_zeroary_to_plus_agrees_on_random_marker_formulas(
        self, path, method, negate, wrap
    ):
        formula = zeroary_binding_atom(method)
        if negate:
            formula = lnot(formula)
        if wrap == "F":
            formula = AccEventually(formula)
        elif wrap == "G":
            formula = AccGlobally(formula)
        translated = zeroary_to_plus(formula, VOCAB)
        assert path_satisfies(VOCAB, path, formula) == path_satisfies(
            VOCAB, path, translated
        )
