"""Tests for terms, atoms and conjunctive queries."""

import pytest

from repro.queries.atoms import Atom, Equality, Inequality, atom, collect_variables
from repro.queries.cq import ConjunctiveQuery, QueryError, cq
from repro.queries.terms import Constant, Variable, const, is_constant, is_variable, var
from repro.queries.ucq import (
    UnionOfConjunctiveQueries,
    as_ucq,
    conjoin_all,
    true_query,
    ucq,
)


class TestTerms:
    def test_var_and_const_constructors(self):
        assert var("x") == Variable("x")
        assert const(3) == Constant(3)

    def test_predicates(self):
        assert is_variable(var("x"))
        assert not is_variable(const(1))
        assert is_constant(const(1))

    def test_str(self):
        assert str(var("x")) == "x"
        assert str(const("v")) == "'v'"


class TestAtoms:
    def test_atom_variables_and_constants(self):
        a = atom("R", var("x"), const(1), var("y"))
        assert a.variables() == frozenset({var("x"), var("y")})
        assert a.constants() == frozenset({const(1)})
        assert a.arity == 3

    def test_substitute(self):
        a = atom("R", var("x"), const(1))
        assert a.substitute({var("x"): "v"}) == ("v", 1)

    def test_rename(self):
        a = atom("R", var("x"), var("y"))
        renamed = a.rename({var("x"): var("z")})
        assert renamed.terms == (var("z"), var("y"))

    def test_equality_satisfaction(self):
        eq = Equality(var("x"), const(1))
        assert eq.satisfied_by({var("x"): 1})
        assert not eq.satisfied_by({var("x"): 2})

    def test_inequality_satisfaction(self):
        ineq = Inequality(var("x"), var("y"))
        assert ineq.satisfied_by({var("x"): 1, var("y"): 2})
        assert not ineq.satisfied_by({var("x"): 1, var("y"): 1})

    def test_collect_variables(self):
        items = [atom("R", var("x")), Equality(var("y"), const(1))]
        assert collect_variables(items) == frozenset({var("x"), var("y")})


class TestConjunctiveQuery:
    def test_boolean_query(self):
        query = cq([atom("R", var("x"), var("y"))])
        assert query.is_boolean
        assert query.body_variables() == frozenset({var("x"), var("y")})

    def test_head_variable_must_occur_in_body(self):
        with pytest.raises(QueryError):
            cq([atom("R", var("x"), var("y"))], head=[var("z")])

    def test_relations_and_constants(self):
        query = cq([atom("R", var("x"), const("a")), atom("S", var("x"))])
        assert query.relations() == frozenset({"R", "S"})
        assert query.constants() == frozenset({const("a")})

    def test_rename_relations(self):
        query = cq([atom("R", var("x"), var("y"))])
        renamed = query.rename_relations({"R": "R_pre"})
        assert renamed.relations() == frozenset({"R_pre"})

    def test_rename_variables(self):
        query = cq([atom("R", var("x"), var("y"))], head=[var("x")])
        renamed = query.rename_variables({var("x"): var("z")})
        assert renamed.head == (var("z"),)

    def test_rename_head_to_constant_rejected(self):
        query = cq([atom("R", var("x"), var("y"))], head=[var("x")])
        with pytest.raises(QueryError):
            query.rename_variables({var("x"): const(1)})

    def test_freshen_is_disjoint(self):
        query = cq([atom("R", var("x"), var("y"))], head=[var("x")])
        fresh = query.freshen("_1")
        assert not (query.variables() & fresh.variables())

    def test_boolean_version(self):
        query = cq([atom("R", var("x"), var("y"))], head=[var("x")])
        assert query.boolean_version().is_boolean

    def test_conjoin(self):
        q1 = cq([atom("R", var("x"), var("y"))], head=[var("x")])
        q2 = cq([atom("S", var("z"))], head=[var("z")])
        joined = q1.conjoin(q2)
        assert joined.relations() == frozenset({"R", "S"})
        assert joined.head == (var("x"), var("z"))

    def test_size_and_inequality_flags(self):
        query = cq(
            [atom("R", var("x"), var("y"))],
            inequalities=[Inequality(var("x"), var("y"))],
        )
        assert query.size() == 2
        assert query.has_inequalities
        assert not query.without_inequalities().has_inequalities

    def test_str_contains_relation(self):
        assert "R" in str(cq([atom("R", var("x"), var("y"))]))


class TestUCQ:
    def test_ucq_requires_uniform_head_arity(self):
        q1 = cq([atom("R", var("x"), var("y"))], head=[var("x")])
        q2 = cq([atom("S", var("z"))])
        with pytest.raises(QueryError):
            ucq([q1, q2])

    def test_empty_ucq_rejected(self):
        with pytest.raises(QueryError):
            ucq([])

    def test_union_and_iteration(self):
        q1 = cq([atom("R", var("x"), var("y"))])
        q2 = cq([atom("S", var("z"))])
        union = ucq([q1]).union(ucq([q2]))
        assert len(union) == 2
        assert union.relations() == frozenset({"R", "S"})

    def test_conjoin_distributes(self):
        q1 = ucq([cq([atom("R", var("x"), var("y"))]), cq([atom("S", var("z"))])])
        q2 = ucq([cq([atom("T", var("w"))])])
        product = q1.conjoin(q2)
        assert len(product) == 2
        for disjunct in product:
            assert "T" in disjunct.relations()

    def test_conjoin_requires_boolean(self):
        q1 = ucq([cq([atom("R", var("x"), var("y"))], head=[var("x")])])
        with pytest.raises(QueryError):
            q1.conjoin(q1)

    def test_as_ucq_coercion(self):
        q = cq([atom("R", var("x"), var("y"))])
        coerced = as_ucq(q)
        assert isinstance(coerced, UnionOfConjunctiveQueries)
        assert as_ucq(coerced) is coerced
        with pytest.raises(TypeError):
            as_ucq("not a query")

    def test_conjoin_all(self):
        q = ucq([cq([atom("R", var("x"), var("y"))])])
        assert len(conjoin_all([q, q, q])) == 1

    def test_true_query_is_boolean(self):
        assert true_query().is_boolean
