"""Tests for classical (U)CQ containment."""

import pytest

from repro.queries.containment import (
    cq_contained_in,
    equivalent,
    minimize_cq,
    ucq_contained_in,
)
from repro.queries.parser import parse_cq, parse_ucq


class TestCQContainment:
    def test_identity(self):
        q = parse_cq("Q(x) :- R(x, y)")
        assert cq_contained_in(q, q)

    def test_more_atoms_is_contained_in_fewer(self):
        q1 = parse_cq("Q(x) :- R(x, y), S(y, z)")
        q2 = parse_cq("Q(x) :- R(x, y)")
        assert cq_contained_in(q1, q2)
        assert not cq_contained_in(q2, q1)

    def test_constant_specialisation(self):
        specific = parse_cq('Q(x) :- R(x, "a")')
        general = parse_cq("Q(x) :- R(x, y)")
        assert cq_contained_in(specific, general)
        assert not cq_contained_in(general, specific)

    def test_different_constants_not_contained(self):
        q1 = parse_cq('Q(x) :- R(x, "a")')
        q2 = parse_cq('Q(x) :- R(x, "b")')
        assert not cq_contained_in(q1, q2)

    def test_head_arity_mismatch(self):
        q1 = parse_cq("Q(x) :- R(x, y)")
        q2 = parse_cq("Q(x, y) :- R(x, y)")
        assert not cq_contained_in(q1, q2)

    def test_repeated_variable_pattern(self):
        loop = parse_cq("Q(x) :- R(x, x)")
        edge = parse_cq("Q(x) :- R(x, y)")
        assert cq_contained_in(loop, edge)
        assert not cq_contained_in(edge, loop)

    def test_path_containment_classic(self):
        # A path of length 2 is contained in "there is an edge from x".
        path2 = parse_cq("Q(x) :- R(x, y), R(y, z)")
        edge = parse_cq("Q(x) :- R(x, y)")
        assert cq_contained_in(path2, edge)

    def test_boolean_containment(self):
        q1 = parse_cq("Q :- R(x, y), S(y, z)")
        q2 = parse_cq("Q :- S(u, v)")
        assert cq_contained_in(q1, q2)
        assert not cq_contained_in(q2, q1)

    def test_containee_inequality_makes_it_smaller(self):
        with_ineq = parse_cq("Q(x) :- R(x, y), x != y")
        without = parse_cq("Q(x) :- R(x, y)")
        assert cq_contained_in(with_ineq, without)

    def test_container_inequality_not_implied(self):
        without = parse_cq("Q(x) :- R(x, y)")
        with_ineq = parse_cq("Q(x) :- R(x, y), x != y")
        assert not cq_contained_in(without, with_ineq)


class TestUCQContainment:
    def test_disjunct_in_union(self):
        small = parse_ucq("Q(x) :- R(x, y)")
        big = parse_ucq("Q(x) :- R(x, y) ; Q(x) :- S(x, y)")
        assert ucq_contained_in(small, big)
        assert not ucq_contained_in(big, small)

    def test_union_both_sides(self):
        left = parse_ucq("Q(x) :- R(x, y), S(y, z) ; Q(x) :- S(x, x)")
        right = parse_ucq("Q(x) :- S(x, v) ; Q(x) :- R(x, y)")
        assert ucq_contained_in(left, right)

    def test_equivalence(self):
        q1 = parse_cq("Q(x) :- R(x, y), R(x, z)")
        q2 = parse_cq("Q(x) :- R(x, y)")
        assert equivalent(q1, q2)

    def test_non_equivalence(self):
        q1 = parse_cq("Q(x) :- R(x, y)")
        q2 = parse_cq("Q(x) :- S(x, y)")
        assert not equivalent(q1, q2)


class TestMinimization:
    def test_redundant_atom_removed(self):
        q = parse_cq("Q(x) :- R(x, y), R(x, z)")
        core = minimize_cq(q)
        assert len(core.atoms) == 1
        assert equivalent(core, q)

    def test_non_redundant_query_unchanged(self):
        q = parse_cq("Q(x) :- R(x, y), S(y, z)")
        assert len(minimize_cq(q).atoms) == 2

    def test_core_keeps_head_variables(self):
        q = parse_cq("Q(x, y) :- R(x, y), R(x, z)")
        core = minimize_cq(q)
        assert set(core.head) == set(q.head)

    def test_query_with_inequalities_left_alone(self):
        q = parse_cq("Q(x) :- R(x, y), R(x, z), y != z")
        assert minimize_cq(q) is q
