"""Tests for CQ/UCQ evaluation, homomorphisms and the parser."""

import pytest

from repro.queries.atoms import Atom, Inequality, atom
from repro.queries.cq import cq
from repro.queries.evaluation import answers, evaluate_cq, evaluate_ucq, holds
from repro.queries.homomorphism import (
    canonical_instance,
    find_all_homomorphisms,
    find_homomorphism,
    homomorphism_image,
)
from repro.queries.parser import ParseError, parse_cq, parse_ucq
from repro.queries.terms import Constant, Variable, const, var
from repro.queries.ucq import ucq


class TestEvaluation:
    def test_single_atom_answers(self, simple_instance):
        query = cq([atom("R", var("x"), var("y"))], head=[var("x"), var("y")])
        assert evaluate_cq(query, simple_instance) == frozenset(
            {("a", "b"), ("b", "c"), ("c", "d")}
        )

    def test_join(self, simple_instance):
        query = cq(
            [atom("R", var("x"), var("y")), atom("S", var("y"), var("z"))],
            head=[var("x"), var("z")],
        )
        assert evaluate_cq(query, simple_instance) == frozenset(
            {("a", "c"), ("c", "e")}
        )

    def test_constant_selection(self, simple_instance):
        query = cq([atom("R", const("a"), var("y"))], head=[var("y")])
        assert evaluate_cq(query, simple_instance) == frozenset({("b",)})

    def test_boolean_query_holds(self, simple_instance):
        query = cq([atom("T", var("x"))])
        assert holds(query, simple_instance)

    def test_boolean_query_fails(self, simple_instance):
        query = cq([atom("R", var("x"), var("x"))])
        assert not holds(query, simple_instance)

    def test_inequality_filtering(self, simple_instance):
        query = cq(
            [atom("R", var("x"), var("y")), atom("R", var("y"), var("z"))],
            head=[var("x"), var("z")],
            inequalities=[Inequality(var("x"), var("z"))],
        )
        assert evaluate_cq(query, simple_instance) == frozenset(
            {("a", "c"), ("b", "d")}
        )

    def test_repeated_variable(self, simple_instance):
        simple_instance.add("R", ("e", "e"))
        query = cq([atom("R", var("x"), var("x"))], head=[var("x")])
        assert evaluate_cq(query, simple_instance) == frozenset({("e",)})

    def test_unknown_relation_treated_as_empty(self, simple_instance):
        query = cq([atom("Unknown", var("x"))])
        assert not holds(query, simple_instance)

    def test_ucq_union_of_answers(self, simple_instance):
        query = ucq(
            [
                cq([atom("R", var("x"), const("b"))], head=[var("x")]),
                cq([atom("S", var("x"), const("e"))], head=[var("x")]),
            ]
        )
        assert evaluate_ucq(query, simple_instance) == frozenset({("a",), ("d",)})

    def test_answers_accepts_cq_and_ucq(self, simple_instance):
        query = cq([atom("T", var("x"))], head=[var("x")])
        assert answers(query, simple_instance) == frozenset({("a",)})


class TestHomomorphism:
    def test_find_homomorphism(self, simple_instance):
        query = cq([atom("R", var("x"), var("y")), atom("S", var("y"), var("z"))])
        hom = find_homomorphism(query, simple_instance)
        assert hom is not None
        assert hom[var("y")] in {"b", "d"}

    def test_no_homomorphism(self, simple_instance):
        query = cq([atom("S", var("x"), var("x"))])
        assert find_homomorphism(query, simple_instance) is None

    def test_all_homomorphisms_with_limit(self, simple_instance):
        query = cq([atom("R", var("x"), var("y"))])
        assert len(find_all_homomorphisms(query, simple_instance)) == 3
        assert len(find_all_homomorphisms(query, simple_instance, limit=2)) == 2

    def test_homomorphism_image(self):
        query = cq([atom("R", var("x"), const(1))])
        image = homomorphism_image(query, {var("x"): "v"})
        assert image == [("R", ("v", 1))]

    def test_canonical_instance(self):
        query = cq([atom("R", var("x"), var("y")), atom("S", var("y"), var("z"))])
        instance, assignment = canonical_instance(query)
        assert instance.size() == 2
        assert holds(query, instance)
        assert set(assignment) == query.variables()

    def test_canonical_instance_with_inconsistent_arity(self):
        query = cq([atom("R", var("x")), atom("R", var("x"), var("y"))])
        with pytest.raises(ValueError):
            canonical_instance(query)


class TestParser:
    def test_parse_simple_cq(self):
        query = parse_cq("Q(x) :- R(x, y), S(y, z)")
        assert query.head == (Variable("x"),)
        assert query.relations() == frozenset({"R", "S"})

    def test_parse_constants(self):
        query = parse_cq('Q(x) :- R(x, "Jones"), S(x, 42)')
        assert Constant("Jones") in query.constants()
        assert Constant(42) in query.constants()

    def test_parse_inequality_and_equality(self):
        query = parse_cq("Q(x) :- R(x, y), x != y, y = x")
        assert len(query.inequalities) == 1
        assert len(query.equalities) == 1

    def test_parse_boolean_query(self):
        query = parse_cq("Q :- R(x, y)")
        assert query.is_boolean

    def test_parse_relation_with_hash(self):
        query = parse_cq("Q(n) :- Mobile#(n, p, s, ph)")
        assert "Mobile#" in query.relations()

    def test_parse_ucq(self):
        query = parse_ucq("Q(x) :- R(x, y) ; Q(x) :- S(x, z)")
        assert len(query) == 2

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse_cq("Q(x) :- R(x, ")
        with pytest.raises(ParseError):
            parse_cq('Q("c") :- R(x, y)')
        with pytest.raises(ParseError):
            parse_ucq("   ;  ")

    def test_round_trip_evaluation(self, simple_instance):
        query = parse_cq("Q(x, z) :- R(x, y), S(y, z)")
        assert evaluate_cq(query, simple_instance) == frozenset(
            {("a", "c"), ("c", "e")}
        )
