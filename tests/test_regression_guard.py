"""Tests for the benchmark regression guard: comparison logic + CI wiring."""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    _REPO_ROOT / "benchmarks" / "check_regression.py",
)
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)


def _report(**medians):
    return {
        "results": {
            name: {"median_s": value, "min_s": value, "max_s": value}
            for name, value in medians.items()
        }
    }


class TestCompare:
    def test_flags_regressions_beyond_threshold(self):
        rows = check_regression.compare(
            _report(pipeline=1.0), _report(pipeline=1.3), threshold=0.25
        )
        assert rows[0]["status"] == "regression"
        rows = check_regression.compare(
            _report(pipeline=1.0), _report(pipeline=1.2), threshold=0.25
        )
        assert rows[0]["status"] == "ok"

    def test_flags_improvements(self):
        rows = check_regression.compare(
            _report(pipeline=1.0), _report(pipeline=0.5)
        )
        assert rows[0]["status"] == "improved"

    def test_noise_floor_suppresses_micro_rows(self):
        rows = check_regression.compare(
            _report(tiny=0.001), _report(tiny=0.004), noise_floor_s=0.005
        )
        assert rows[0]["status"] == "noise"

    def test_skipped_and_tagged_rows_never_fail(self):
        # The sql_store families tag rows with backend/facts and emit the
        # over-RAM in-memory twins as policy-skipped; neither may trip
        # the guard.
        baseline = {"results": {
            "sql_store_join_1m": {"median_s": 1.0, "min_s": 1.0,
                                  "backend": "sqlite", "facts": 1_000_000},
            "mem_store_join_1m": {"status": "skipped", "backend": "memory",
                                  "reason": "RAM policy"},
        }}
        current = {"results": {
            "sql_store_join_1m": {"median_s": 1.1, "min_s": 1.1,
                                  "backend": "sqlite", "facts": 1_000_000},
            "mem_store_join_1m": {"status": "skipped", "backend": "memory",
                                  "reason": "RAM policy"},
        }}
        rows = {
            row["name"]: row
            for row in check_regression.compare(baseline, current)
        }
        assert rows["sql_store_join_1m"]["status"] == "ok"
        assert rows["mem_store_join_1m"]["status"] == "skipped"
        assert "mem_store_join_1m" in check_regression.render(rows.values())

    def test_row_skipped_on_one_side_only_is_informational(self):
        baseline = {"results": {"row": {"median_s": 1.0, "min_s": 1.0}}}
        current = {"results": {"row": {"status": "skipped",
                                       "reason": "policy"}}}
        rows = check_regression.compare(baseline, current)
        assert rows[0]["status"] == "skipped"
        rows = check_regression.compare(current, baseline)
        assert rows[0]["status"] == "skipped"

    def test_new_and_removed_rows_never_fail(self):
        rows = check_regression.compare(
            _report(old_only=1.0), _report(new_only=1.0)
        )
        statuses = {row["name"]: row["status"] for row in rows}
        assert statuses == {"old_only": "removed", "new_only": "new"}

    def test_malformed_rows_are_incomparable_not_fatal(self):
        # Rows written by another benchmark version can miss fields or
        # carry junk; the guard must report, not crash.
        baseline = {"results": {"broken": {"median_s": 1.0, "min_s": 1.0}}}
        current = {"results": {"broken": {"note": "no timing fields"}}}
        rows = check_regression.compare(baseline, current)
        assert rows[0]["status"] == "incomparable"
        current = {"results": {"broken": {"median_s": "n/a", "min_s": None}}}
        rows = check_regression.compare(baseline, current)
        assert rows[0]["status"] == "incomparable"

    def test_new_row_without_median_does_not_crash(self):
        baseline = {"results": {}}
        current = {"results": {"fresh": {"note": "stats only"}}}
        rows = check_regression.compare(baseline, current)
        assert rows[0]["status"] == "new"
        assert rows[0]["current_s"] is None
        assert "fresh" in check_regression.render(rows)

    def test_calibration_normalises_machine_drift(self):
        # The machine got 40% slower (the frozen oracle row proves it);
        # a row that slowed down by the same factor is NOT a regression.
        baseline = _report(cq_naive=1.0, pipeline=5.0)
        current = _report(cq_naive=1.4, pipeline=7.0)
        rows = {
            row["name"]: row
            for row in check_regression.compare(baseline, current)
        }
        assert rows["cq_naive"]["status"] == "calibration"
        assert rows["pipeline"]["status"] == "ok"
        assert abs(rows["pipeline"]["ratio"] - 1.0) < 1e-6
        # A genuine slowdown on top of the drift still fails.
        current_bad = _report(cq_naive=1.4, pipeline=10.0)
        rows = {
            row["name"]: row
            for row in check_regression.compare(baseline, current_bad)
        }
        assert rows["pipeline"]["status"] == "regression"

    def test_render_includes_every_row(self):
        rows = check_regression.compare(
            _report(a=1.0, b=2.0), _report(a=1.0, b=2.0)
        )
        text = check_regression.render(rows)
        assert "a" in text and "b" in text and "ok" in text


@pytest.mark.regression_guard
def test_guard_smoke_run_against_committed_baseline(capsys):
    """The tier-1 wiring of ROADMAP's "Regression guard in CI" item.

    Runs the real benchmark suite in smoke mode and feeds it through
    ``check_regression.main`` against the committed
    ``BENCH_evaluation_smoke.json`` — a like-for-like (smoke vs smoke)
    comparison, so the guard genuinely **enforces**: a calibrated
    slowdown beyond the threshold on both estimators fails the tier-1
    suite.  Machine drift is normalised by the frozen ``cq_naive`` oracle
    row and sub-noise-floor rows are skipped; because smoke sizes make
    the calibration row itself only a few milliseconds (so its own noise
    leaks into every calibrated ratio), the smoke guard runs with a wider
    threshold (40%) and a higher floor (20 ms) than CI's full-mode
    comparison — still far below the multi-x effects it exists to catch
    (losing the compiled deltas is a 6x+ regression on
    ``datalog_fixedpoint_delta``).  The separate full-mode
    ``BENCH_evaluation.json`` remains the perf-trajectory record for CI's
    full runs at the default 25%.  Deselect with
    ``-m 'not regression_guard'`` when iterating locally.
    """
    bench_dir = str(_REPO_ROOT / "benchmarks")
    sys.path.insert(0, bench_dir)
    try:
        exit_code = check_regression.main(
            [
                "--baseline",
                str(_REPO_ROOT / "BENCH_evaluation_smoke.json"),
                "--run",
                "--smoke",
                "--threshold",
                "0.4",
                "--noise-floor-ms",
                "20",
            ]
        )
    finally:
        sys.path.remove(bench_dir)
    output = capsys.readouterr().out
    assert "datalog_fixedpoint_delta" in output
    assert "datalog_fixedpoint_posthoc" in output
    assert exit_code == 0, f"benchmark regression detected:\n{output}"


class TestMain:
    def test_rows_new_to_the_baseline_are_noted_not_fatal(self, tmp_path, capsys):
        """Benchmark growth must never break the guard (CI tolerance)."""
        import json

        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        baseline.write_text(json.dumps(_report(pipeline=1.0)))
        current.write_text(
            json.dumps(_report(pipeline=1.0, emptiness_subtree_par=0.5))
        )
        exit_code = check_regression.main(
            ["--baseline", str(baseline), "--current", str(current)]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "new row" in output
        assert "emptiness_subtree_par" in output

    def test_exit_codes(self, tmp_path, capsys):
        import json

        baseline = tmp_path / "baseline.json"
        good = tmp_path / "good.json"
        bad = tmp_path / "bad.json"
        baseline.write_text(json.dumps(_report(pipeline=1.0)))
        good.write_text(json.dumps(_report(pipeline=1.05)))
        bad.write_text(json.dumps(_report(pipeline=2.0)))
        assert (
            check_regression.main(
                ["--baseline", str(baseline), "--current", str(good)]
            )
            == 0
        )
        assert (
            check_regression.main(
                ["--baseline", str(baseline), "--current", str(bad)]
            )
            == 1
        )
        output = capsys.readouterr().out
        assert "FAIL" in output
