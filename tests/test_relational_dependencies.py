"""Tests for repro.relational.dependencies."""

import pytest

from repro.relational.dependencies import (
    ConstraintSet,
    DisjointnessConstraint,
    FunctionalDependency,
    InclusionDependency,
    chase_fds,
    closure_of_positions,
    fd_implies,
    implies_fd,
)
from repro.relational.instance import Instance
from repro.relational.schema import make_schema


@pytest.fixture
def schema():
    return make_schema({"R": 3, "S": 2})


class TestFunctionalDependency:
    def test_holds_in_satisfying_instance(self, schema):
        fd = FunctionalDependency("R", (0,), 1)
        instance = Instance(schema, {"R": [("a", "b", "c"), ("a", "b", "d")]})
        assert fd.holds_in(instance)

    def test_violation_detected(self, schema):
        fd = FunctionalDependency("R", (0,), 1)
        instance = Instance(schema, {"R": [("a", "b", "c"), ("a", "x", "d")]})
        assert not fd.holds_in(instance)
        assert len(fd.violating_pairs(instance)) == 1

    def test_lhs_normalised(self):
        fd = FunctionalDependency("R", (2, 0, 2), 1)
        assert fd.lhs == (0, 2)

    def test_str(self):
        assert "R" in str(FunctionalDependency("R", (0,), 1))


class TestInclusionDependency:
    def test_holds(self, schema):
        id_dep = InclusionDependency("R", (0,), "S", (1,))
        instance = Instance(schema, {"R": [("a", "b", "c")], "S": [("x", "a")]})
        assert id_dep.holds_in(instance)

    def test_violation(self, schema):
        id_dep = InclusionDependency("R", (0,), "S", (1,))
        instance = Instance(schema, {"R": [("a", "b", "c")], "S": [("x", "z")]})
        assert not id_dep.holds_in(instance)
        assert id_dep.missing_tuples(instance) == [("a", "b", "c")]

    def test_mismatched_positions_rejected(self):
        with pytest.raises(Exception):
            InclusionDependency("R", (0, 1), "S", (0,))


class TestDisjointness:
    def test_holds_and_violation(self, schema):
        constraint = DisjointnessConstraint("R", 0, "S", 0)
        ok = Instance(schema, {"R": [("a", "b", "c")], "S": [("x", "y")]})
        bad = Instance(schema, {"R": [("a", "b", "c")], "S": [("a", "y")]})
        assert constraint.holds_in(ok)
        assert not constraint.holds_in(bad)
        assert constraint.overlapping_values(bad) == frozenset({"a"})


class TestConstraintSet:
    def test_collects_by_kind(self, schema):
        constraints = ConstraintSet(
            [
                FunctionalDependency("R", (0,), 1),
                InclusionDependency("R", (0,), "S", (0,)),
                DisjointnessConstraint("R", 0, "S", 1),
            ]
        )
        assert len(constraints) == 3
        assert len(constraints.fds) == 1
        assert len(constraints.ids) == 1
        assert len(constraints.disjointness) == 1

    def test_rejects_unknown_kind(self):
        with pytest.raises(TypeError):
            ConstraintSet(["not-a-constraint"])

    def test_holds_in(self, schema):
        constraints = ConstraintSet([FunctionalDependency("R", (0,), 1)])
        good = Instance(schema, {"R": [("a", "b", "c")]})
        bad = Instance(schema, {"R": [("a", "b", "c"), ("a", "z", "c")]})
        assert constraints.holds_in(good)
        assert not constraints.holds_in(bad)
        assert constraints.violated_constraints(bad)


class TestFDReasoning:
    def test_closure(self):
        fds = [
            FunctionalDependency("R", (0,), 1),
            FunctionalDependency("R", (1,), 2),
        ]
        closure = closure_of_positions((0,), fds, "R")
        assert closure == frozenset({0, 1, 2})

    def test_fd_implies_transitivity(self):
        fds = [
            FunctionalDependency("R", (0,), 1),
            FunctionalDependency("R", (1,), 2),
        ]
        assert fd_implies(fds, FunctionalDependency("R", (0,), 2))
        assert not fd_implies(fds, FunctionalDependency("R", (2,), 0))

    def test_chase_fds_merges_nulls(self, schema):
        instance = Instance(schema, {"R": [("a", "b", "c"), ("a", "b", "c")]})
        result = chase_fds(instance, [FunctionalDependency("R", (0,), 1)])
        assert result is not None

    def test_chase_fds_conflict(self, schema):
        instance = Instance(schema, {"R": [("a", "b", "c"), ("a", "x", "c")]})
        assert chase_fds(instance, [FunctionalDependency("R", (0,), 1)]) is None


class TestImpliesFD:
    def test_fd_only_implication(self, schema):
        constraints = [
            FunctionalDependency("R", (0,), 1),
            FunctionalDependency("R", (1,), 2),
        ]
        assert implies_fd(schema, constraints, FunctionalDependency("R", (0,), 2)) is True

    def test_fd_only_non_implication(self, schema):
        constraints = [FunctionalDependency("R", (0,), 1)]
        assert (
            implies_fd(schema, constraints, FunctionalDependency("R", (0,), 2)) is False
        )

    def test_implication_with_inclusion_dependency(self, schema):
        # R[0] ⊆ S[0] and S: 0 -> 1 do not imply any FD on R's own columns
        # beyond trivialities.
        constraints = [
            InclusionDependency("R", (0,), "S", (0,)),
            FunctionalDependency("S", (0,), 1),
        ]
        verdict = implies_fd(schema, constraints, FunctionalDependency("R", (0,), 1))
        assert verdict is False

    def test_trivial_fd_implied(self, schema):
        verdict = implies_fd(schema, [], FunctionalDependency("R", (0, 1, 2), 0))
        # The canonical counterexample has both tuples sharing position 0.
        assert verdict is True
