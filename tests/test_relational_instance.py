"""Tests for repro.relational.instance."""

import pytest

from repro.relational.instance import Instance
from repro.relational.schema import SchemaError, make_schema


@pytest.fixture
def schema():
    return make_schema({"R": 2, "S": 1})


class TestInstanceBasics:
    def test_empty_instance(self, schema):
        instance = Instance(schema)
        assert instance.is_empty()
        assert instance.size() == 0
        assert len(instance) == 0

    def test_add_and_contains(self, schema):
        instance = Instance(schema)
        instance.add("R", ("a", "b"))
        assert instance.contains("R", ("a", "b"))
        assert ("R", ("a", "b")) in instance
        assert not instance.contains("R", ("b", "a"))

    def test_construct_with_facts(self, schema):
        instance = Instance(schema, {"R": [("a", "b")], "S": [("c",)]})
        assert instance.size() == 2

    def test_add_wrong_arity_rejected(self, schema):
        instance = Instance(schema)
        with pytest.raises(SchemaError):
            instance.add("R", ("a",))

    def test_add_unknown_relation_rejected(self, schema):
        instance = Instance(schema)
        with pytest.raises(SchemaError):
            instance.add("Missing", ("a",))

    def test_duplicate_add_is_idempotent(self, schema):
        instance = Instance(schema)
        instance.add("R", ("a", "b"))
        instance.add("R", ("a", "b"))
        assert instance.size() == 1

    def test_facts_iteration_sorted(self, schema):
        instance = Instance(schema, {"R": [("b", "c"), ("a", "b")]})
        facts = list(instance.facts())
        assert ("R", ("a", "b")) in facts
        assert len(facts) == 2

    def test_active_domain(self, schema):
        instance = Instance(schema, {"R": [("a", "b")], "S": [("c",)]})
        assert instance.active_domain() == frozenset({"a", "b", "c"})


class TestInstanceAlgebra:
    def test_copy_is_independent(self, schema):
        instance = Instance(schema, {"R": [("a", "b")]})
        clone = instance.copy()
        clone.add("R", ("x", "y"))
        assert instance.size() == 1
        assert clone.size() == 2

    def test_union(self, schema):
        left = Instance(schema, {"R": [("a", "b")]})
        right = Instance(schema, {"R": [("c", "d")], "S": [("e",)]})
        union = left.union(right)
        assert union.size() == 3
        assert left.size() == 1

    def test_union_facts(self, schema):
        instance = Instance(schema)
        extended = instance.union_facts([("R", ("a", "b")), ("S", ("c",))])
        assert extended.size() == 2
        assert instance.size() == 0

    def test_subinstance(self, schema):
        small = Instance(schema, {"R": [("a", "b")]})
        big = Instance(schema, {"R": [("a", "b"), ("c", "d")]})
        assert small.is_subinstance_of(big)
        assert not big.is_subinstance_of(small)

    def test_intersect(self, schema):
        left = Instance(schema, {"R": [("a", "b"), ("c", "d")]})
        right = Instance(schema, {"R": [("a", "b")]})
        assert left.intersect(right).size() == 1

    def test_restrict_to_values(self, schema):
        instance = Instance(schema, {"R": [("a", "b"), ("c", "d")], "S": [("a",)]})
        restricted = instance.restrict_to_values({"a", "b"})
        assert restricted.contains("R", ("a", "b"))
        assert not restricted.contains("R", ("c", "d"))
        assert restricted.contains("S", ("a",))


class TestFreezing:
    def test_freeze_round_trip(self, schema):
        instance = Instance(schema, {"R": [("a", "b")], "S": [("c",)]})
        frozen = instance.freeze()
        rebuilt = Instance.from_frozen(schema, frozen)
        assert rebuilt == instance

    def test_equality_and_hash(self, schema):
        one = Instance(schema, {"R": [("a", "b")]})
        two = Instance(schema, {"R": [("a", "b")]})
        assert one == two
        assert hash(one) == hash(two)
        two.add("S", ("z",))
        assert one != two

    def test_str_contains_facts(self, schema):
        instance = Instance(schema, {"R": [("a", "b")]})
        assert "R" in str(instance)
