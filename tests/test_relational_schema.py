"""Tests for repro.relational.schema."""

import pytest

from repro.relational.schema import Relation, Schema, SchemaError, make_schema
from repro.relational.types import INT, STRING


class TestRelation:
    def test_default_types_are_any(self):
        relation = Relation("R", 3)
        assert len(relation.types) == 3
        assert relation.validate_tuple(("a", 1, None)) == ("a", 1, None)

    def test_typed_relation_validates(self):
        relation = Relation("Person", 2, (STRING, INT))
        assert relation.validate_tuple(("alice", 30)) == ("alice", 30)

    def test_typed_relation_rejects_wrong_type(self):
        relation = Relation("Person", 2, (STRING, INT))
        with pytest.raises(SchemaError):
            relation.validate_tuple(("alice", "thirty"))

    def test_wrong_arity_tuple_rejected(self):
        relation = Relation("R", 2)
        with pytest.raises(SchemaError):
            relation.validate_tuple(("only-one",))

    def test_negative_arity_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", -1)

    def test_type_count_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", 2, (INT,))

    def test_positions(self):
        assert list(Relation("R", 3).positions) == [0, 1, 2]

    def test_zero_arity_relation(self):
        relation = Relation("Flag", 0)
        assert relation.validate_tuple(()) == ()

    def test_str(self):
        assert str(Relation("R", 2)) == "R/2"


class TestSchema:
    def test_make_schema(self):
        schema = make_schema({"R": 2, "S": 3})
        assert schema.names() == ("R", "S")
        assert schema.arity("S") == 3

    def test_duplicate_names_rejected(self):
        schema = Schema([Relation("R", 2)])
        with pytest.raises(SchemaError):
            schema.add(Relation("R", 3))

    def test_unknown_relation_lookup(self):
        schema = make_schema({"R": 2})
        with pytest.raises(SchemaError):
            schema.relation("Missing")

    def test_contains_and_len(self):
        schema = make_schema({"R": 2, "S": 1})
        assert "R" in schema
        assert "T" not in schema
        assert len(schema) == 2

    def test_restrict(self):
        schema = make_schema({"R": 2, "S": 1, "T": 3})
        restricted = schema.restrict(["R", "T"])
        assert restricted.names() == ("R", "T")

    def test_extend_creates_new_schema(self):
        schema = make_schema({"R": 2})
        extended = schema.extend([Relation("S", 1)])
        assert "S" in extended
        assert "S" not in schema

    def test_max_arity(self):
        assert make_schema({"R": 2, "S": 5}).max_arity() == 5
        assert Schema().max_arity() == 0

    def test_add_relation_helper(self):
        schema = Schema()
        schema.add_relation("R", 2, (STRING, INT))
        assert schema.relation("R").types == (STRING, INT)

    def test_equality(self):
        assert make_schema({"R": 2}) == make_schema({"R": 2})
        assert make_schema({"R": 2}) != make_schema({"R": 3})
