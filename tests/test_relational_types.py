"""Tests for repro.relational.types."""

import pytest

from repro.relational.types import (
    ANY,
    BOOL,
    INT,
    STRING,
    DataType,
    Domain,
    EnumDomain,
    enum_domain,
    is_placeholder,
)


class TestDataTypes:
    def test_int_contains_integers(self):
        assert INT.contains(5)
        assert INT.contains(-3)

    def test_int_rejects_strings_and_bools(self):
        assert not INT.contains("5")
        assert not INT.contains(True)

    def test_bool_contains_booleans_only(self):
        assert BOOL.contains(True)
        assert BOOL.contains(False)
        assert not BOOL.contains(1)
        assert not BOOL.contains("true")

    def test_string_contains_strings(self):
        assert STRING.contains("abc")
        assert not STRING.contains(3)

    def test_any_contains_everything(self):
        assert ANY.contains(3)
        assert ANY.contains("x")
        assert ANY.contains((1, 2))

    def test_placeholders_belong_to_every_type(self):
        assert INT.contains("~null1")
        assert BOOL.contains("~x")
        assert STRING.contains("~frozen_value")

    def test_is_placeholder(self):
        assert is_placeholder("~abc")
        assert not is_placeholder("abc")
        assert not is_placeholder(7)

    def test_str_of_type_is_name(self):
        assert str(DataType("custom")) == "custom"


class TestDomains:
    def test_unbounded_domain_is_not_finite(self):
        assert not Domain(INT).is_finite

    def test_unbounded_domain_membership_follows_type(self):
        domain = Domain(INT)
        assert domain.contains(4)
        assert not domain.contains("x")

    def test_unbounded_int_sample_distinct(self):
        sample = Domain(INT).sample(5)
        assert len(set(sample)) == 5

    def test_unbounded_string_sample_distinct(self):
        sample = Domain(STRING).sample(4)
        assert len(set(sample)) == 4
        assert all(isinstance(value, str) for value in sample)

    def test_bool_sample_capped_at_two(self):
        assert list(Domain(BOOL).sample(5)) == [False, True]

    def test_enum_domain_is_finite(self):
        domain = enum_domain(["a", "b", "c"])
        assert domain.is_finite
        assert len(domain) == 3
        assert list(domain) == ["a", "b", "c"]

    def test_enum_domain_membership(self):
        domain = enum_domain([1, 2])
        assert domain.contains(1)
        assert not domain.contains(3)

    def test_enum_domain_sample_prefix(self):
        domain = enum_domain(["x", "y", "z"])
        assert list(domain.sample(2)) == ["x", "y"]
