"""Repository hygiene checks: tracked artifacts and silent-swallow lint.

These are tier-1 guards over the repository itself rather than the
library's behaviour:

* compiled Python artifacts (``__pycache__``/``*.pyc``) must never be
  git-tracked — they are interpreter- and machine-specific and once
  committed they shadow honest diffs;
* no ``except Exception: pass`` silent-swallow sites may exist in
  ``src/``.  Every broad handler must at least record what it swallowed
  (the pool-shutdown handler, for instance, counts into the metrics
  registry) so failures stay observable.
"""

from __future__ import annotations

import ast
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"


def _git_tracked_files() -> list:
    try:
        completed = subprocess.run(
            ["git", "ls-files"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        pytest.skip("git unavailable")
    if completed.returncode != 0:
        pytest.skip("not a git checkout")
    return completed.stdout.splitlines()


def test_no_compiled_artifacts_tracked():
    offenders = [
        path
        for path in _git_tracked_files()
        if path.endswith((".pyc", ".pyo")) or "__pycache__" in path.split("/")
    ]
    assert not offenders, (
        "compiled artifacts are git-tracked (git rm --cached them and keep "
        "__pycache__/ in .gitignore): " + ", ".join(offenders)
    )


def _is_broad_exception(node) -> bool:
    """Whether an except clause catches Exception/BaseException or is bare."""
    if node is None:
        return True  # bare ``except:``
    if isinstance(node, ast.Name):
        return node.id in ("Exception", "BaseException")
    if isinstance(node, ast.Tuple):
        return any(_is_broad_exception(element) for element in node.elts)
    return False


def test_no_silent_exception_swallow_sites():
    offenders = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad_exception(node.type):
                continue
            if len(node.body) == 1 and isinstance(node.body[0], ast.Pass):
                offenders.append(
                    f"{path.relative_to(REPO_ROOT)}:{node.lineno}"
                )
    assert not offenders, (
        "silent `except Exception: pass` sites found (record the failure — "
        "a metrics counter at minimum — instead of discarding it): "
        + ", ".join(offenders)
    )
