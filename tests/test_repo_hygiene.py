"""Repository hygiene checks: tracked artifacts and silent-swallow lint.

These are tier-1 guards over the repository itself rather than the
library's behaviour:

* compiled Python artifacts (``__pycache__``/``*.pyc``) must never be
  git-tracked — they are interpreter- and machine-specific and once
  committed they shadow honest diffs;
* no silent broad-exception swallow sites may exist in ``src/``.

The silent-swallow check used to be an ad-hoc AST walk here; it now
lives in the contract linter (:class:`repro.analysis.hygiene.
SilentSwallowRule`, rule ``EXC001``) and this file is a thin wrapper
that keeps the guarantee **at least as strong as the seed check**:

* the generalised rule (``pass``, ``...`` and ``continue`` bodies) must
  report nothing unsuppressed anywhere in ``src/``;
* the seed-era strict form — a broad handler whose body is exactly
  ``pass`` — must not exist even *with* a ``# repro: noqa[EXC001]``
  marker, because the seed test knew nothing about suppressions.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

import pytest

from repro.analysis import lint_tree
from repro.analysis.hygiene import SilentSwallowRule

REPO_ROOT = Path(__file__).resolve().parent.parent


def _git_tracked_files() -> list:
    try:
        completed = subprocess.run(
            ["git", "ls-files"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        pytest.skip("git unavailable")
    if completed.returncode != 0:
        pytest.skip("not a git checkout")
    return completed.stdout.splitlines()


def test_no_compiled_artifacts_tracked():
    offenders = [
        path
        for path in _git_tracked_files()
        if path.endswith((".pyc", ".pyo")) or "__pycache__" in path.split("/")
    ]
    assert not offenders, (
        "compiled artifacts are git-tracked (git rm --cached them and keep "
        "__pycache__/ in .gitignore): " + ", ".join(offenders)
    )


def test_no_silent_exception_swallow_sites():
    report = lint_tree(rules=[SilentSwallowRule])
    offenders = [finding.location() for finding in report.findings]
    assert not offenders, (
        "silent broad-except swallow sites found (record the failure — a "
        "metrics counter at minimum — or narrow the exception type): "
        + ", ".join(offenders)
    )


def test_seed_strict_form_not_even_suppressible():
    """``except Exception: pass`` may not hide behind a noqa marker.

    The pre-linter hygiene test had no suppression mechanism, so to stay
    no weaker than the seed, the exact body it banned stays banned even
    when annotated.  (The generalised ``...``/``continue`` forms may be
    suppressed with justification; the pass form may not.)
    """
    report = lint_tree(rules=[SilentSwallowRule])
    hidden = [
        finding.location()
        for finding in report.suppressed
        if finding.detail.get("body_kind") == "pass"
    ]
    assert not hidden, (
        "`except Exception: pass` sites suppressed via noqa (forbidden — "
        "the seed hygiene ban is unconditional): " + ", ".join(hidden)
    )
