"""Tests for the scaling workload families (:mod:`repro.workloads.scaling`)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access.answerability import (
    accessible_fraction,
    accessible_part,
    is_answerable_exactly,
    maximal_answers,
    true_answers,
)
from repro.access.path import is_grounded
from repro.queries.evaluation import answers
from repro.workloads.scaling import (
    ScalingWorkload,
    chain_access_schema,
    chain_hidden_instance,
    chain_query,
    chain_suite,
    chain_workload,
    star_suite,
    star_workload,
    wide_directory_suite,
    wide_directory_workload,
)


# ----------------------------------------------------------------------
# Chain workloads
# ----------------------------------------------------------------------
class TestChainWorkloads:
    def test_schema_shape(self):
        schema = chain_access_schema(5)
        assert len(schema.schema) == 5
        assert len(schema) == 5
        assert schema.method("Scan0").is_input_free()
        assert schema.method("Lookup3").input_positions == (0,)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            chain_access_schema(0)

    def test_hidden_instance_has_complete_and_broken_chains(self):
        instance = chain_hidden_instance(4, chains=2, broken_chains=1)
        # 2 complete chains × 4 relations + 1 broken chain × 3 relations
        assert instance.size() == 2 * 4 + 3

    def test_chain_query_answers_on_hidden_instance(self):
        length = 4
        workload = chain_workload(length, chains=2, broken_chains=1)
        full = answers(workload.query, workload.hidden_instance)
        # Each complete chain contributes one answer; broken chains never
        # produce a full chain join (their first link is missing).
        assert len(full) == 2

    def test_accessible_part_excludes_broken_chains(self):
        workload = chain_workload(4, chains=2, broken_chains=2)
        part = accessible_part(workload.access_schema, workload.hidden_instance)
        for relation_index in range(1, 4):
            for tup in part.tuples(f"R{relation_index}"):
                assert tup[0].startswith("c"), "broken-chain tuples must stay hidden"

    def test_chain_query_is_answerable_exactly(self):
        # The chain join only needs the complete chains, which are reachable
        # by following the cascade, so the maximal answers are the true answers.
        workload = chain_workload(5, chains=3, broken_chains=2)
        assert is_answerable_exactly(
            workload.access_schema, workload.query, workload.hidden_instance
        )

    def test_accessible_fraction_decreases_with_broken_chains(self):
        mostly_reachable = chain_workload(4, chains=4, broken_chains=1)
        mostly_hidden = chain_workload(4, chains=1, broken_chains=4)
        assert accessible_fraction(
            mostly_reachable.access_schema, mostly_reachable.hidden_instance
        ) > accessible_fraction(
            mostly_hidden.access_schema, mostly_hidden.hidden_instance
        )

    @given(length=st.integers(min_value=1, max_value=7))
    @settings(max_examples=10, deadline=None)
    def test_chain_query_arity_and_atoms(self, length):
        query = chain_query(length)
        assert len(query.atoms) == length
        assert len(query.head) == 2

    def test_describe_mentions_parameters(self):
        workload = chain_workload(3)
        text = workload.describe()
        assert "chain[length=3" in text
        assert "|relations|=3" in text


# ----------------------------------------------------------------------
# Star workloads
# ----------------------------------------------------------------------
class TestStarWorkloads:
    def test_schema_shape(self):
        workload = star_workload(4, hubs=2)
        assert len(workload.access_schema.schema) == 5  # hub + 4 satellites
        assert workload.access_schema.schema.arity("Hub") == 5

    def test_star_query_answers(self):
        workload = star_workload(3, hubs=2)
        full = answers(workload.query, workload.hidden_instance)
        assert len(full) == 2  # one row per hub tuple

    def test_star_is_answerable_exactly(self):
        workload = star_workload(3, hubs=2)
        assert is_answerable_exactly(
            workload.access_schema, workload.query, workload.hidden_instance
        )

    def test_invalid_satellites(self):
        with pytest.raises(ValueError):
            star_workload(0)

    @given(satellites=st.integers(min_value=1, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_everything_is_accessible(self, satellites):
        workload = star_workload(satellites, hubs=2)
        fraction = accessible_fraction(
            workload.access_schema, workload.hidden_instance
        )
        assert fraction == 1.0


# ----------------------------------------------------------------------
# Wide-directory workloads
# ----------------------------------------------------------------------
class TestWideDirectoryWorkloads:
    def test_schema_scales_with_pairs(self):
        workload = wide_directory_workload(3)
        assert len(workload.access_schema.schema) == 6
        assert len(workload.access_schema) == 6

    def test_query_targets_single_pair(self):
        workload = wide_directory_workload(2)
        assert workload.query.relations() == {"Mobile0", "Address0"}

    def test_maximal_answers_require_initial_name(self):
        workload = wide_directory_workload(1, people=3)
        with_seed = maximal_answers(
            workload.access_schema,
            workload.query,
            workload.hidden_instance,
            workload.initial_values,
        )
        without_seed = maximal_answers(
            workload.access_schema, workload.query, workload.hidden_instance, ()
        )
        assert without_seed == frozenset()
        assert with_seed  # the seeded name unlocks at least its own join row
        assert with_seed <= true_answers(workload.query, workload.hidden_instance)

    def test_invalid_pair_index(self):
        from repro.workloads.scaling import wide_directory_query

        with pytest.raises(ValueError):
            wide_directory_query(2, 5)


# ----------------------------------------------------------------------
# Suites
# ----------------------------------------------------------------------
class TestSuites:
    def test_suites_are_monotone_in_size(self):
        for suite in (chain_suite(), star_suite(), wide_directory_suite()):
            sizes = [len(w.access_schema.schema) for w in suite]
            assert sizes == sorted(sizes)
            assert all(isinstance(w, ScalingWorkload) for w in suite)

    def test_suites_are_deterministic(self):
        first = chain_suite((3, 5))
        second = chain_suite((3, 5))
        for a, b in zip(first, second):
            assert a.name == b.name
            assert a.hidden_instance == b.hidden_instance

    def test_generated_paths_can_be_grounded(self):
        from repro.workloads.generators import WorkloadGenerator

        workload = chain_workload(3)
        generator = WorkloadGenerator(seed=2)
        path = generator.access_path(
            workload.access_schema,
            workload.hidden_instance,
            length=3,
            grounded=True,
            initial_values=("c0_0",),
        )
        initial = workload.access_schema.empty_instance()
        initial.add("R0", ("c0_0", "c0_1"))
        # Not every random path is grounded, but the helper must at least
        # produce well-formed paths over the scaling schema.
        assert len(path) == 3
