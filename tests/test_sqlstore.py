"""Property tests for the SQLite store backend (:mod:`repro.store.sqlstore`).

Convention of the store subsystem: the dict-backed
:class:`~repro.relational.instance.Instance` and the in-memory
:class:`~repro.store.snapshot.SnapshotInstance` are the oracles.  The
SQL backend must agree with them field by field — same tuples under
random mutation/snapshot/restore interleavings, same compiled-join
assignments below and above the pushdown threshold, same datalog
fixedpoints and per-round generations, same fingerprints, hashes and
verdict-cache key bytes — and its fault behaviour must degrade to the
last committed snapshot (or to the in-memory executor), never to a
half-applied state or a wrong answer.
"""

from __future__ import annotations

import os
import pickle
import random
import subprocess
import sys
from collections import Counter

import pytest

from repro.datalog.evaluation import evaluate_program
from repro.engine.reduction import instance_key
from repro.obs.metrics import REGISTRY
from repro.queries.evaluation import (
    naive_satisfying_assignments,
    satisfying_assignments,
)
from repro.relational.instance import Instance
from repro.relational.schema import Relation, Schema, make_schema
from repro.store import faults
from repro.store.backend import (
    MEMORY_BACKEND,
    SQLITE_BACKEND,
    configured_store_backend,
    create_store,
    resolve_backend,
)
from repro.store.snapshot import SnapshotInstance
from repro.store.sqlstore import (
    SQLSnapshot,
    SQLStoreInstance,
    decode_value,
    encode_value,
)
from repro.store.verdict_cache import encode_key
from repro.workloads import scaling
from repro.workloads.generators import WorkloadGenerator

SRC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


def _multiset(assignments):
    return Counter(frozenset(a.items()) for a in assignments)


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture
def pushdown_always(monkeypatch):
    """Force every eligible plan through the SQL pushdown path."""
    monkeypatch.setenv("REPRO_SQL_PUSHDOWN_MIN_ROWS", "1")


@pytest.fixture
def pushdown_never(monkeypatch):
    """Route every plan through the in-memory executor over the facade."""
    monkeypatch.setenv("REPRO_SQL_PUSHDOWN_MIN_ROWS", "1000000000")


def _pushdown_delta(base):
    return REGISTRY.counters_delta(base)


# ----------------------------------------------------------------------
# Value encoding
# ----------------------------------------------------------------------
class TestValueEncoding:
    def test_round_trips(self):
        values = ["", "abc", 'quo"te', 0, 1, -7, 10**20, 2.5, -0.125, None]
        for value in values:
            assert decode_value(encode_value(value)) == value

    def test_numeric_collapse_matches_python_set_semantics(self):
        # True, 1 and 1.0 are one element of a Python set, so the store's
        # encoding must collapse them too (the oracles are Python sets).
        assert encode_value(True) == encode_value(1) == encode_value(1.0)
        assert decode_value(encode_value(True)) == 1
        assert encode_value(False) == encode_value(0)

    def test_string_and_int_never_collide(self):
        assert encode_value("1") != encode_value(1)
        assert encode_value("None") != encode_value(None)

    def test_unencodable_values_raise(self):
        with pytest.raises(TypeError):
            encode_value(float("nan"))
        with pytest.raises(TypeError):
            encode_value(object())


# ----------------------------------------------------------------------
# The SQL store against the dict-backed oracle
# ----------------------------------------------------------------------
_VALUE_POOL = ["v0", "v1", "v2", "v3", 0, 1, 2, True, 1.0, 2.5, None]


def _random_tuple(rng: random.Random, arity: int):
    return tuple(rng.choice(_VALUE_POOL) for _ in range(arity))


class TestSqlStoreAgreesWithOracle:
    def test_random_interleavings(self):
        """Store == oracle throughout random add/discard/snapshot
        interleavings, and every snapshot restores (in arbitrary order,
        forwards and backwards across generations) to exactly the state
        it captured."""
        schema = Schema([Relation("R", 2), Relation("S", 3), Relation("Z", 0)])
        arities = {"R": 2, "S": 3, "Z": 0}
        rng = random.Random(20260808)
        store = SQLStoreInstance(schema)
        oracle = Instance(schema)
        snapshots = []
        for step in range(500):
            name = rng.choice(["R", "S", "Z"])
            tup = _random_tuple(rng, arities[name])
            if rng.random() < 0.6:
                assert store.add_unchecked(name, tup) == oracle.add_unchecked(
                    name, tup
                )
            else:
                assert store.discard(name, tup) == oracle.discard(name, tup)
            if rng.random() < 0.08:
                snapshots.append((store.snapshot(), oracle.freeze()))
            if step % 50 == 0:
                assert store.freeze() == oracle.freeze()
                assert store.size() == oracle.size()
                assert store.active_domain() == oracle.active_domain()
                for relation in schema:
                    assert store.tuples(relation.name) == oracle.tuples(
                        relation.name
                    )
                    for position in range(relation.arity):
                        for value in ("v0", 1, None):
                            assert set(
                                store.index(relation.name, position, value)
                            ) == set(oracle.index(relation.name, position, value))
                assert store.relation_counts() == oracle.relation_counts()
        assert store == oracle  # freeze-level equality across backends
        rng.shuffle(snapshots)
        for snap, frozen in snapshots:
            store.restore(snap)
            assert store.freeze() == frozen
            branch = SQLStoreInstance.from_snapshot(snap)
            assert branch.freeze() == frozen
            branch.close()
        assert store.verify()["ok"]
        store.close()

    def test_branches_are_independent(self):
        schema = make_schema({"R": 2})
        store = SQLStoreInstance(schema)
        store.add("R", ("a", "b"))
        snap = store.snapshot()
        branch = SQLStoreInstance.from_snapshot(snap)
        branch.add("R", ("c", "d"))
        store.add("R", ("e", "f"))
        assert branch.contains("R", ("c", "d"))
        assert not branch.contains("R", ("e", "f"))
        assert not store.contains("R", ("c", "d"))
        rebuilt = SQLStoreInstance.from_snapshot(snap)
        assert rebuilt.tuples("R") == frozenset({("a", "b")})
        for s in (store, branch, rebuilt):
            s.close()

    def test_unencodable_probes_answer_empty(self):
        # No stored fact can equal a value the encoding rejects, so
        # membership and index probes degrade to False/empty, not errors.
        schema = make_schema({"R": 2})
        store = SQLStoreInstance(schema)
        store.add("R", ("a", "b"))
        assert not store.contains("R", (float("nan"), "b"))
        assert store.index("R", 0, float("nan")) == frozenset()
        store.close()

    def test_restore_rejects_foreign_snapshots(self):
        schema = make_schema({"R": 1})
        one = SQLStoreInstance(schema)
        two = SQLStoreInstance(schema)
        snap = one.snapshot()
        with pytest.raises(ValueError):
            two.restore(snap)
        one.close()
        two.close()


# ----------------------------------------------------------------------
# Fingerprint / verdict-key parity across backends
# ----------------------------------------------------------------------
#: Values already in the store's canonical numeric form (no bools, no
#: integral floats).  Snapshot equality and hashes agree across backends
#: for *any* values; verdict-key **bytes** additionally agree exactly on
#: canonical values — the SQL backend canonicalises ``True``/``1.0`` to
#: ``1`` at ingest, where the memory store keeps the original object, so
#: a non-canonical fact degrades the shared cache to a miss (never a
#: wrong hit: readers compare full key bytes).
_CANONICAL_POOL = ["v0", "v1", "v2", "v3", 0, 1, 2, -5, 2.5, None]


def _twin_stores():
    schema = Schema([Relation("R", 2), Relation("S", 1)])
    mem = SnapshotInstance(schema)
    sql = SQLStoreInstance(schema)
    rng = random.Random(11)
    for _ in range(60):
        name = rng.choice(["R", "S"])
        arity = 2 if name == "R" else 1
        tup = tuple(rng.choice(_CANONICAL_POOL) for _ in range(arity))
        mem.add_unchecked(name, tup)
        sql.add_unchecked(name, tup)
    return mem, sql


class TestCrossBackendParity:
    def test_snapshots_compare_and_hash_equal(self):
        mem, sql = _twin_stores()
        mem_snap, sql_snap = mem.snapshot(), sql.snapshot()
        assert mem_snap == sql_snap
        assert sql_snap == mem_snap
        assert hash(mem_snap) == hash(sql_snap)
        sql.add("R", ("fresh", "fact"))
        assert sql.snapshot() != mem_snap
        sql.close()

    def test_verdict_cache_keys_are_byte_identical(self):
        # The persistent verdict cache keys on encode_key(snapshot): a
        # verdict computed against one backend must be served to the
        # other, so the key bytes have to match exactly.
        mem, sql = _twin_stores()
        assert encode_key(mem.snapshot()) == encode_key(sql.snapshot())
        sql.close()

    def test_non_canonical_values_still_compare_equal(self):
        # True/1.0 canonicalise to 1 inside the SQL store.  Snapshot
        # equality and hashes still agree (Python == collapses them on
        # the memory side too); only the verdict-key *bytes* may differ,
        # which is a cache miss, never a wrong hit.
        schema = make_schema({"R": 2})
        mem = SnapshotInstance(schema)
        sql = SQLStoreInstance(schema)
        for tup in [(True, 1.0), (0, 2.5)]:
            mem.add_unchecked("R", tup)
            sql.add_unchecked("R", tup)
        assert mem.snapshot() == sql.snapshot()
        assert hash(mem.snapshot()) == hash(sql.snapshot())
        assert sql.tuples("R") == mem.tuples("R")
        sql.close()

    def test_engine_instance_key_crosses_backends(self):
        mem, sql = _twin_stores()
        assert instance_key(sql) == instance_key(mem)
        assert instance_key(sql.snapshot().view()) == instance_key(mem)
        assert hash(instance_key(sql)) == hash(instance_key(mem))
        sql.close()

    def test_snapshot_pickle_round_trip(self):
        mem, sql = _twin_stores()
        loaded = pickle.loads(pickle.dumps(sql.snapshot()))
        assert loaded == mem.snapshot()
        store_loaded = pickle.loads(pickle.dumps(sql))
        assert store_loaded.freeze() == sql.freeze()
        sql.close()
        store_loaded.close()


# ----------------------------------------------------------------------
# Compiled joins: SQL pushdown vs the in-memory executor vs the oracle
# ----------------------------------------------------------------------
class TestCompiledEngineOnSqlStore:
    def _trials(self, seed):
        generator = WorkloadGenerator(seed=seed)
        rng = random.Random(seed)
        for trial in range(25):
            schema = generator.schema(num_relations=rng.randint(1, 3))
            instance = generator.instance(
                schema,
                tuples_per_relation=rng.randint(0, 8),
                domain_size=rng.randint(2, 6),
            )
            query = generator.conjunctive_query(
                schema,
                num_atoms=rng.randint(1, 4),
                num_variables=rng.randint(1, 5),
                constant_probability=0.25,
            )
            yield trial, schema, instance, query

    def test_pushdown_agrees_with_oracle(self, pushdown_always):
        for trial, schema, instance, query in self._trials(99):
            store = SQLStoreInstance.from_instance(instance)
            assert _multiset(satisfying_assignments(query, store)) == _multiset(
                naive_satisfying_assignments(query, instance)
            ), f"trial {trial}: {query}"
            store.close()

    def test_below_threshold_agrees_with_oracle(self, pushdown_never):
        for trial, schema, instance, query in self._trials(77):
            store = SQLStoreInstance.from_instance(instance)
            assert _multiset(satisfying_assignments(query, store)) == _multiset(
                naive_satisfying_assignments(query, instance)
            ), f"trial {trial}: {query}"
            store.close()

    def test_routing_counters(self, pushdown_always, monkeypatch):
        from repro.queries.atoms import Atom
        from repro.queries.cq import ConjunctiveQuery
        from repro.queries.terms import Variable

        schema = make_schema({"R": 2, "S": 2})
        store = SQLStoreInstance(schema)
        for i in range(40):
            store.add("R", (f"a{i}", f"b{i % 5}"))
            store.add("S", (f"b{i % 5}", f"c{i}"))
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        query = ConjunctiveQuery(atoms=(Atom("R", (x, y)), Atom("S", (y, z))))

        base = REGISTRY.counters_snapshot()
        pushed = _multiset(satisfying_assignments(query, store))
        assert _pushdown_delta(base).get("store.pushdown", 0) >= 1

        monkeypatch.setenv("REPRO_SQL_PUSHDOWN_MIN_ROWS", "1000000000")
        base = REGISTRY.counters_snapshot()
        routed = _multiset(satisfying_assignments(query, store))
        assert _pushdown_delta(base).get("store.pushdown_skipped", 0) >= 1
        assert routed == pushed
        store.close()

    def test_snapshot_view_pins_its_generation(self, pushdown_always):
        from repro.queries.atoms import Atom
        from repro.queries.cq import ConjunctiveQuery
        from repro.queries.terms import Variable

        schema = make_schema({"R": 1})
        store = SQLStoreInstance(schema)
        for i in range(8):
            store.add("R", (f"v{i}",))
        view = store.snapshot().view()
        store.add("R", ("late",))
        x = Variable("x")
        scan = ConjunctiveQuery(atoms=(Atom("R", (x,)),))
        pinned = {a[x] for a in satisfying_assignments(scan, view)}
        head = {a[x] for a in satisfying_assignments(scan, store)}
        assert "late" not in pinned
        assert "late" in head
        assert head - pinned == {"late"}
        store.close()


# ----------------------------------------------------------------------
# Datalog fixedpoints on the sqlite backend
# ----------------------------------------------------------------------
class TestDatalogOnSqlBackend:
    def _workload(self, total_facts=300):
        program = scaling.grid_reach_program()
        database = Instance(scaling.grid_reach_schema())
        for fact in scaling.grid_reach_facts(total_facts):
            database.add_fact(fact)
        return program, database

    def test_fixedpoint_and_generations_match_memory(self, pushdown_always):
        program, database = self._workload()
        oracle = evaluate_program(program, database, store_backed=False)
        mem_log, sql_log = [], []
        mem = evaluate_program(
            program, database, backend="memory", generation_log=mem_log
        )
        sql = evaluate_program(
            program, database, backend="sqlite", generation_log=sql_log
        )
        assert sql.freeze() == oracle.freeze()
        assert mem.freeze() == sql.freeze()
        # Round-by-round: the semi-naive delta chains are identical.
        assert len(mem_log) == len(sql_log)
        for mem_gen, sql_gen in zip(mem_log, sql_log):
            assert mem_gen == sql_gen
        sql.close()

    def test_naive_mode_matches(self, pushdown_always):
        program, database = self._workload(120)
        oracle = evaluate_program(
            program, database, store_backed=False, semi_naive=False
        )
        sql = evaluate_program(
            program, database, backend="sqlite", semi_naive=False
        )
        assert sql.freeze() == oracle.freeze()
        sql.close()

    def test_in_place_adoption(self, pushdown_always):
        # An SQLite database over the combined schema is adopted: the
        # fixedpoint lands in the same store, with no re-ingest copy.
        program, database = self._workload(200)
        combined = program.combined_schema()
        store = SQLStoreInstance(combined)
        for fact in database.facts():
            store.add_fact(fact)
        result = evaluate_program(program, store, backend="sqlite")
        assert result is store
        oracle = evaluate_program(program, database, store_backed=False)
        assert store.freeze() == oracle.freeze()
        store.close()

    def test_chain_join_query_matches(self, pushdown_always):
        schema = scaling.chain_join_schema()
        database = Instance(schema)
        for fact in scaling.chain_join_facts(200):
            database.add_fact(fact)
        store = SQLStoreInstance.from_instance(database)
        query = scaling.chain_join_query()
        assert _multiset(satisfying_assignments(query, store)) == _multiset(
            naive_satisfying_assignments(query, database)
        )
        assert len(_multiset(satisfying_assignments(query, store))) == 100
        store.close()


# ----------------------------------------------------------------------
# Fault injection: torn transactions, crashes, pushdown failures
# ----------------------------------------------------------------------
class TestFaultInjection:
    def test_tripped_commit_rolls_back_to_last_snapshot(self):
        schema = make_schema({"R": 1})
        store = SQLStoreInstance(schema)
        for i in range(10):
            store.add("R", (f"keep{i}",))
        committed = store.snapshot()
        frozen = store.freeze()
        for i in range(5):
            store.add("R", (f"lost{i}",))
        faults.install("trip@sql_commit:0")
        with pytest.raises(OSError):
            store.snapshot()
        faults.clear()
        # The failed checkpoint left the head at the last committed state.
        assert store.freeze() == frozen
        assert store.snapshot() == committed
        assert store.verify()["ok"]
        # The store keeps working after the fault.
        store.add("R", ("after",))
        assert store.snapshot() != committed
        store.close()

    def test_tripped_pushdown_degrades_to_memory_executor(
        self, pushdown_always
    ):
        from repro.queries.atoms import Atom
        from repro.queries.cq import ConjunctiveQuery
        from repro.queries.terms import Variable

        schema = make_schema({"R": 2})
        store = SQLStoreInstance(schema)
        oracle = Instance(schema)
        for i in range(30):
            tup = (f"a{i % 3}", f"b{i}")
            store.add("R", tup)
            oracle.add("R", tup)
        x, y = Variable("x"), Variable("y")
        query = ConjunctiveQuery(atoms=(Atom("R", (x, y)),))
        faults.install("trip@sql_pushdown:0")
        base = REGISTRY.counters_snapshot()
        answers = _multiset(satisfying_assignments(query, store))
        assert answers == _multiset(naive_satisfying_assignments(query, oracle))
        assert _pushdown_delta(base).get("store.pushdown_fault", 0) >= 1
        store.close()

    def test_mid_commit_kill_recovers_to_last_snapshot(self, tmp_path):
        """A process killed inside the commit leaves a store that reopens
        to exactly the last durable snapshot."""
        path = str(tmp_path / "crash.db")
        script = (
            "import sys\n"
            f"sys.path.insert(0, {SRC_DIR!r})\n"
            "from repro.relational.schema import make_schema\n"
            "from repro.store import faults\n"
            "from repro.store.sqlstore import SQLStoreInstance\n"
            f"store = SQLStoreInstance(make_schema({{'R': 1}}), {path!r})\n"
            "for i in range(50):\n"
            "    store.add('R', ('keep%d' % i,))\n"
            "store.snapshot()  # durable\n"
            "for i in range(20):\n"
            "    store.add('R', ('lost%d' % i,))\n"
            "faults.install('kill@sql_commit:0')\n"
            "store.snapshot()  # killed mid-commit\n"
            "sys.exit(3)  # unreachable\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True
        )
        assert proc.returncode == faults.KILL_EXIT_CODE, proc.stderr.decode()
        reopened = SQLStoreInstance.open(path)
        assert reopened.size() == 50
        assert reopened.tuples("R") == frozenset(
            {(f"keep{i}",) for i in range(50)}
        )
        assert reopened.verify()["ok"]
        reopened.close()


# ----------------------------------------------------------------------
# Persistence: close/reopen, durability boundary, cross-process hashes
# ----------------------------------------------------------------------
class TestPersistence:
    def test_reopen_sees_exactly_the_committed_state(self, tmp_path):
        path = str(tmp_path / "facts.db")
        schema = make_schema({"R": 2})
        store = SQLStoreInstance(schema, path)
        for i in range(25):
            store.add("R", (f"a{i}", i))
        store.snapshot()
        store.add("R", ("uncommitted", 0))  # never checkpointed
        store.close()

        reopened = SQLStoreInstance.open(path)
        assert reopened.schema.names() == schema.names()
        assert reopened.size() == 25
        assert not reopened.contains("R", ("uncommitted", 0))
        # Fingerprints are recomputed from rows on open, so the reopened
        # store compares equal to a fresh in-memory twin.
        mem = SnapshotInstance(schema)
        for i in range(25):
            mem.add("R", (f"a{i}", i))
        assert reopened.snapshot() == mem.snapshot()
        assert reopened.verify()["ok"]
        reopened.close()

    def test_restore_across_generations_then_reopen(self, tmp_path):
        path = str(tmp_path / "gens.db")
        schema = make_schema({"R": 1})
        store = SQLStoreInstance(schema, path)
        store.add("R", ("one",))
        first = store.snapshot()
        store.add("R", ("two",))
        store.snapshot()
        store.restore(first)
        store.snapshot()  # make the rollback durable
        store.close()
        reopened = SQLStoreInstance.open(path)
        assert reopened.tuples("R") == frozenset({("one",)})
        assert reopened.verify()["ok"]
        reopened.close()


# ----------------------------------------------------------------------
# Backend selection (the REPRO_STORE_BACKEND knob)
# ----------------------------------------------------------------------
class TestBackendFactory:
    def test_default_is_memory(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_BACKEND", raising=False)
        assert configured_store_backend() == MEMORY_BACKEND
        store = create_store(make_schema({"R": 1}))
        assert isinstance(store, SnapshotInstance)

    def test_env_knob_selects_sqlite(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_BACKEND", "sqlite")
        assert configured_store_backend() == SQLITE_BACKEND
        store = create_store(make_schema({"R": 1}))
        assert isinstance(store, SQLStoreInstance)
        store.close()

    def test_invalid_env_value_warns_once_and_falls_back(self, monkeypatch):
        from repro.obs import env as envknobs_module

        monkeypatch.setattr(envknobs_module, "_ENV_WARNED", set())
        monkeypatch.setenv("REPRO_STORE_BACKEND", "postgres")
        with pytest.warns(RuntimeWarning, match="REPRO_STORE_BACKEND"):
            assert configured_store_backend() == MEMORY_BACKEND
        # Warn-once: the second read is silent and still the default.
        assert configured_store_backend() == MEMORY_BACKEND

    def test_explicit_backend_with_path(self, tmp_path):
        path = str(tmp_path / "explicit.db")
        store = create_store(
            make_schema({"R": 1}), backend=SQLITE_BACKEND, path=path
        )
        assert isinstance(store, SQLStoreInstance)
        assert store.path == path
        store.close()

    def test_memory_backend_rejects_a_path(self, tmp_path):
        with pytest.raises(ValueError):
            create_store(
                make_schema({"R": 1}),
                backend=MEMORY_BACKEND,
                path=str(tmp_path / "x.db"),
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("duckdb")
