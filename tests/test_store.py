"""Property tests for the persistent fact store (:mod:`repro.store`).

Testing convention of the performance subsystem: the dict-backed
:class:`~repro.relational.instance.Instance` is the oracle.  The store
facade must agree with it under arbitrary interleavings of mutation,
snapshot, restore and branching, and the compiled join engine must
enumerate the same assignments on either backend.
"""

from __future__ import annotations

import pickle
import random
from collections import Counter

import pytest

from repro.datalog.evaluation import evaluate_program, fixedpoint_generations
from repro.queries.evaluation import (
    naive_satisfying_assignments,
    satisfying_assignments,
)
from repro.queries.plan_cache import clear_plan_cache, compile_plan, get_plan
from repro.relational.instance import Instance
from repro.relational.schema import Relation, Schema, make_schema
from repro.store.hamt import EMPTY_PMAP, PMap
from repro.store.snapshot import SMALL_SHARD_LIMIT, Snapshot, SnapshotInstance
from repro.workloads.generators import WorkloadGenerator


def _multiset(assignments):
    return Counter(frozenset(a.items()) for a in assignments)


class TestPMap:
    def test_random_ops_agree_with_dict(self):
        rng = random.Random(42)
        pmap = EMPTY_PMAP
        reference = {}
        for step in range(3000):
            key = rng.randint(0, 400)
            if rng.random() < 0.6:
                pmap = pmap.set(key, step)
                reference[key] = step
            else:
                pmap = pmap.delete(key)
                reference.pop(key, None)
            assert len(pmap) == len(reference)
        assert dict(pmap.items()) == reference
        for key in range(420):
            assert (key in pmap) == (key in reference)
            assert pmap.get(key, "missing") == reference.get(key, "missing")

    def test_structural_equality_is_insertion_order_independent(self):
        items = [(f"k{i}", i) for i in range(200)]
        forward = PMap(items)
        rng = random.Random(7)
        shuffled = list(items)
        rng.shuffle(shuffled)
        backward = PMap(shuffled)
        assert forward == backward
        # Insert-then-delete collapses back to the canonical shape.
        with_extra = forward.set("extra", 1).delete("extra")
        assert with_extra == forward

    def test_updates_do_not_mutate_the_receiver(self):
        base = PMap([("a", 1), ("b", 2)])
        grown = base.set("c", 3)
        shrunk = base.delete("a")
        assert dict(base.items()) == {"a": 1, "b": 2}
        assert dict(grown.items()) == {"a": 1, "b": 2, "c": 3}
        assert dict(shrunk.items()) == {"b": 2}

    def test_pickle_round_trip(self):
        pmap = PMap([(("tup", i), True) for i in range(100)])
        loaded = pickle.loads(pickle.dumps(pmap))
        assert loaded == pmap
        assert dict(loaded.items()) == dict(pmap.items())


def _random_schema() -> Schema:
    return Schema([Relation("R", 2), Relation("S", 3), Relation("Z", 0)])


def _random_tuple(rng: random.Random, arity: int):
    return tuple(f"v{rng.randint(0, 6)}" for _ in range(arity))


class TestSnapshotInstanceAgreesWithInstance:
    def test_random_interleavings(self):
        """The satellite property: store == dict-backed oracle throughout
        random add/discard/snapshot interleavings, and every snapshot
        restores to exactly the state it captured."""
        schema = _random_schema()
        arities = {"R": 2, "S": 3, "Z": 0}
        rng = random.Random(20260730)
        store = SnapshotInstance(schema)
        oracle = Instance(schema)
        snapshots = []
        for step in range(600):
            name = rng.choice(["R", "S", "Z"])
            tup = _random_tuple(rng, arities[name])
            if rng.random() < 0.6:
                assert store.add_unchecked(name, tup) == oracle.add_unchecked(
                    name, tup
                )
            else:
                assert store.discard(name, tup) == oracle.discard(name, tup)
            if rng.random() < 0.08:
                snapshots.append((store.snapshot(), oracle.freeze()))
            if step % 50 == 0:
                assert store.freeze() == oracle.freeze()
                assert store.size() == oracle.size()
                assert store.active_domain() == oracle.active_domain()
                for relation in schema:
                    assert store.tuples(relation.name) == oracle.tuples(
                        relation.name
                    )
                    assert store.relation_count(relation.name) == (
                        oracle.relation_count(relation.name)
                    )
                    for position in range(relation.arity):
                        for value in [f"v{i}" for i in range(8)]:
                            assert set(
                                store.index(relation.name, position, value)
                            ) == set(oracle.index(relation.name, position, value))
                assert store.relation_counts() == oracle.relation_counts()
        assert store == oracle  # freeze-level equality across backends
        rng.shuffle(snapshots)
        for snap, frozen in snapshots:
            store.restore(snap)
            assert store.freeze() == frozen
            branch = SnapshotInstance.from_snapshot(snap)
            assert branch.freeze() == frozen

    def test_branches_are_independent(self):
        schema = make_schema({"R": 2})
        store = SnapshotInstance(schema, {"R": [("a", "b")]})
        snap = store.snapshot()
        branch = SnapshotInstance.from_snapshot(snap)
        branch.add("R", ("c", "d"))
        store.add("R", ("e", "f"))
        assert branch.contains("R", ("c", "d"))
        assert not branch.contains("R", ("e", "f"))
        assert not store.contains("R", ("c", "d"))
        assert SnapshotInstance.from_snapshot(snap).tuples("R") == frozenset(
            {("a", "b")}
        )

    def test_promotion_and_demotion_across_the_shard_limit(self, monkeypatch):
        monkeypatch.setattr("repro.store.snapshot.SMALL_SHARD_LIMIT", 4)
        schema = make_schema({"R": 1})
        store = SnapshotInstance(schema)
        oracle = Instance(schema)
        rng = random.Random(3)
        for step in range(400):
            tup = (f"v{rng.randint(0, 9)}",)
            if rng.random() < 0.55:
                store.add_unchecked("R", tup)
                oracle.add_unchecked("R", tup)
            else:
                store.discard("R", tup)
                oracle.discard("R", tup)
            assert store.tuples("R") == oracle.tuples("R")
            # Representation is a pure function of the cardinality.
            expected_small = store.relation_count("R") <= 4
            assert (
                type(store._shards["R"].tuples) is frozenset
            ) == expected_small

    def test_indexes_survive_snapshot_restore_and_branch(self):
        schema = make_schema({"R": 2})
        store = SnapshotInstance(schema)
        for i in range(10):
            store.add("R", (f"a{i % 3}", f"b{i}"))
        # Force the index, snapshot, mutate, restore: the shard (and its
        # index) for the snapshot comes back shared, not rebuilt.
        assert len(store.index("R", 0, "a0")) == 4
        snap = store.snapshot()
        shard_before = store._shards["R"]
        store.add("R", ("a0", "extra"))
        assert len(store.index("R", 0, "a0")) == 5
        store.restore(snap)
        assert store._shards["R"] is shard_before
        assert len(store.index("R", 0, "a0")) == 4

    def test_instance_and_store_fingerprints(self):
        schema = make_schema({"R": 1})
        instance = Instance(schema, {"R": [("a",)]})
        store = SnapshotInstance.from_instance(instance)
        assert instance.fingerprint() == instance.freeze()
        assert isinstance(store.fingerprint(), Snapshot)
        assert store.fingerprint() is store.snapshot()


class TestSnapshotSemantics:
    def test_equality_and_hash_are_content_based(self):
        schema = make_schema({"R": 2, "S": 1})
        one = SnapshotInstance(schema)
        two = SnapshotInstance(schema)
        for tup in [("a", "b"), ("c", "d")]:
            one.add("R", tup)
        for tup in [("c", "d"), ("a", "b")]:
            two.add("R", tup)
        assert one.snapshot() == two.snapshot()
        assert hash(one.snapshot()) == hash(two.snapshot())
        two.add("S", ("x",))
        assert one.snapshot() != two.snapshot()

    def test_snapshot_pickle_round_trip(self):
        schema = make_schema({"R": 2})
        store = SnapshotInstance(schema)
        for i in range(50):
            store.add("R", (f"a{i}", f"b{i % 5}"))
        snap = store.snapshot()
        loaded = pickle.loads(pickle.dumps(snap))
        assert loaded == snap
        rebuilt = SnapshotInstance.from_snapshot(loaded)
        assert rebuilt.freeze() == store.freeze()
        assert set(rebuilt.index("R", 1, "b0")) == set(store.index("R", 1, "b0"))

    def test_snapshot_instance_pickle_round_trip(self):
        schema = make_schema({"R": 1})
        store = SnapshotInstance(schema, {"R": [("a",), ("b",)]})
        loaded = pickle.loads(pickle.dumps(store))
        assert loaded.freeze() == store.freeze()


class TestCompiledEngineOnStore:
    def test_randomized_cqs_agree_with_oracle(self):
        generator = WorkloadGenerator(seed=99)
        rng = random.Random(5)
        for trial in range(60):
            schema = generator.schema(num_relations=rng.randint(1, 3))
            instance = generator.instance(
                schema,
                tuples_per_relation=rng.randint(0, 8),
                domain_size=rng.randint(2, 6),
            )
            query = generator.conjunctive_query(
                schema,
                num_atoms=rng.randint(1, 4),
                num_variables=rng.randint(1, 5),
                constant_probability=0.25,
            )
            store = SnapshotInstance.from_instance(instance)
            assert _multiset(satisfying_assignments(query, store)) == _multiset(
                naive_satisfying_assignments(query, instance)
            ), f"trial {trial}: {query}"

    def test_mutation_during_lazy_consumption_is_safe(self):
        from repro.queries.atoms import Atom
        from repro.queries.cq import ConjunctiveQuery
        from repro.queries.terms import Constant, Variable

        schema = make_schema({"R": 1})
        store = SnapshotInstance(schema, {"R": [("a",), ("b",), ("c",)]})
        scan = ConjunctiveQuery(atoms=(Atom("R", (Variable("x"),)),))
        seen = 0
        for _ in satisfying_assignments(scan, store):
            store.add("R", (f"scan{seen}",))
            seen += 1
        assert seen == 3


class TestStatisticsDrivenPlans:
    def test_statistics_reorder_ties_towards_small_relations(self):
        from repro.queries.atoms import Atom
        from repro.queries.cq import ConjunctiveQuery
        from repro.queries.terms import Variable

        clear_plan_cache()
        schema = make_schema({"Big": 2, "Small": 2})
        store = SnapshotInstance(schema)
        for i in range(200):
            store.add("Big", (f"a{i}", f"b{i % 7}"))
        store.add("Small", ("b1", "c"))
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        query = ConjunctiveQuery(
            atoms=(Atom("Big", (x, y)), Atom("Small", (y, z)))
        )
        plan = get_plan(query, store)
        assert [atom.relation for atom in plan.atoms] == ["Small", "Big"]
        # The static (statistics-free) compilation keeps the textual order.
        static = compile_plan(query)
        assert [atom.relation for atom in static.atoms] == ["Big", "Small"]
        # Same signature bucket -> the exact same cached plan object.
        assert get_plan(query, store) is plan
        # The result set is identical either way (the oracle property).
        oracle = Instance(schema)
        for name in schema.names():
            for tup in store.tuples(name):
                oracle.add_unchecked(name, tup)
        assert _multiset(satisfying_assignments(query, store)) == _multiset(
            naive_satisfying_assignments(query, oracle)
        )

    def test_small_instances_skip_statistics(self):
        from repro.queries.atoms import Atom
        from repro.queries.cq import ConjunctiveQuery
        from repro.queries.terms import Variable

        clear_plan_cache()
        schema = make_schema({"Big": 2, "Small": 2})
        store = SnapshotInstance(schema, {"Big": [("a", "b")]})
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        query = ConjunctiveQuery(
            atoms=(Atom("Big", (x, y)), Atom("Small", (y, z)))
        )
        plan = get_plan(query, store)
        assert [atom.relation for atom in plan.atoms] == ["Big", "Small"]
        assert set(query.__dict__["_compiled_plan"]) == {None}  # no signature


class TestSnapshotView:
    def test_view_is_cached_and_positioned_at_the_snapshot(self):
        schema = make_schema({"R": 2})
        store = SnapshotInstance(schema, {"R": [("a", "b")]})
        snap = store.snapshot()
        view = snap.view()
        assert view is snap.view()  # cached on the snapshot
        assert view.tuples("R") == frozenset({("a", "b")})
        # Later mutations of the originating facade never leak into the view.
        store.add("R", ("c", "d"))
        assert view.tuples("R") == frozenset({("a", "b")})
        assert view.snapshot() == snap

    def test_view_shares_warm_indexes_with_the_source(self):
        schema = make_schema({"R": 2})
        store = SnapshotInstance(schema, {"R": [("a", "b"), ("a", "c")]})
        # Probe through the facade first so the shard index is built.
        assert store.index("R", 0, "a") == frozenset({("a", "b"), ("a", "c")})
        view = store.snapshot().view()
        # Same shard object => the derived index came along for free.
        assert view._shards["R"] is store._shards["R"]
        assert view.index("R", 0, "a") == frozenset({("a", "b"), ("a", "c")})


class TestDatalogGenerations:
    def _setup(self):
        from repro.access.answerability import accessible_part_program

        generator = WorkloadGenerator(seed=23)
        access_schema = generator.access_schema(
            num_relations=2, methods_per_relation=2, max_inputs=1
        )
        hidden = generator.instance(
            access_schema.schema, tuples_per_relation=8, domain_size=6
        )
        query = generator.conjunctive_query(
            access_schema.schema, num_atoms=2, num_variables=3
        )
        program = accessible_part_program(access_schema, query)
        database = Instance(program.edb_schema)
        for name in hidden.relation_names():
            for tup in hidden.tuples_view(name):
                database.add(name, tup)
        database.add("Init", ("v0",))
        return program, database

    def test_generation_log_matches_plain_evaluation(self):
        program, database = self._setup()
        plain = evaluate_program(program, database)
        generations = fixedpoint_generations(program, database)
        assert generations, "at least the seeded database generation"
        # Generations grow monotonically and end at the fixedpoint.
        sizes = [snap.size() for snap in generations]
        assert sizes == sorted(sizes)
        final = SnapshotInstance.from_snapshot(generations[-1])
        assert final.freeze() == plain.freeze()
        # Earlier generations are subsets of later ones (structure shared).
        for earlier, later in zip(generations, generations[1:]):
            facts = set(earlier.facts())
            assert facts <= set(later.facts())
