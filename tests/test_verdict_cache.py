"""Crash-consistency suite for the persistent verdict cache (PR 9).

The contract under test: the two-tier cache (:mod:`repro.store.verdict_cache`)
may only ever make the engine *faster*, never *wrong*.  Every storage
fault the harness can script — torn writes, mid-write kills, flipped
bytes, short reads, lock timeouts, full disks, format skew — must
degrade to a counted, traced recomputation whose verdict is
field-identical to the cold-cache oracle.  Multi-process sharing is
exercised for real: forked children, fresh interpreters under different
hash seeds, writers killed while holding (or before releasing) the
store lock.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import warnings

import pytest

from repro.core.budget import Budget
from repro.engine import SINGLE_SHOT_POLICY, CachePolicy, DecisionEngine, emptiness_task
from repro.engine.engine import ltl_word_task
from repro.ltl.syntax import And, Eventually, Next, Not, Prop, Until
from repro.obs import trace
from repro.store import faults
from repro.store import verdict_cache as vc
from repro.store.verdict_cache import (
    FORMAT_VERSION,
    MAGIC,
    BloomFilter,
    LRUMemo,
    VerdictCache,
    atomic_write_bytes,
    clear_store,
    encode_key,
    store_stats,
    verify_store,
)

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


@pytest.fixture(autouse=True)
def _clean_state():
    """No fault plan or warn-once state leaks between tests."""
    faults.clear()
    vc._WARNED.clear()
    yield
    faults.clear()
    vc._WARNED.clear()


# ----------------------------------------------------------------------
# Workload helpers
# ----------------------------------------------------------------------
LETTERS = [
    frozenset(),
    frozenset({"p"}),
    frozenset({"q"}),
    frozenset({"p", "q"}),
]


def _ltl_task(nesting: int = 0, max_length: int = 4):
    """A deterministic LTL word-search task, unique per *nesting*."""
    a, b = Prop("p"), Prop("q")
    formula = Until(Not(a), And(b, Eventually(a)))
    for _ in range(nesting):
        formula = Next(formula)
    return ltl_word_task(formula, letters=LETTERS, max_length=max_length)


def _tasks(count: int = 3):
    return [_ltl_task(nesting) for nesting in range(count)]


def _oracle(tasks):
    """Cold-cache oracle: a single-shot engine (no memo, no persistence)."""
    engine = DecisionEngine(cache_policy=SINGLE_SHOT_POLICY)
    return [result.value for result in engine.run_batch(tasks)]


def _run_persisted(store: str, tasks):
    """Run *tasks* on a fresh engine persisting to *store*; return engine too."""
    engine = DecisionEngine(cache_policy=CachePolicy(persist_path=store))
    values = [result.value for result in engine.run_batch(tasks)]
    return values, engine


def _segments(store: str):
    if not os.path.isdir(store):
        return []
    return sorted(name for name in os.listdir(store) if name.endswith(".seg"))


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def test_write_and_replace(self, tmp_path):
        target = str(tmp_path / "file.bin")
        atomic_write_bytes(target, b"first")
        assert open(target, "rb").read() == b"first"
        atomic_write_bytes(target, b"second")
        assert open(target, "rb").read() == b"second"
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]

    def test_disk_full_raises_before_touching_anything(self, tmp_path):
        faults.install("raise@disk_full:0")
        target = str(tmp_path / "file.bin")
        with pytest.raises(OSError):
            atomic_write_bytes(target, b"data")
        assert not os.path.exists(target)
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]

    def test_torn_write_persists_only_a_prefix(self, tmp_path):
        faults.install("trip@torn_write:0")
        target = str(tmp_path / "file.bin")
        atomic_write_bytes(target, b"0123456789")
        assert open(target, "rb").read() == b"01234"


# ----------------------------------------------------------------------
# Canonical key encoding
# ----------------------------------------------------------------------
class TestEncodeKey:
    def test_unordered_containers_are_canonical(self):
        assert encode_key(frozenset({"a", "b", "c"})) == encode_key(
            frozenset({"c", "a", "b"})
        )
        assert encode_key({"x": 1, "y": 2}) == encode_key({"y": 2, "x": 1})

    def test_distinct_values_distinct_encodings(self):
        values = [None, True, False, 0, 1, "1", b"1", (1,), [1], frozenset({1})]
        encodings = {encode_key(value) for value in values}
        assert len(encodings) == len(values)

    def test_stable_across_hash_seeds(self):
        """The digest of a set-heavy fingerprint is interpreter-invariant."""
        script = (
            "import hashlib\n"
            "from repro.store.verdict_cache import encode_key\n"
            "fp = ('ltl_word', (frozenset({'p', 'q', 'r'}),"
            " {'b': 2, 'a': 1}, ('x', frozenset({'zz', 'aa'}))))\n"
            "print(hashlib.sha256(encode_key(fp)).hexdigest())\n"
        )
        digests = set()
        for seed in ("1", "999"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = SRC_DIR
            proc = subprocess.run(
                [sys.executable, "-c", script],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            )
            digests.add(proc.stdout.strip())
        assert len(digests) == 1


# ----------------------------------------------------------------------
# Memory tier
# ----------------------------------------------------------------------
class TestMemoryTier:
    def test_lru_evicts_least_recently_used(self):
        memo = LRUMemo(capacity=2)
        memo.put("a", 1)
        memo.put("b", 2)
        memo.get("a")  # refresh "a" — "b" is now the LRU entry
        memo.put("c", 3)
        assert "a" in memo and "c" in memo and "b" not in memo
        assert memo.evictions == 1

    def test_capacity_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMO_CAPACITY", "2")
        cache = VerdictCache(persist_path="")
        for index in range(4):
            cache.put(("fp", index), index)
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 2

    def test_bounded_engine_memo(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMO_CAPACITY", "1")
        engine = DecisionEngine()
        engine.run_batch(_tasks(3))
        cache_stats = engine.stats()["verdict_cache"]
        assert cache_stats["entries"] == 1
        assert cache_stats["evictions"] == 2


# ----------------------------------------------------------------------
# Disk tier round trips
# ----------------------------------------------------------------------
class TestDiskTier:
    def test_segment_round_trip(self, tmp_path):
        store = str(tmp_path / "store")
        writer = VerdictCache(capacity=0, persist_path=store)
        writer.put(("fp", 1), {"verdict": True})
        writer.put(("fp", 2), None)
        writer.flush()
        assert len(_segments(store)) == 1

        reader = VerdictCache(capacity=0, persist_path=store)
        value, tier = reader.lookup(("fp", 1))
        assert (value, tier) == ({"verdict": True}, "disk")
        value, tier = reader.lookup(("fp", 2))
        assert (value, tier) == (None, "disk")
        # A second lookup is served by the promoted memory copy.
        _, tier = reader.lookup(("fp", 1))
        assert tier == "memory"

    def test_later_segment_wins(self, tmp_path):
        store = str(tmp_path / "store")
        for generation in ("old", "new"):
            writer = VerdictCache(capacity=0, persist_path=store)
            writer.put(("fp",), generation)
            writer.flush()
        reader = VerdictCache(capacity=0, persist_path=store)
        assert reader.lookup(("fp",))[0] == "new"

    def test_bloom_rejects_unknown_keys(self, tmp_path):
        store = str(tmp_path / "store")
        writer = VerdictCache(capacity=0, persist_path=store)
        writer.put(("known",), 1)
        writer.flush()
        reader = VerdictCache(capacity=0, persist_path=store)
        assert reader.lookup(("unknown",))[1] is None
        stats = reader.stats()
        assert stats["bloom_negatives"] + stats["disk_misses"] == 1

    def test_compaction_preserves_later_wins(self, tmp_path):
        store = str(tmp_path / "store")
        compactions = 0
        for generation in range(4):
            writer = VerdictCache(
                capacity=0, persist_path=store, compact_segments=2
            )
            writer.put(("stable",), "constant")
            writer.put(("rewritten",), generation)
            writer.flush()
            compactions += writer.stats()["compactions"]
        # Four flushes would leave four segments; the threshold-crossing
        # flush merged its predecessors under the write lock.
        assert compactions >= 1
        assert len(_segments(store)) <= 2
        reader = VerdictCache(capacity=0, persist_path=store)
        assert reader.lookup(("stable",))[0] == "constant"
        assert reader.lookup(("rewritten",))[0] == 3
        assert verify_store(store)["ok"]

    def test_external_writes_are_picked_up(self, tmp_path):
        """A reader rescans when another process changes the directory."""
        store = str(tmp_path / "store")
        first = VerdictCache(capacity=0, persist_path=store)
        first.put(("fp", 1), "one")
        first.flush()
        reader = VerdictCache(capacity=0, persist_path=store)
        assert reader.lookup(("fp", 1))[1] == "disk"
        second = VerdictCache(capacity=0, persist_path=store)
        second.put(("fp", 2), "two")
        second.flush()
        assert reader.lookup(("fp", 2))[0] == "two"


# ----------------------------------------------------------------------
# Corruption, truncation and format skew
# ----------------------------------------------------------------------
class TestDegradation:
    def _populate(self, store, entries):
        writer = VerdictCache(capacity=0, persist_path=store)
        for key, value in entries:
            writer.put(key, value)
        writer.flush()
        return os.path.join(store, _segments(store)[-1])

    def test_corrupt_record_skipped_others_kept(self, tmp_path):
        store = str(tmp_path / "store")
        segment = self._populate(store, [(("a",), 1), (("b",), 2)])
        data = bytearray(open(segment, "rb").read())
        data[-1] ^= 0xFF  # flip a byte in the last record's value
        atomic_write_bytes(segment, bytes(data))

        reader = VerdictCache(capacity=0, persist_path=store)
        assert reader.lookup(("a",)) == (1, "disk")
        assert reader.lookup(("b",))[1] is None  # corrupt → miss, not a wrong hit
        assert reader.stats()["corrupt_records"] >= 1
        assert not verify_store(store)["ok"]

    def test_truncated_segment_parsed_to_the_tear(self, tmp_path):
        store = str(tmp_path / "store")
        segment = self._populate(store, [(("a",), 1), (("b",), 2)])
        data = open(segment, "rb").read()
        atomic_write_bytes(segment, data[: len(data) - 3])

        reader = VerdictCache(capacity=0, persist_path=store)
        assert reader.lookup(("a",)) == (1, "disk")  # before the tear
        assert reader.lookup(("b",))[1] is None
        assert reader.stats()["truncated_segments"] >= 1

    def test_newer_format_store_is_left_alone(self, tmp_path):
        store = str(tmp_path / "store")
        os.makedirs(store)
        alien = MAGIC + bytes([FORMAT_VERSION + 1]) + b"\xde\xad\xbe\xef"
        atomic_write_bytes(os.path.join(store, "verdicts-00000001-1.seg"), alien)

        cache = VerdictCache(capacity=0, persist_path=store)
        with pytest.warns(RuntimeWarning, match="compute-only"):
            assert cache.lookup(("fp",))[1] is None
        assert cache.stats()["version_mismatches"] == 1
        # Compute-only: nothing is written into the foreign store...
        cache.put(("fp",), "value")
        cache.flush()
        assert _segments(store) == ["verdicts-00000001-1.seg"]
        # ...and the warning fires exactly once.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.lookup(("other",))[1] is None

    def test_older_format_segment_skipped(self, tmp_path):
        store = str(tmp_path / "store")
        self._populate(store, [(("a",), 1)])
        relic = MAGIC + bytes([0]) + b"\x00\x01\x02"
        atomic_write_bytes(os.path.join(store, "verdicts-00000002-1.seg"), relic)

        reader = VerdictCache(capacity=0, persist_path=store)
        with pytest.warns(RuntimeWarning, match="old-format"):
            assert reader.lookup(("a",)) == (1, "disk")
        assert reader.stats()["version_mismatches"] == 1

    def test_degradation_emits_trace_event(self, tmp_path):
        store = str(tmp_path / "store")
        segment = self._populate(store, [(("a",), 1)])
        data = bytearray(open(segment, "rb").read())
        data[-1] ^= 0xFF
        atomic_write_bytes(segment, bytes(data))

        reader = VerdictCache(capacity=0, persist_path=store)
        trace.set_enabled(True)
        trace.reset()
        try:
            reader.lookup(("a",))
        finally:
            spans = trace.take_spans()
            trace.set_enabled(False)
        degraded = [
            node
            for span in spans
            for node in span.walk()
            if node.name == "verdict_cache.degraded"
        ]
        assert degraded and degraded[0].attrs["point"] == "corrupt_records"


# ----------------------------------------------------------------------
# Engine wiring
# ----------------------------------------------------------------------
class TestEngineIntegration:
    def test_disk_reuse_across_engines(self, tmp_path):
        store = str(tmp_path / "store")
        tasks = _tasks(3)
        oracle = _oracle(tasks)

        cold_values, cold_engine = _run_persisted(store, tasks)
        assert cold_values == oracle
        assert cold_engine.stats()["memo_disk_hits"] == 0

        warm_engine = DecisionEngine(cache_policy=CachePolicy(persist_path=store))
        results = warm_engine.run_batch(tasks)
        assert [result.value for result in results] == oracle
        assert {result.provenance for result in results} == {"memo_disk"}
        assert warm_engine.stats()["memo_disk_hits"] == len(tasks)

    def test_single_shot_policy_ignores_env_store(self, tmp_path, monkeypatch):
        store = str(tmp_path / "store")
        monkeypatch.setenv("REPRO_MEMO_PERSIST_PATH", store)
        engine = DecisionEngine(cache_policy=SINGLE_SHOT_POLICY)
        engine.run_batch(_tasks(2))
        assert not os.path.isdir(store) or not _segments(store)

    def test_partial_verdicts_never_persisted(self, tmp_path):
        from repro.automata.library import ltr_automaton
        from repro.core.solver import AccLTLSolver
        from repro.workloads.scenarios import standard_scenarios

        store = str(tmp_path / "store")
        scenario = next(s for s in standard_scenarios() if s.name == "directory")
        vocabulary = AccLTLSolver(scenario.access_schema).vocabulary
        automaton = ltr_automaton(
            vocabulary, scenario.probe_access, scenario.query_one
        )
        task = emptiness_task(automaton, vocabulary, max_paths=4000)
        engine = DecisionEngine(cache_policy=CachePolicy(persist_path=store))
        result = engine.run_batch([task], budget=Budget(node_cap=1))[0]
        assert result.value.unknown
        assert not _segments(store)
        assert store_stats(store)["records"] == 0 if os.path.isdir(store) else True


# ----------------------------------------------------------------------
# Storage faults: verdicts stay oracle-identical, degradations are counted
# ----------------------------------------------------------------------
class TestStorageFaults:
    def _assert_oracle_equal(self, store, tasks, oracle):
        """A fault-free engine over whatever the store now holds agrees."""
        values, engine = _run_persisted(store, tasks)
        assert values == oracle
        return engine

    def test_disk_full_degrades_to_compute_only(self, tmp_path):
        store = str(tmp_path / "store")
        tasks = _tasks(3)
        oracle = _oracle(tasks)
        faults.install("raise@disk_full:0")
        with pytest.warns(RuntimeWarning, match="no space left"):
            values, engine = _run_persisted(store, tasks)
        assert values == oracle
        assert engine.stats()["verdict_cache"]["write_errors"] == 1
        assert not _segments(store)
        faults.clear()
        self._assert_oracle_equal(store, tasks, oracle)

    def test_torn_write_tail_dropped(self, tmp_path):
        store = str(tmp_path / "store")
        tasks = _tasks(3)
        oracle = _oracle(tasks)
        faults.install("trip@torn_write:0")
        values, _ = _run_persisted(store, tasks)
        assert values == oracle
        faults.clear()
        # The torn segment must never satisfy a lookup with garbage: the
        # fresh engine recomputes whatever fell past the tear and still
        # matches the oracle field for field.
        engine = self._assert_oracle_equal(store, tasks, oracle)
        cache_stats = engine.stats()["verdict_cache"]
        assert (
            cache_stats["truncated_segments"] + cache_stats["corrupt_records"] > 0
        )

    def test_corrupt_record_recomputed(self, tmp_path):
        store = str(tmp_path / "store")
        tasks = _tasks(2)
        oracle = _oracle(tasks)
        faults.install("corrupt@corrupt_record:0")
        values, _ = _run_persisted(store, tasks)
        assert values == oracle
        faults.clear()
        engine = self._assert_oracle_equal(store, tasks, oracle)
        cache_stats = engine.stats()["verdict_cache"]
        assert cache_stats["corrupt_records"] >= 1
        assert engine.stats()["memo_disk_hits"] == len(tasks) - 1

    def test_partial_read_recovered(self, tmp_path):
        store = str(tmp_path / "store")
        tasks = _tasks(3)
        oracle = _oracle(tasks)
        _run_persisted(store, tasks)  # clean store
        faults.install("trip@partial_read:0")
        engine = self._assert_oracle_equal(store, tasks, oracle)
        cache_stats = engine.stats()["verdict_cache"]
        assert (
            cache_stats["truncated_segments"] + cache_stats["corrupt_records"] > 0
        )

    def test_lock_timeout_skips_the_flush(self, tmp_path):
        store = str(tmp_path / "store")
        tasks = _tasks(2)
        oracle = _oracle(tasks)
        faults.install("trip@lock_timeout:0")
        with pytest.warns(RuntimeWarning, match="lock"):
            values, engine = _run_persisted(store, tasks)
        assert values == oracle
        assert engine.stats()["verdict_cache"]["lock_timeouts"] == 1
        assert not _segments(store)
        faults.clear()
        self._assert_oracle_equal(store, tasks, oracle)

    def test_mid_write_kill_leaves_no_visible_segment(self, tmp_path):
        """A writer killed between tmp-write and replace tears nothing."""
        store = str(tmp_path / "store")
        tasks = _tasks(2)
        oracle = _oracle(tasks)
        script = (
            "import sys\n"
            f"sys.path.insert(0, {os.path.dirname(os.path.abspath(__file__))!r})\n"
            "from test_verdict_cache import _run_persisted, _tasks\n"
            f"_run_persisted({store!r}, _tasks(2))\n"
            "sys.exit(3)  # unreachable: the flush kills the process\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR
        env["REPRO_FAULT_INJECT"] = "kill@torn_write:0"
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True
        )
        assert proc.returncode == faults.KILL_EXIT_CODE
        # The crash left a tmp file at most — never a half-visible segment.
        assert not _segments(store)
        leftovers = [n for n in os.listdir(store) if n.endswith(".tmp")]
        assert leftovers, "the kill fired after the tmp write"

        engine = self._assert_oracle_equal(store, tasks, oracle)
        assert engine.stats()["memo_disk_hits"] == 0  # nothing was served
        # The surviving flush took the lock, swept the dead writer's tmp
        # file and landed a clean segment.
        assert not [n for n in os.listdir(store) if n.endswith(".tmp")]
        assert verify_store(store)["ok"]


# ----------------------------------------------------------------------
# Multi-process sharing
# ----------------------------------------------------------------------
class TestMultiProcess:
    def test_fork_child_hits_the_store(self, tmp_path):
        if not hasattr(os, "fork"):
            pytest.skip("no fork on this platform")
        store = str(tmp_path / "store")
        task = _ltl_task(0)
        expected = _run_persisted(store, [task])[0][0]
        pid = os.fork()
        if pid == 0:  # child: exit code is the assertion
            try:
                cache = VerdictCache(capacity=0, persist_path=store)
                value, tier = cache.lookup(task.fingerprint())
                os._exit(0 if tier == "disk" and value == expected else 1)
            except BaseException:
                os._exit(2)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0

    def test_fresh_interpreter_hits_under_any_hash_seed(self, tmp_path):
        """Spawn-equivalent reuse: new interpreter, adversarial hash seed."""
        store = str(tmp_path / "store")
        tasks = _tasks(2)
        oracle = _oracle(tasks)
        _run_persisted(store, tasks)
        script = (
            "import sys\n"
            f"sys.path.insert(0, {os.path.dirname(os.path.abspath(__file__))!r})\n"
            "from test_verdict_cache import _run_persisted, _tasks\n"
            f"values, engine = _run_persisted({store!r}, _tasks(2))\n"
            "assert engine.stats()['memo_disk_hits'] == 2, engine.stats()\n"
            "print('DISK_HITS_OK')\n"
        )
        for seed in ("1", "999"):
            env = dict(os.environ)
            env["PYTHONPATH"] = SRC_DIR
            env["PYTHONHASHSEED"] = seed
            proc = subprocess.run(
                [sys.executable, "-c", script],
                env=env,
                capture_output=True,
                text=True,
            )
            assert proc.returncode == 0, proc.stderr
            assert "DISK_HITS_OK" in proc.stdout
        # And the shared store still yields oracle verdicts locally.
        engine = DecisionEngine(cache_policy=CachePolicy(persist_path=store))
        assert [r.value for r in engine.run_batch(tasks)] == oracle

    def _holding_child(self, store, hold_s):
        """Start a child that flocks the store lock, then report readiness."""
        script = (
            "import fcntl, os, sys, time\n"
            f"os.makedirs({store!r}, exist_ok=True)\n"
            f"fd = os.open(os.path.join({store!r}, 'lock'), os.O_RDWR | os.O_CREAT)\n"
            "fcntl.flock(fd, fcntl.LOCK_EX)\n"
            "print('LOCKED', flush=True)\n"
            f"time.sleep({hold_s})\n"
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            text=True,
        )
        assert proc.stdout.readline().strip() == "LOCKED"
        return proc

    def test_real_lock_contention_times_out(self, tmp_path):
        store = str(tmp_path / "store")
        holder = self._holding_child(store, hold_s=30)
        try:
            cache = VerdictCache(
                capacity=0, persist_path=store, lock_timeout_s=0.05
            )
            cache.put(("fp",), "value")
            with pytest.warns(RuntimeWarning, match="busy"):
                cache.flush()
            assert cache.stats()["lock_timeouts"] == 1
            assert not _segments(store)
        finally:
            holder.send_signal(signal.SIGKILL)
            holder.wait()

    def test_stale_lock_released_by_the_kernel(self, tmp_path):
        """A writer killed while holding the flock never wedges the store."""
        store = str(tmp_path / "store")
        holder = self._holding_child(store, hold_s=30)
        holder.send_signal(signal.SIGKILL)
        holder.wait()
        cache = VerdictCache(capacity=0, persist_path=store, lock_timeout_s=0.5)
        cache.put(("fp",), "value")
        cache.flush()  # must not time out: the kernel dropped the dead flock
        assert cache.stats()["lock_timeouts"] == 0
        assert len(_segments(store)) == 1


# ----------------------------------------------------------------------
# Store helpers and the CLI surface
# ----------------------------------------------------------------------
class TestStoreCli:
    def _run_cli(self, capsys, *argv):
        from repro.cli import main

        code = main(list(argv))
        return code, capsys.readouterr().out

    def test_stats_verify_clear_roundtrip(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        _run_persisted(store, _tasks(2))

        code, out = self._run_cli(capsys, "cache", "stats", "--path", store)
        assert code == 0 and '"records": 2' in out
        code, out = self._run_cli(capsys, "cache", "verify", "--path", store)
        assert code == 0 and '"ok": true' in out

        segment = os.path.join(store, _segments(store)[0])
        data = bytearray(open(segment, "rb").read())
        data[-1] ^= 0xFF
        atomic_write_bytes(segment, bytes(data))
        code, out = self._run_cli(capsys, "cache", "verify", "--path", store)
        assert code == 1 and "checksum mismatch" in out

        code, _ = self._run_cli(capsys, "cache", "clear", "--path", store)
        assert code == 0
        assert not _segments(store)
        code, out = self._run_cli(capsys, "cache", "verify", "--path", store)
        assert code == 0  # empty store verifies clean

    def test_missing_store_is_exit_2(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_MEMO_PERSIST_PATH", raising=False)
        code, out = self._run_cli(capsys, "cache", "stats")
        assert code == 2 and "no verdict store configured" in out
        code, _ = self._run_cli(
            capsys, "cache", "verify", "--path", str(tmp_path / "absent")
        )
        assert code == 2

    def test_env_path_is_honoured(self, tmp_path, capsys, monkeypatch):
        store = str(tmp_path / "store")
        _run_persisted(store, _tasks(1))
        monkeypatch.setenv("REPRO_MEMO_PERSIST_PATH", store)
        code, out = self._run_cli(capsys, "cache", "stats")
        assert code == 0 and '"segments": 1' in out

    def test_clear_store_counts_files(self, tmp_path):
        store = str(tmp_path / "store")
        _run_persisted(store, _tasks(1))
        open(os.path.join(store, ".dead.tmp"), "wb").close()
        assert clear_store(store) == 2  # the segment and the stray tmp
        assert clear_store(str(tmp_path / "missing")) == 0


# ----------------------------------------------------------------------
# Lint rule IO001
# ----------------------------------------------------------------------
class TestAtomicWriteLint:
    def _io001(self, source, rel_path):
        from repro.analysis.driver import lint_source

        report = lint_source(source, rel_path)
        return [f for f in report.findings if f.rule == "IO001"]

    def test_flags_raw_replace_anywhere(self):
        source = "import os\n\ndef promote(a, b):\n    os.replace(a, b)\n"
        findings = self._io001(source, "repro/store/other.py")
        assert findings and "atomic-write" in findings[0].message

    def test_flags_write_open_in_the_store_module(self):
        source = (
            "def side_write(path, data):\n"
            "    with open(path, 'wb') as handle:\n"
            "        handle.write(data)\n"
        )
        assert self._io001(source, "repro/store/verdict_cache.py")
        # The same open() elsewhere is fine — only the store module is
        # held to the single-writer chokepoint.
        assert not self._io001(source, "repro/io/reports.py")

    def test_helper_function_itself_is_exempt(self):
        source = (
            "import os\n\n"
            "def atomic_write_bytes(path, data):\n"
            "    os.replace(path + '.tmp', path)\n"
        )
        assert not self._io001(source, "repro/store/verdict_cache.py")

    def test_real_store_module_is_clean(self):
        source = open(vc.__file__, encoding="utf-8").read()
        assert not self._io001(source, "repro/store/verdict_cache.py")
