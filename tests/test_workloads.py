"""Tests for the workload generators and scenarios."""

import pytest

from repro.access.path import is_grounded, satisfies_sanity_conditions
from repro.queries.evaluation import evaluate_cq
from repro.workloads.directory import (
    directory_access_schema,
    directory_hidden_instance,
    directory_schema,
    directory_vocabulary,
    jones_address_query,
    join_query,
    resident_names_query,
    smith_phone_query,
)
from repro.workloads.generators import WorkloadGenerator
from repro.workloads.scenarios import Scenario, standard_scenarios


class TestDirectoryWorkload:
    def test_schema_shape(self):
        schema = directory_schema()
        assert schema.arity("Mobile") == 4
        assert schema.arity("Address") == 4

    def test_access_methods(self):
        access_schema = directory_access_schema()
        assert access_schema.method("AcM1").input_positions == (0,)
        assert access_schema.method("AcM2").input_positions == (0, 1)

    def test_exactness_flags(self):
        access_schema = directory_access_schema(mobile_exact=True)
        assert access_schema.method("AcM1").exact
        assert not access_schema.method("AcM2").exact

    def test_hidden_instance_sizes(self):
        small = directory_hidden_instance("small")
        medium = directory_hidden_instance("medium")
        large = directory_hidden_instance("large")
        assert small.size() < medium.size() < large.size()
        with pytest.raises(ValueError):
            directory_hidden_instance("gigantic")

    def test_queries_evaluate_on_hidden_instance(self):
        hidden = directory_hidden_instance("small")
        assert evaluate_cq(smith_phone_query(), hidden) == frozenset({(5551212,)})
        jones = evaluate_cq(jones_address_query(), hidden)
        assert len(jones) == 3
        assert evaluate_cq(resident_names_query(), hidden)
        assert evaluate_cq(join_query(), hidden)

    def test_vocabulary_helper(self):
        vocabulary = directory_vocabulary()
        assert "Mobile__pre" in vocabulary.schema


class TestWorkloadGenerator:
    def test_reproducibility(self):
        one = WorkloadGenerator(seed=42)
        two = WorkloadGenerator(seed=42)
        schema_one = one.access_schema(num_relations=3)
        schema_two = two.access_schema(num_relations=3)
        assert schema_one.schema.names() == schema_two.schema.names()
        assert [m.input_positions for m in schema_one] == [
            m.input_positions for m in schema_two
        ]

    def test_different_seeds_differ(self):
        one = WorkloadGenerator(seed=1).instance(
            WorkloadGenerator(seed=1).schema(), tuples_per_relation=5
        )
        two = WorkloadGenerator(seed=2).instance(
            WorkloadGenerator(seed=2).schema(), tuples_per_relation=5
        )
        assert one.freeze() != two.freeze()

    def test_every_relation_gets_a_method(self):
        generator = WorkloadGenerator(seed=5)
        access_schema = generator.access_schema(num_relations=4)
        covered = {m.relation for m in access_schema}
        assert covered == set(access_schema.schema.names())

    def test_generated_queries_are_well_formed(self):
        generator = WorkloadGenerator(seed=7)
        schema = generator.schema(num_relations=3)
        for _ in range(10):
            query = generator.conjunctive_query(schema, num_atoms=3)
            assert query.atoms
            for head_var in query.head:
                assert head_var in query.body_variables()

    def test_generated_ucq_uniform_arity(self):
        generator = WorkloadGenerator(seed=9)
        schema = generator.schema(num_relations=2)
        union = generator.ucq(schema, num_disjuncts=3)
        assert len(union) == 3
        assert len({len(d.head) for d in union}) == 1

    def test_generated_paths_are_valid(self):
        generator = WorkloadGenerator(seed=11)
        access_schema = generator.access_schema(num_relations=2)
        hidden = generator.instance(access_schema.schema)
        path = generator.access_path(access_schema, hidden, length=5)
        assert len(path) == 5
        assert satisfies_sanity_conditions(path, access_schema)

    def test_grounded_paths_respect_known_values(self):
        generator = WorkloadGenerator(seed=13)
        access_schema = generator.access_schema(num_relations=2)
        hidden = generator.instance(access_schema.schema)
        from repro.relational.instance import Instance

        initial = Instance(access_schema.schema)
        # Grounded generation only uses known values for bindings; with the
        # initial value "v0" the resulting path must be grounded relative to
        # an instance whose active domain contains v0.
        first = list(access_schema.schema)[0]
        initial.add(first.name, tuple("v0" for _ in range(first.arity)))
        path = generator.access_path(
            access_schema, hidden, length=4, grounded=True, initial_values=["v0"]
        )
        assert is_grounded(path, initial)

    def test_constraint_generators(self):
        generator = WorkloadGenerator(seed=17)
        schema = generator.schema(num_relations=3)
        fd = generator.functional_dependency(schema)
        assert fd.relation in schema
        id_dep = generator.inclusion_dependency(schema)
        assert id_dep.source in schema and id_dep.target in schema
        disjoint = generator.disjointness_constraint(schema)
        assert disjoint.relation_a in schema


class TestScenarios:
    def test_standard_scenarios_well_formed(self):
        scenarios = standard_scenarios()
        assert len(scenarios) >= 4
        names = [s.name for s in scenarios]
        assert len(names) == len(set(names))
        for scenario in scenarios:
            assert isinstance(scenario, Scenario)
            assert scenario.probe_access.method.name in scenario.access_schema
            assert scenario.hidden_instance.size() > 0
            assert scenario.describe().startswith(scenario.name)

    def test_scenario_probes_are_boolean(self):
        for scenario in standard_scenarios():
            method = scenario.probe_access.method
            assert method.num_inputs == scenario.access_schema.schema.arity(
                method.relation
            )
