"""Unit tests for the subtree work-queue executor and its deterministic fold.

The fold of :mod:`repro.store.workqueue` must reconstruct the sequential
search's result exactly from per-subtree outcomes: first witness in
canonical order wins, exploration counts interleave trunk and subtree
work precisely, the ``max_paths`` horizon aborts at the exact crossing
point, and overflowed items re-split deterministically.  These tests
drive the fold with a *scripted* search object, so every code path is
pinned independently of the real witness search (which has its own
determinism suite in ``tests/test_parallel_chains.py``).
"""

from __future__ import annotations

import pytest

from repro.automata.emptiness import (
    ExportRecord,
    RoundExpansion,
    SubtreeItem,
    SubtreeOutcome,
)
from repro.store import workqueue


def _item(name: str, budget: int = 3) -> SubtreeItem:
    # SubtreeItem fields are opaque to the fold; sentinels suffice here.
    return SubtreeItem(frozenset({name}), name + "-snap", frozenset(), budget)


class ScriptedSearch:
    """A fake search whose trunk/worker protocol replays a script."""

    def __init__(self, rounds, outcomes, expansions=None, max_paths=10**9):
        self._rounds = rounds
        self._outcomes = outcomes
        self._expansions = expansions or {}
        self.max_length = len(rounds)
        self.max_paths = max_paths
        self.stats = {}
        self.subtree_calls = []

    def run_round_exporting(self, depth_limit):
        return self._rounds[depth_limit - 1]

    def run_subtree(self, item, node_budget=None, hard_limit=None):
        self.subtree_calls.append((item, node_budget, hard_limit))
        outcome = self._outcomes[item]
        if (
            hard_limit is not None
            and outcome.status == "done"
            and outcome.explored > hard_limit
        ):
            # Mirror the real search: a tight cap turns an
            # over-the-horizon run into a clean abort at the crossing.
            return SubtreeOutcome("aborted", None, hard_limit + 1)
        return outcome

    def expand_item(self, item):
        return self._expansions[item]


class ImmediateFuture:
    def __init__(self, value):
        self._value = value
        self.cancelled = False

    def result(self):
        return self._value

    def cancel(self):
        self.cancelled = True


class ScriptedExecutor:
    """Pool stand-in: resolves submissions from the same script, inline."""

    def __init__(self, outcomes):
        self._outcomes = outcomes
        self.submitted = []
        self.futures = []
        self.usable = True

    def bind(self, context, node_budget):
        self.node_budget = node_budget

    def mark_dead(self):
        self.usable = False

    def submit(self, item):
        self.submitted.append(item)
        future = ImmediateFuture(self._outcomes[item])
        self.futures.append(future)
        return future


def _round(records, witness_steps=None, witness_at=0, explored=0):
    return RoundExpansion(tuple(records), witness_steps, witness_at, explored)


class TestFoldBasics:
    def test_done_rounds_sum_exactly(self):
        a, b = _item("a"), _item("b")
        rounds = [
            _round([], explored=4),
            _round(
                [ExportRecord(a, ("step-a",), 2), ExportRecord(b, ("step-b",), 5)],
                explored=6,
            ),
        ]
        outcomes = {
            a: SubtreeOutcome("done", None, 10),
            b: SubtreeOutcome("done", None, 20),
        }
        search = ScriptedSearch(rounds, outcomes)
        steps, explored, exhausted, stats = workqueue.run_decomposed_search(search)
        assert steps is None
        # Round 1: 4.  Round 2: trunk 6 + subtrees 10 + 20.
        assert explored == 4 + 6 + 10 + 20
        assert exhausted is True
        assert stats["subtree_items"] == 2

    def test_first_witness_in_canonical_order_wins(self):
        a, b, c = _item("a"), _item("b"), _item("c")
        rounds = [
            _round(
                [
                    ExportRecord(a, ("pre-a",), 1),
                    ExportRecord(b, ("pre-b",), 2),
                    ExportRecord(c, ("pre-c",), 3),
                ],
                explored=3,
            )
        ]
        outcomes = {
            a: SubtreeOutcome("done", None, 7),
            b: SubtreeOutcome("witness", ("suffix-b",), 5),
            c: SubtreeOutcome("witness", ("suffix-c",), 1),
        }
        search = ScriptedSearch(rounds, outcomes)
        steps, explored, exhausted, _ = workqueue.run_decomposed_search(search)
        # b precedes c in DFS order, so b's witness wins even though c's
        # is "cheaper"; the count interleaves trunk increments (2 at b's
        # export), a's total (7) and b's local position (5).
        assert steps == ("pre-b", "suffix-b")
        assert explored == 2 + 7 + 5
        assert exhausted is False
        # c was never resolved: the fold stopped at b.
        assert all(item is not c for item, _, _ in search.subtree_calls)

    def test_inline_trunk_witness_comes_after_all_records(self):
        a = _item("a")
        rounds = [
            _round(
                [ExportRecord(a, ("pre-a",), 1)],
                witness_steps=("inline",),
                witness_at=4,
                explored=4,
            )
        ]
        outcomes = {a: SubtreeOutcome("done", None, 9)}
        search = ScriptedSearch(rounds, outcomes)
        steps, explored, _, _ = workqueue.run_decomposed_search(search)
        assert steps == ("inline",)
        assert explored == 4 + 9

    def test_pooled_and_inprocess_agree(self):
        def build():
            a, b, c = _item("a"), _item("b"), _item("c")
            rounds = [
                _round(
                    [
                        ExportRecord(a, ("pre-a",), 1),
                        ExportRecord(b, ("pre-b",), 2),
                        ExportRecord(c, ("pre-c",), 3),
                    ],
                    explored=5,
                )
            ]
            outcomes = {
                a: SubtreeOutcome("done", None, 4),
                b: SubtreeOutcome("witness", ("suffix-b",), 2),
                c: SubtreeOutcome("done", None, 8),
            }
            return ScriptedSearch(rounds, outcomes), outcomes

        search_ip, _ = build()
        inprocess = workqueue.run_decomposed_search(search_ip)
        search_pool, outcomes = build()
        executor = ScriptedExecutor(outcomes)
        pooled = workqueue.run_decomposed_search(
            search_pool, executor=executor, context=("ctx",)
        )
        assert inprocess[:3] == pooled[:3]
        # All records were submitted eagerly; the one after the witness
        # was cancelled, not consumed.
        assert [i.states for i in executor.submitted] == [
            frozenset({"a"}),
            frozenset({"b"}),
            frozenset({"c"}),
        ]
        assert executor.futures[-1].cancelled


class TestHorizon:
    def test_abort_at_exact_crossing_inside_item(self):
        a, b = _item("a"), _item("b")
        rounds = [
            _round(
                [ExportRecord(a, ("pre-a",), 1), ExportRecord(b, ("pre-b",), 2)],
                explored=2,
            )
        ]
        outcomes = {
            a: SubtreeOutcome("done", None, 8),
            b: SubtreeOutcome("done", None, 100),
        }
        search = ScriptedSearch(rounds, outcomes, max_paths=50)
        steps, explored, exhausted, _ = workqueue.run_decomposed_search(search)
        assert steps is None
        assert explored == 51  # exactly max_paths + 1, like the sequential abort
        assert exhausted is False
        # b ran with the tight remaining budget, not the global cap:
        # entry = trunk 2 + a's 8 = 10, so 40 explorations remained.
        assert search.subtree_calls[-1][2] == 40

    def test_witness_beyond_horizon_is_discarded(self):
        a = _item("a")
        rounds = [_round([ExportRecord(a, ("pre-a",), 1)], explored=1)]
        outcomes = {a: SubtreeOutcome("witness", ("suffix",), 60)}
        search = ScriptedSearch(rounds, outcomes, max_paths=50)
        steps, explored, exhausted, _ = workqueue.run_decomposed_search(search)
        # The sequential search aborts at 51 before reaching the witness
        # a loose-cap worker located at position 1 + 60.
        assert steps is None
        assert explored == 51
        assert exhausted is False

    def test_witness_exactly_at_horizon_survives(self):
        a = _item("a")
        rounds = [_round([ExportRecord(a, ("pre-a",), 1)], explored=1)]
        outcomes = {a: SubtreeOutcome("witness", ("suffix",), 49)}
        search = ScriptedSearch(rounds, outcomes, max_paths=50)
        steps, explored, _, _ = workqueue.run_decomposed_search(search)
        assert steps == ("pre-a", "suffix")
        assert explored == 50

    def test_trunk_crossing_aborts_before_resolving_items(self):
        a = _item("a")
        rounds = [_round([ExportRecord(a, ("pre-a",), 80)], explored=80)]
        outcomes = {a: SubtreeOutcome("witness", ("suffix",), 1)}
        search = ScriptedSearch(rounds, outcomes, max_paths=50)
        steps, explored, _, _ = workqueue.run_decomposed_search(search)
        assert steps is None
        assert explored == 51
        assert search.subtree_calls == []  # never resolved past the crossing


class TestResplit:
    def test_overflow_expands_one_level_and_recounts(self):
        parent = _item("parent", budget=3)
        child1, child2 = _item("child1", budget=2), _item("child2", budget=2)
        rounds = [_round([ExportRecord(parent, ("pre-p",), 1)], explored=1)]
        outcomes = {
            parent: SubtreeOutcome("overflow", None, 999),
            child1: SubtreeOutcome("done", None, 4),
            child2: SubtreeOutcome("witness", ("suffix-2",), 3),
        }
        expansions = {
            parent: _round(
                [
                    ExportRecord(child1, ("pre-c1",), 2),
                    ExportRecord(child2, ("pre-c2",), 5),
                ],
                explored=6,
            )
        }
        search = ScriptedSearch(rounds, outcomes, expansions)
        steps, explored, _, stats = workqueue.run_decomposed_search(search)
        # The overflowed attempt contributes nothing; the re-split
        # recounts: trunk 1 + (expansion increments 5 + child1 4 + local 3).
        assert steps == ("pre-p", "pre-c2", "suffix-2")
        assert explored == 1 + 5 + 4 + 3
        assert stats["subtree_overflows"] == 1
        assert stats["subtree_items"] == 3

    def test_nested_overflow(self):
        top = _item("top", budget=4)
        mid = _item("mid", budget=3)
        leaf = _item("leaf", budget=2)
        rounds = [_round([ExportRecord(top, ("s-top",), 1)], explored=1)]
        outcomes = {
            top: SubtreeOutcome("overflow", None, 0),
            mid: SubtreeOutcome("overflow", None, 0),
            leaf: SubtreeOutcome("done", None, 2),
        }
        expansions = {
            top: _round([ExportRecord(mid, ("s-mid",), 3)], explored=3),
            mid: _round([ExportRecord(leaf, ("s-leaf",), 4)], explored=4),
        }
        search = ScriptedSearch(rounds, outcomes, expansions)
        steps, explored, exhausted, stats = workqueue.run_decomposed_search(search)
        assert steps is None
        assert explored == 1 + 3 + 4 + 2
        assert exhausted is True
        assert stats["subtree_overflows"] == 2


class TestExecutorFailureFallback:
    def test_broken_future_falls_back_in_process(self):
        a = _item("a")
        rounds = [_round([ExportRecord(a, ("pre-a",), 1)], explored=1)]
        outcomes = {a: SubtreeOutcome("done", None, 5)}

        class FailingFuture:
            def result(self):
                raise OSError("worker died")

            def cancel(self):
                pass

        class FailingExecutor:
            usable = True

            def bind(self, context, node_budget):
                pass

            def mark_dead(self):
                self.usable = False

            def submit(self, item):
                return FailingFuture()

        search = ScriptedSearch(rounds, outcomes)
        steps, explored, exhausted, _ = workqueue.run_decomposed_search(
            search, executor=FailingExecutor(), context=("ctx",)
        )
        assert (steps, explored, exhausted) == (None, 1 + 5, True)
        # The fallback resolved the item in-process.
        assert [item for item, _, _ in search.subtree_calls] == [a]


class TestSharedPool:
    def test_pool_is_reused_and_grows(self):
        workqueue.discard_shared_pool()
        try:
            first = workqueue.shared_pool(1)
            again = workqueue.shared_pool(1)
            assert first is again
            grown = workqueue.shared_pool(2)
            assert grown is not first
            assert workqueue.shared_pool(1) is grown  # wide enough already
        finally:
            workqueue.discard_shared_pool()

    def test_discard_clears_state(self):
        workqueue.discard_shared_pool()
        pool = workqueue.shared_pool(1)
        assert pool is not None
        workqueue.discard_shared_pool()
        assert workqueue._POOL is None
        assert workqueue._POOL_WORKERS == 0


class TestWorkerContextCache:
    def test_cache_is_bounded(self, monkeypatch):
        import pickle

        built = []

        def fake_search_from_payload(payload):
            built.append(payload)
            return ("search", payload)

        monkeypatch.setattr(
            "repro.automata.emptiness.search_from_payload", fake_search_from_payload
        )
        monkeypatch.setattr(workqueue, "_CONTEXT_CACHE", {})
        monkeypatch.setattr(workqueue, "_CONTEXT_ORDER", [])
        limit = workqueue._CONTEXT_CACHE_LIMIT
        for index in range(limit + 2):
            token = workqueue._next_context_token()
            blob = pickle.dumps(f"payload-{index}")
            workqueue._cached_search(token, blob)
            workqueue._cached_search(token, blob)  # second hit: no rebuild
        assert len(built) == limit + 2
        assert len(workqueue._CONTEXT_CACHE) == limit
        assert len(workqueue._CONTEXT_ORDER) == limit

    def test_tokens_are_unique(self):
        tokens = {workqueue._next_context_token() for _ in range(100)}
        assert len(tokens) == 100


class TestSubtreeExecutorBind:
    def test_unpicklable_context_marks_executor_dead(self):
        executor = workqueue.SubtreeExecutor(pool=None)
        executor.bind(lambda: None, 100)  # lambdas don't pickle
        assert not executor.usable
        assert executor.submit(_item("x")) is None
